"""Legacy setuptools shim.

Kept because the reference environment has no ``wheel`` package and no
network access, so PEP 517 editable installs are unavailable;
``pip install -e . --no-build-isolation`` then uses this file via the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
