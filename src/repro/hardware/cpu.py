"""CPU package model with per-owner cycle accounting.

The simulator does not emulate instructions; it *accounts* cycles.  Every
piece of work (request service, hypervisor overhead, OS background
activity) charges cycles to a named owner on a :class:`CycleLedger`.  The
monitoring layer samples the monotonic counters and first-differences
them, which is precisely how ``sar -u``/perf derive per-interval values
from ``/proc/stat`` and MSR counters.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import CapacityError, ConfigurationError


class CycleLedger:
    """Monotonic per-owner cycle counters."""

    def __init__(self) -> None:
        self._cycles: Dict[str, float] = {}

    def charge(self, owner: str, cycles: float) -> None:
        """Add ``cycles`` to ``owner``'s counter.

        Raises:
            CapacityError: if ``cycles`` is negative (counters are monotonic).
        """
        if cycles < 0:
            raise CapacityError(f"negative cycle charge {cycles} for {owner!r}")
        try:
            self._cycles[owner] += cycles
        except KeyError:
            self._cycles[owner] = cycles

    def total(self, owner: str) -> float:
        """Cumulative cycles charged to ``owner`` (0 if never charged)."""
        return self._cycles.get(owner, 0.0)

    def grand_total(self) -> float:
        """Cumulative cycles across all owners."""
        return sum(self._cycles.values())

    def owners(self) -> Iterable[str]:
        return sorted(self._cycles)

    def snapshot(self) -> Dict[str, float]:
        """Copy of the counter dict (for samplers)."""
        return dict(self._cycles)


class CpuPackage:
    """A multi-core CPU package.

    Attributes:
        cores: number of physical cores.
        frequency_hz: per-core frequency.
        ledger: per-owner cycle accounting.
    """

    def __init__(self, cores: int = 8, frequency_hz: float = 2.8e9) -> None:
        if cores < 1:
            raise ConfigurationError("cores must be >= 1")
        if frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        self.cores = int(cores)
        self.frequency_hz = float(frequency_hz)
        self.ledger = CycleLedger()
        # Shadow the charge method with the ledger's bound method: the
        # delegation frame is pure overhead on the ~200k charges of a
        # full run (the method below documents the contract).
        self.charge = self.ledger.charge

    @property
    def capacity_cycles_per_s(self) -> float:
        """Aggregate cycles the package can execute per second."""
        return self.cores * self.frequency_hz

    def service_time(self, cycles: float, speed_fraction: float = 1.0) -> float:
        """Wall time to execute ``cycles`` on one core at ``speed_fraction``.

        ``speed_fraction`` is the share of a core's speed granted by the
        scheduler (1.0 = a whole dedicated core).
        """
        if cycles < 0:
            raise CapacityError(f"negative cycle demand {cycles}")
        if not 0 < speed_fraction <= self.cores:
            raise CapacityError(
                f"speed_fraction {speed_fraction} outside (0, {self.cores}]"
            )
        return cycles / (self.frequency_hz * speed_fraction)

    def charge(self, owner: str, cycles: float) -> None:
        """Account ``cycles`` of executed work to ``owner``."""
        self.ledger.charge(owner, cycles)

    def utilization(self, cycles_in_interval: float, interval_s: float) -> float:
        """Fraction of package capacity used by ``cycles_in_interval``."""
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        return cycles_in_interval / (self.capacity_cycles_per_s * interval_s)
