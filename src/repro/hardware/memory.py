"""Physical memory bank with per-owner usage levels.

Unlike CPU/disk/network, memory in the paper's figures is a *level*
("used memory in MB"), not a rate.  Owners therefore set absolute usage
levels; the bank enforces the physical capacity and exposes the levels to
the samplers directly (no differencing).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import CapacityError, ConfigurationError


class MemoryBank:
    """Tracks per-owner used-memory levels against a fixed capacity."""

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self._used: Dict[str, float] = {}

    def set_usage(self, owner: str, used_bytes: float) -> None:
        """Set ``owner``'s used-memory level.

        Raises:
            CapacityError: if the level is negative or the new total would
                exceed the physical capacity.
        """
        if used_bytes < 0:
            raise CapacityError(f"negative memory usage for {owner!r}")
        new_total = self.total_used() - self._used.get(owner, 0.0) + used_bytes
        if new_total > self.capacity_bytes:
            raise CapacityError(
                f"memory over-commit: {new_total:.0f} B > capacity "
                f"{self.capacity_bytes:.0f} B (owner {owner!r})"
            )
        self._used[owner] = float(used_bytes)

    def adjust_usage(self, owner: str, delta_bytes: float) -> None:
        """Adjust ``owner``'s level by ``delta_bytes`` (clamped at zero)."""
        current = self._used.get(owner, 0.0)
        self.set_usage(owner, max(0.0, current + delta_bytes))

    def usage(self, owner: str) -> float:
        """Current used bytes for ``owner`` (0 if never set)."""
        return self._used.get(owner, 0.0)

    def total_used(self) -> float:
        """Total used bytes across owners."""
        return sum(self._used.values())

    def free_bytes(self) -> float:
        return self.capacity_bytes - self.total_used()

    def snapshot(self) -> Dict[str, float]:
        return dict(self._used)
