"""Cluster: the set of physical servers plus the network fabric."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.hardware.network import NetworkFabric
from repro.hardware.server import PhysicalServer, ServerSpec


@dataclass(frozen=True)
class ClusterCapacity:
    """Aggregate hardware bill of a cluster (for placement policies)."""

    servers: int
    cores: int
    cycles_per_s: float
    memory_bytes: float
    disk_bytes: float


class Cluster:
    """Named physical servers connected by a single switch fabric.

    Iteration order is the insertion order of :meth:`add_server` — a
    deterministic property the placement policies depend on (first-fit
    must mean "first *added* server", never a hash order).
    """

    def __init__(self, fabric: Optional[NetworkFabric] = None) -> None:
        self.fabric = fabric or NetworkFabric()
        self._servers: Dict[str, PhysicalServer] = {}

    def add_server(
        self, name: str, spec: Optional[ServerSpec] = None
    ) -> PhysicalServer:
        """Create a server; names must be unique within the cluster."""
        if name in self._servers:
            raise ConfigurationError(f"duplicate server name {name!r}")
        server = PhysicalServer(name, spec)
        self._servers[name] = server
        return server

    def remove_server(self, name: str) -> PhysicalServer:
        """Remove (decommission) a server and return it.

        The caller is responsible for having drained the server first —
        the cluster tracks hardware, not placement.
        """
        if name not in self._servers:
            raise ConfigurationError(f"unknown server {name!r}")
        return self._servers.pop(name)

    def server(self, name: str) -> PhysicalServer:
        if name not in self._servers:
            raise ConfigurationError(f"unknown server {name!r}")
        return self._servers[name]

    def servers(self) -> List[PhysicalServer]:
        """Servers in deterministic (insertion) order."""
        return list(self._servers.values())

    def server_names(self) -> List[str]:
        """Server names in deterministic (insertion) order."""
        return list(self._servers)

    def total_capacity(self) -> ClusterCapacity:
        """Aggregate capacity across every server (placement input)."""
        servers = self._servers.values()
        return ClusterCapacity(
            servers=len(self._servers),
            cores=sum(s.spec.cores for s in servers),
            cycles_per_s=sum(s.cpu.capacity_cycles_per_s for s in servers),
            memory_bytes=sum(s.spec.memory_bytes for s in servers),
            disk_bytes=sum(s.spec.disk_bytes for s in servers),
        )

    def __iter__(self):
        return iter(self._servers.values())

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, name: str) -> bool:
        return name in self._servers
