"""Cluster: the set of physical servers plus the network fabric."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError
from repro.hardware.network import NetworkFabric
from repro.hardware.server import PhysicalServer, ServerSpec


class Cluster:
    """Named physical servers connected by a single switch fabric."""

    def __init__(self, fabric: Optional[NetworkFabric] = None) -> None:
        self.fabric = fabric or NetworkFabric()
        self._servers: Dict[str, PhysicalServer] = {}

    def add_server(
        self, name: str, spec: Optional[ServerSpec] = None
    ) -> PhysicalServer:
        """Create a server; names must be unique within the cluster."""
        if name in self._servers:
            raise ConfigurationError(f"duplicate server name {name!r}")
        server = PhysicalServer(name, spec)
        self._servers[name] = server
        return server

    def server(self, name: str) -> PhysicalServer:
        if name not in self._servers:
            raise ConfigurationError(f"unknown server {name!r}")
        return self._servers[name]

    def servers(self) -> Iterable[PhysicalServer]:
        return list(self._servers.values())

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, name: str) -> bool:
        return name in self._servers
