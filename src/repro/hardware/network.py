"""Network interface and fabric models.

A :class:`NetworkInterface` is a full-duplex gigabit port: the RX and TX
directions each have their own busy-until serialization.  The
:class:`NetworkFabric` gives the propagation latency between servers (the
testbed is a single gigabit switch, so one latency for all pairs) and is
the hook for the non-virtualized environment's longer inter-tier path,
which the paper invokes to explain the earlier RAM jumps (Sec 4.2).

Per-owner monotonic RX/TX byte counters mirror ``sar -n DEV``.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import CapacityError, ConfigurationError


class NetworkInterface:
    """Full-duplex NIC with per-direction serialization and accounting."""

    def __init__(self, bandwidth_bps: float = 125e6) -> None:
        # 125e6 bytes/s == 1 Gbit/s.
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.bandwidth_bps = float(bandwidth_bps)
        # The two directions keep dedicated state: every request crosses
        # the NIC several times, and the direction-keyed dict lookups of
        # a combined path were measurable on million-event runs.
        self._rx_busy_until = 0.0
        self._tx_busy_until = 0.0
        self._rx_bytes: Dict[str, float] = {}
        self._tx_bytes: Dict[str, float] = {}
        self.packets = {"rx": 0, "tx": 0}

    def receive(self, now: float, owner: str, size_bytes: float) -> float:
        """Account an ingress transfer; returns completion time."""
        if size_bytes < 0:
            raise CapacityError("transfer size must be non-negative")
        busy = self._rx_busy_until
        start = now if now > busy else busy
        completion = start + size_bytes / self.bandwidth_bps
        self._rx_busy_until = completion
        counters = self._rx_bytes
        try:
            counters[owner] += size_bytes
        except KeyError:
            counters[owner] = size_bytes
        self.packets["rx"] += 1
        return completion

    def transmit(self, now: float, owner: str, size_bytes: float) -> float:
        """Account an egress transfer; returns completion time."""
        if size_bytes < 0:
            raise CapacityError("transfer size must be non-negative")
        busy = self._tx_busy_until
        start = now if now > busy else busy
        completion = start + size_bytes / self.bandwidth_bps
        self._tx_busy_until = completion
        counters = self._tx_bytes
        try:
            counters[owner] += size_bytes
        except KeyError:
            counters[owner] = size_bytes
        self.packets["tx"] += 1
        return completion

    # -- counters ----------------------------------------------------------

    def bytes_received(self, owner: str) -> float:
        return self._rx_bytes.get(owner, 0.0)

    def bytes_transmitted(self, owner: str) -> float:
        return self._tx_bytes.get(owner, 0.0)

    def total_bytes(self, owner: str) -> float:
        """RX + TX bytes for ``owner`` (the paper's network metric)."""
        return self.bytes_received(owner) + self.bytes_transmitted(owner)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {"rx": dict(self._rx_bytes), "tx": dict(self._tx_bytes)}


class NetworkFabric:
    """Propagation latency between named endpoints.

    The testbed uses one gigabit switch; co-located endpoints (same
    server, e.g. two VMs or a VM and dom0) communicate over the software
    bridge with a much smaller latency.
    """

    def __init__(
        self,
        inter_server_latency_s: float = 0.25e-3,
        local_latency_s: float = 0.03e-3,
    ) -> None:
        if inter_server_latency_s < 0 or local_latency_s < 0:
            raise ConfigurationError("latencies must be non-negative")
        self.inter_server_latency_s = float(inter_server_latency_s)
        self.local_latency_s = float(local_latency_s)
        self._placement: Dict[str, str] = {}

    def place(self, endpoint: str, server_name: str) -> None:
        """Record that ``endpoint`` (a tier or VM) runs on ``server_name``."""
        self._placement[endpoint] = server_name

    def server_of(self, endpoint: str) -> str:
        if endpoint not in self._placement:
            raise ConfigurationError(f"endpoint {endpoint!r} was never placed")
        return self._placement[endpoint]

    def latency(self, src: str, dst: str) -> float:
        """One-way latency between two placed endpoints."""
        if self.server_of(src) == self.server_of(dst):
            return self.local_latency_s
        return self.inter_server_latency_s
