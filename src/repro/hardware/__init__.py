"""Physical hardware models (substrate S2).

Models the paper's testbed nodes: HP ProLiant servers with 8 Xeon cores at
2.8 GHz, 32 GB RAM, 2 TB disk and gigabit Ethernet.  Every device keeps
monotonic per-owner usage counters which the monitoring layer samples and
differences, exactly as sysstat samples ``/proc`` counters.
"""

from repro.hardware.cpu import CpuPackage, CycleLedger
from repro.hardware.memory import MemoryBank
from repro.hardware.disk import Disk, DiskRequest
from repro.hardware.network import NetworkInterface, NetworkFabric
from repro.hardware.server import PhysicalServer, ServerSpec
from repro.hardware.cluster import Cluster

__all__ = [
    "CpuPackage",
    "CycleLedger",
    "MemoryBank",
    "Disk",
    "DiskRequest",
    "NetworkInterface",
    "NetworkFabric",
    "PhysicalServer",
    "ServerSpec",
    "Cluster",
]
