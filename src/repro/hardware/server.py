"""Physical server: the composition of CPU, memory, disk and NIC.

Matches the paper's node: "8 Intel Xeon 2.8 GHz cores, 32 GB of RAM and
2 TB of disk", gigabit Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CpuPackage
from repro.hardware.disk import Disk
from repro.hardware.memory import MemoryBank
from repro.hardware.network import NetworkInterface
from repro.units import GB, TB


@dataclass(frozen=True)
class ServerSpec:
    """Hardware bill of materials for one server."""

    cores: int = 8
    frequency_hz: float = 2.8e9
    memory_bytes: float = 32 * GB
    disk_bytes: float = 2 * TB
    disk_read_bandwidth_bps: float = 120e6
    disk_write_bandwidth_bps: float = 100e6
    disk_access_latency_s: float = 4e-3
    nic_bandwidth_bps: float = 125e6

    @classmethod
    def paper_testbed(cls) -> "ServerSpec":
        """The HP ProLiant configuration from Section 3."""
        return cls()


class PhysicalServer:
    """One cloud server assembled from a :class:`ServerSpec`."""

    def __init__(self, name: str, spec: ServerSpec = None) -> None:
        self.name = name
        self.spec = spec or ServerSpec.paper_testbed()
        self.cpu = CpuPackage(self.spec.cores, self.spec.frequency_hz)
        self.memory = MemoryBank(self.spec.memory_bytes)
        self.disk = Disk(
            capacity_bytes=self.spec.disk_bytes,
            read_bandwidth_bps=self.spec.disk_read_bandwidth_bps,
            write_bandwidth_bps=self.spec.disk_write_bandwidth_bps,
            access_latency_s=self.spec.disk_access_latency_s,
        )
        self.nic = NetworkInterface(self.spec.nic_bandwidth_bps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PhysicalServer {self.name}: {self.spec.cores}x"
            f"{self.spec.frequency_hz / 1e9:.1f} GHz>"
        )
