"""Disk device model.

A single-spindle disk served FIFO.  Contention is modelled with the
*busy-until* technique: a request submitted at time ``t`` starts at
``max(t, busy_until)``, occupies the device for its service time
(per-request latency plus size over bandwidth), and pushes ``busy_until``
forward.  This captures queueing delay without per-request events.

The device keeps monotonic per-owner byte counters for reads and writes,
sampled by the monitoring layer (``sar -b`` equivalents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import CapacityError, ConfigurationError


@dataclass(frozen=True, slots=True)
class DiskRequest:
    """One I/O: ``kind`` is 'read' or 'write', ``size_bytes`` the payload."""

    owner: str
    kind: str
    size_bytes: float

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ConfigurationError(f"unknown I/O kind {self.kind!r}")
        if self.size_bytes < 0:
            raise CapacityError("I/O size must be non-negative")


class Disk:
    """FIFO disk with per-owner read/write accounting."""

    def __init__(
        self,
        capacity_bytes: float = 2e12,
        read_bandwidth_bps: float = 120e6,
        write_bandwidth_bps: float = 100e6,
        access_latency_s: float = 4e-3,
    ) -> None:
        if min(read_bandwidth_bps, write_bandwidth_bps) <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if access_latency_s < 0:
            raise ConfigurationError("latency must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        self.read_bandwidth_bps = float(read_bandwidth_bps)
        self.write_bandwidth_bps = float(write_bandwidth_bps)
        self.access_latency_s = float(access_latency_s)
        self._busy_until = 0.0
        self._bytes_read: Dict[str, float] = {}
        self._bytes_written: Dict[str, float] = {}
        self.requests_served = 0

    def service_time(self, request: DiskRequest) -> float:
        """Device occupancy for one request (latency + transfer)."""
        bandwidth = (
            self.read_bandwidth_bps
            if request.kind == "read"
            else self.write_bandwidth_bps
        )
        return self.access_latency_s + request.size_bytes / bandwidth

    def submit(self, now: float, request: DiskRequest) -> float:
        """Enqueue a request at time ``now``; return its completion time."""
        busy = self._busy_until
        start = now if now > busy else busy
        completion = start + self.service_time(request)
        self._busy_until = completion
        self.requests_served += 1
        counters = (
            self._bytes_read if request.kind == "read" else self._bytes_written
        )
        owner = request.owner
        try:
            counters[owner] += request.size_bytes
        except KeyError:
            counters[owner] = request.size_bytes
        return completion

    def queue_delay(self, now: float) -> float:
        """Wait a request submitted at ``now`` would experience."""
        return max(0.0, self._busy_until - now)

    # -- counters (monotonic; samplers difference them) -------------------

    def bytes_read(self, owner: str) -> float:
        return self._bytes_read.get(owner, 0.0)

    def bytes_written(self, owner: str) -> float:
        return self._bytes_written.get(owner, 0.0)

    def total_bytes(self, owner: str) -> float:
        """Read + written bytes for ``owner`` (the paper's disk metric)."""
        return self.bytes_read(owner) + self.bytes_written(owner)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {"read": dict(self._bytes_read), "write": dict(self._bytes_written)}
