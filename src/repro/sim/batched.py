"""Array-level primitives for the batched (epoch-2) engine.

The classic engine advances every request through per-event Python
frames; the batched engine advances whole *cohorts* of requests as
numpy column arrays.  This module holds the engine-agnostic pieces:

* :func:`lindley` — the vectorized busy-until recursion shared by every
  single-queue device (NIC direction, disk spindle),
* :class:`FcfsPool` — a c-server FCFS station over arrival/duration
  arrays with a vectorized no-queue fast path and an exact heap
  fallback, carrying worker state across drains,
* :func:`bulk_cancel` — cancel a batch of heap events through the
  queue's lazy-deletion bookkeeping (the pattern the compaction
  property test exercises),
* :data:`DRAIN_PRIORITY` / :data:`DRAIN_INTERVAL_S` — where the drain
  tick sits in the event ordering (after scheduler epochs and
  housekeeping at a shared timestamp, before the 2 s samplers).

Everything application-specific (demand sampling, the RUBiS request
path) lives in :mod:`repro.rubis.batched`.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Drain cadence: small enough that counter updates smear well inside
#: the 2 s sampling period, large enough that per-drain numpy overhead
#: amortizes over ~hundreds of requests at paper-scale load.
DRAIN_INTERVAL_S = 0.25

#: Event priority of the drain tick.  Fires after the hypervisor epoch
#: (0.1 s, priority 20) and the housekeeping/flush processes at a
#: shared timestamp, but before trace sampling (priority 30), so the
#: samplers see the drained counters.
DRAIN_PRIORITY = 25


def lindley(
    times: np.ndarray, services: np.ndarray, busy_until: float
) -> Tuple[np.ndarray, float]:
    """Busy-until recursion over a sorted batch of submissions.

    Vectorizes ``c_i = max(t_i, c_{i-1}) + s_i`` (with ``c_{-1} =
    busy_until``) — the exact recurrence the device models apply per
    request — via a cumulative-sum / cumulative-max identity: with
    ``S_i = s_0 + ... + s_i`` and ``d_i = c_i - S_i``,

        d_i = max(t_i - S_{i-1}, d_{i-1}),   d_{-1} = busy_until,

    so ``d`` is one ``maximum.accumulate`` and ``c = d + S``.

    Returns ``(completions, new_busy_until)``.  ``times`` must be
    nondecreasing; completions then are too.
    """
    if times.size == 0:
        return times, busy_until
    cumulative = np.cumsum(services)
    offsets = times - cumulative + services  # t_i - S_{i-1}
    if busy_until > offsets[0]:
        offsets[0] = busy_until
    np.maximum.accumulate(offsets, out=offsets)
    completions = offsets + cumulative
    return completions, float(completions[-1])


class FcfsPool:
    """A ``workers``-server FCFS station over request arrays.

    The batched analogue of :class:`repro.apps.queueing.QueueingStation`:
    given sorted arrival times and per-request service durations it
    produces start and completion times under c-server FCFS.  Worker
    free times persist across calls, so a cohort that leaves workers
    busy delays the next cohort exactly as the event-driven station
    would.

    Away from saturation no request waits; that case is detected with a
    vectorized occupancy bound and served without the Python loop.  The
    exact heap simulation only runs for cohorts that actually queue.
    """

    __slots__ = ("workers", "_free")

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("a pool needs at least one worker")
        self.workers = int(workers)
        self._free: List[float] = [0.0] * self.workers

    def busy_count(self, at_time: float) -> int:
        """Workers still serving past ``at_time``."""
        return sum(1 for f in self._free if f > at_time)

    def schedule(
        self, arrivals: np.ndarray, durations: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """FCFS-assign the cohort; returns ``(starts, completions, occupancy)``.

        ``arrivals`` must be sorted nondecreasing.  ``occupancy[i]`` is
        the number of requests in service or queued the instant request
        ``i`` arrives, counting itself — what the event-driven station's
        backlog observation sees.
        """
        n = arrivals.size
        if n == 0:
            empty = arrivals[:0]
            return empty, empty, empty
        workers = self.workers
        carried = np.sort(np.asarray(self._free))
        # Occupancy bound assuming nobody queues: carried-over busy
        # workers plus in-cohort predecessors still in service.
        no_queue_comp = arrivals + durations
        done_sorted = np.sort(no_queue_comp)
        in_cohort = (
            np.arange(n)
            - np.searchsorted(done_sorted, arrivals, side="right")
        )
        carried_busy = carried.size - np.searchsorted(
            carried, arrivals, side="right"
        )
        occupancy = in_cohort + carried_busy + 1
        if int(occupancy.max()) <= workers:
            # No request waits: starts == arrivals, and each worker's
            # final free time is one of the c largest completion/carry
            # values (a worker's free times only grow, so a dominated
            # completion can never be a worker's last).
            pool = np.concatenate([carried, no_queue_comp])
            pool.partition(pool.size - workers)
            self._free = pool[pool.size - workers:].tolist()
            return arrivals, no_queue_comp, occupancy
        # Exact path: the heap simulation the event engine performs.
        free = list(self._free)
        heapq.heapify(free)
        starts = np.empty(n)
        completions = np.empty(n)
        occ = np.empty(n, dtype=np.int64)
        finished: List[float] = []
        for i in range(n):
            arrival = arrivals[i]
            worker_free = heapq.heappop(free)
            start = arrival if arrival > worker_free else worker_free
            completion = start + durations[i]
            heapq.heappush(free, completion)
            starts[i] = start
            completions[i] = completion
            finished.append(completion)
        finished_sorted = np.sort(np.asarray(finished))
        in_cohort = (
            np.arange(n)
            - np.searchsorted(finished_sorted, arrivals, side="right")
        )
        occ = in_cohort + (
            carried.size - np.searchsorted(carried, arrivals, side="right")
        ) + 1
        self._free = free
        return starts, completions, occ

    def snapshot(self) -> List[float]:
        """The current worker-free multiset (for window bracketing)."""
        return list(self._free)

    def restore(self, state: List[float]) -> None:
        """Reset the worker-free multiset to a snapshot."""
        self._free = list(state)

    def merge_window(
        self, base: List[float], completions: List[np.ndarray]
    ) -> None:
        """Fold a drain window's waves into one carried worker state.

        Waves inside one drain window overlap in time, so each is
        scheduled against the window-*start* snapshot (``base``); the
        state carried to the next window is the ``workers`` largest
        values over the snapshot and every wave's completions — exactly
        the final worker-free multiset when no request waits, and a
        close bound when one wave queued internally.
        """
        arrays = [np.asarray(base, dtype=float)]
        arrays.extend(c for c in completions if c.size)
        pool = np.concatenate(arrays)
        if pool.size > self.workers:
            pool.partition(pool.size - self.workers)
            pool = pool[pool.size - self.workers:]
        self._free = pool.tolist()

    def rescale_remaining(self, now: float, factor: float) -> int:
        """Stretch the remaining busy time of every active worker.

        The batched counterpart of ``QueueingStation.rescale_in_flight``
        — the live-migration pause actuator.  Returns the number of
        workers re-scaled.
        """
        if factor <= 0:
            raise ConfigurationError("rescale factor must be positive")
        rescaled = 0
        for i, free in enumerate(self._free):
            remaining = free - now
            if remaining > 0.0:
                self._free[i] = now + remaining * factor
                rescaled += 1
        return rescaled


def bulk_cancel(sim, events: Iterable) -> int:
    """Cancel a batch of scheduled events through the queue bookkeeping.

    The batched engine replaces thousands of per-session think timers
    with array state, but burst waves and driver teardown still cancel
    heap events in bulk.  Routing every cancellation through
    ``Simulator.cancel`` keeps the queue's live/dead accounting exact —
    which is what triggers (and is verified by) heap compaction under
    cancellation-heavy load.  Returns the number of events cancelled.
    """
    cancelled = 0
    for event in events:
        if event is not None and not event.cancelled:
            sim.cancel(event)
            cancelled += 1
    return cancelled
