"""Discrete-event simulation kernel (substrate S1).

This package is a small, self-contained DES engine: a binary-heap event
queue with stable FIFO ordering for ties, a simulator clock, cancellable
events, periodic processes, named deterministic random streams, and a set
of service-time distribution samplers.

Everything above it in the library (hardware, hypervisor, RUBiS tiers,
monitoring) is driven by this engine.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.random import RandomStreams
from repro.sim.distributions import (
    Constant,
    Deterministic,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    LogNormal,
    Mixture,
    ParetoBounded,
    TruncatedNormal,
    Uniform,
    distribution_from_spec,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "PeriodicProcess",
    "RandomStreams",
    "Constant",
    "Deterministic",
    "Distribution",
    "Empirical",
    "Erlang",
    "Exponential",
    "LogNormal",
    "Mixture",
    "ParetoBounded",
    "TruncatedNormal",
    "Uniform",
    "distribution_from_spec",
]
