"""Deterministic named random streams.

Every stochastic component of the simulation draws from its own named
stream.  Streams are derived from a single root seed with
``numpy.random.SeedSequence`` spawned by a stable 64-bit hash of the
stream name, so:

* two runs with the same root seed produce identical traces,
* adding a new component (new stream name) does not perturb the draws of
  existing components — the property that makes A/B ablations meaningful.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _stable_name_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (process-independent)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        generator = self._streams.get(name)
        if generator is None:
            root = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stable_name_key(name),)
            )
            generator = np.random.default_rng(root)
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RandomStreams":
        """A new independent stream family (e.g. per experiment repetition)."""
        return RandomStreams(seed=(self.seed * 1_000_003 + salt) & (2**63 - 1))

    def stream_names(self) -> list:
        """Names of streams created so far (diagnostics)."""
        return sorted(self._streams)
