"""Event and event-queue primitives for the DES engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering *stable*: two events scheduled for the same time and
priority fire in the order they were scheduled, which keeps simulations
reproducible regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SchedulingError

#: Default priority; lower values fire first at equal timestamps.
DEFAULT_PRIORITY = 10


class Event:
    """A scheduled callback.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break priority; lower fires first.
        seq: Monotonic sequence number assigned by the queue.
        fn: Callback invoked as ``fn(*args)`` when the event fires.
        cancelled: True if :meth:`cancel` was called; the engine skips it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
        seq: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine discards it instead of firing it."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"<Event t={self.time:.6f} p={self.priority} {name}{state}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    Cancelled events stay in the heap and are dropped lazily on pop; this
    makes cancellation O(1) at the cost of occasional dead entries, the
    standard approach for DES engines.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` and return the event."""
        event = Event(time, fn, args, priority, next(self._counter))
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SchedulingError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self, event: Event) -> None:
        """Account for an externally cancelled event (keeps len() accurate)."""
        if not event.cancelled:
            raise SchedulingError("note_cancelled called on a live event")
        self._live -= 1

    def clear(self) -> None:
        """Discard all events."""
        self._heap.clear()
        self._live = 0
