"""Event and event-queue primitives for the DES engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering *stable*: two events scheduled for the same time and
priority fire in the order they were scheduled, which keeps simulations
reproducible regardless of heap internals.

The heap stores ``(time, priority, seq, event)`` tuples rather than bare
:class:`Event` objects so ``heapq`` compares tuples of numbers at C speed
instead of calling :meth:`Event.__lt__` for every sift — on
million-event runs the Python-level comparisons were the single largest
engine cost.  Cancelled events stay buried in the heap and are discarded
lazily; the queue tracks how many dead entries it holds and compacts the
heap once they outnumber the live ones, so cancellation-heavy workloads
(burst waves re-arming thousands of think timers) cannot degrade pop
cost indefinitely.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SchedulingError

#: Default priority; lower values fire first at equal timestamps.
DEFAULT_PRIORITY = 10


class Event:
    """A scheduled callback.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break priority; lower fires first.
        seq: Monotonic sequence number assigned by the queue.
        fn: Callback invoked as ``fn(*args)`` when the event fires.
        cancelled: True if :meth:`cancel` was called; the engine skips it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_noted")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
        seq: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # True once the owning queue accounted the cancellation in its
        # live/dead bookkeeping (see EventQueue.note_cancelled).
        self._noted = False

    def cancel(self) -> None:
        """Mark the event so the engine discards it instead of firing it."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"<Event t={self.time:.6f} p={self.priority} {name}{state}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    Cancelled events stay in the heap and are dropped lazily on pop; this
    makes cancellation O(1) at the cost of occasional dead entries, the
    standard approach for DES engines.  Dead entries are counted and the
    heap is compacted once they exceed both :data:`COMPACT_MIN_DEAD` and
    the number of live events.
    """

    #: Never bother compacting below this many dead entries.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        # Entries are (time, priority, seq, event); seq is unique so the
        # comparison never reaches the Event object.
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0
        self._dead = 0
        self._compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def dead_entries(self) -> int:
        """Cancelled-and-accounted entries still buried in the heap."""
        return self._dead

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (diagnostics)."""
        return self._compactions

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` and return the event."""
        # Build the event without a constructor frame: push runs once per
        # scheduled event and is the hottest allocation site in the engine.
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq = next(self._counter)
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._noted = False
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def _account_discard(self, event: Event) -> None:
        """Bookkeeping for a cancelled entry leaving the heap.

        Events cancelled through :meth:`note_cancelled` were already
        removed from the live count; events cancelled behind the queue's
        back (``event.cancel()`` without notification) still count as
        live until they surface here.
        """
        if event._noted:
            self._dead -= 1
        else:
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SchedulingError: if the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                self._account_discard(event)
                continue
            self._live -= 1
            return event
        raise SchedulingError("pop from an empty event queue")

    def pop_ready(self, max_time: float) -> Optional[Event]:
        """Pop the earliest live event with ``time <= max_time``.

        Returns None (leaving the heap untouched) when the queue is empty
        or the earliest live event lies beyond ``max_time``.  This fuses
        the peek/pop pair the engine's run loop would otherwise perform
        per event.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heapq.heappop(heap)
                self._account_discard(event)
                continue
            if entry[0] > max_time:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            self._account_discard(heapq.heappop(heap)[3])
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self, event: Event) -> None:
        """Account for an externally cancelled event (keeps len() accurate).

        Idempotent: noting the same event twice is a no-op, so callers
        holding several handles to one event cannot corrupt the live
        count.  Triggers a heap compaction when dead entries outnumber
        live ones.
        """
        if not event.cancelled:
            raise SchedulingError("note_cancelled called on a live event")
        if event._noted:
            return
        event._noted = True
        self._live -= 1
        self._dead += 1
        if self._dead > self.COMPACT_MIN_DEAD and self._dead > self._live:
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without dead entries.

        ``heapify`` over the surviving ``(time, priority, seq, event)``
        tuples preserves the queue's total order exactly: the sort key is
        unchanged and ``seq`` keeps ties stable.
        """
        kept = []
        unnoted = 0
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                if not event._noted:
                    unnoted += 1
                continue
            kept.append(entry)
        heapq.heapify(kept)
        self._heap = kept
        self._live -= unnoted
        self._dead = 0
        self._compactions += 1

    def clear(self) -> None:
        """Discard all events."""
        self._heap.clear()
        self._live = 0
        self._dead = 0
