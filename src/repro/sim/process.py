"""Periodic processes layered on the event engine.

A :class:`PeriodicProcess` re-schedules itself every ``interval`` seconds
until stopped.  It is used for samplers (the 2-second sysstat/perf tick),
scheduler epochs, background OS activity, and disk flush daemons.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.events import Event


class PeriodicProcess:
    """Invoke a callback every ``interval`` simulated seconds.

    The callback receives the simulator time of the tick.  Ticks are
    aligned to ``start + k * interval`` so long-running samplers do not
    drift (each tick is scheduled from the nominal previous tick time,
    not from whenever the callback finished).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[float], Any],
        start: Optional[float] = None,
        priority: int = 20,
        name: str = "periodic",
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.priority = priority
        self.name = name
        self._next_tick = sim.now + interval if start is None else start
        self._event: Optional[Event] = None
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "PeriodicProcess":
        """Arm the process; returns self for chaining."""
        if self._running:
            return self
        self._running = True
        self._arm()
        return self

    def stop(self) -> None:
        """Disarm the process; a pending tick is cancelled."""
        self._running = False
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _arm(self) -> None:
        if self._next_tick < self.sim.now:
            # Skip ticks that fell into the past (e.g. started late).
            missed = int((self.sim.now - self._next_tick) / self.interval) + 1
            self._next_tick += missed * self.interval
        self._event = self.sim.schedule_at(
            self._next_tick, self._fire, priority=self.priority
        )

    def _fire(self) -> None:
        self._event = None
        tick_time = self._next_tick
        self._next_tick = tick_time + self.interval
        self.ticks += 1
        self.callback(tick_time)
        if self._running:
            self._arm()
