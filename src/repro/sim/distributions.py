"""Service-time and size distributions used by the workload models.

Each distribution is a small object with a ``sample(rng)`` method, a
``mean()`` and, where meaningful, a coefficient of variation.  Web-server
literature motivates the specific family choices:

* request service times: log-normal (heavier right tail than exponential),
* think times: exponential around the configured mean (RUBiS client
  emulator draws negative-exponential think times),
* transfer sizes: bounded Pareto (classic heavy-tailed web object sizes),
* device jitter: truncated normal.

``distribution_from_spec`` builds one from a plain dict so experiment
configurations can be fully declarative.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError


class Distribution:
    """Interface for scalar random variates."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized sampling; subclasses override when numpy allows."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)


class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: Alias mirroring queueing-theory naming (D in Kendall notation).
Deterministic = Constant


class Exponential(Distribution):
    """Exponential with the given mean (rate = 1/mean)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError("Exponential mean must be positive")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ConfigurationError("Uniform requires high >= low")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class TruncatedNormal(Distribution):
    """Normal(mean, std) truncated below at ``floor`` by resampling.

    Used for device jitter where negative durations are meaningless.  The
    reported :meth:`mean` is the untruncated mean, a deliberate (small)
    approximation valid when ``floor`` is several sigma below the mean.
    """

    _MAX_RESAMPLES = 64

    def __init__(self, mean: float, std: float, floor: float = 0.0) -> None:
        if std < 0:
            raise ConfigurationError("std must be non-negative")
        self._mean = float(mean)
        self.std = float(std)
        self.floor = float(floor)

    def sample(self, rng: np.random.Generator) -> float:
        if self.std == 0:
            return max(self._mean, self.floor)
        for _ in range(self._MAX_RESAMPLES):
            value = rng.normal(self._mean, self.std)
            if value >= self.floor:
                return float(value)
        return self.floor

    def mean(self) -> float:
        return max(self._mean, self.floor)

    def __repr__(self) -> str:
        return (
            f"TruncatedNormal(mean={self._mean!r}, std={self.std!r}, "
            f"floor={self.floor!r})"
        )


class LogNormal(Distribution):
    """Log-normal parameterized by its arithmetic mean and CV.

    Given mean m and coefficient of variation c, the underlying normal
    parameters are sigma^2 = ln(1 + c^2) and mu = ln(m) - sigma^2 / 2.
    """

    def __init__(self, mean: float, cv: float = 0.5) -> None:
        if mean <= 0:
            raise ConfigurationError("LogNormal mean must be positive")
        if cv < 0:
            raise ConfigurationError("LogNormal cv must be non-negative")
        self._mean = float(mean)
        self.cv = float(cv)
        self._sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(self._sigma2)
        self._mu = math.log(mean) - self._sigma2 / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        if self.cv == 0:
            return self._mean
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.cv == 0:
            return np.full(n, self._mean)
        return rng.lognormal(self._mu, self._sigma, size=n)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean!r}, cv={self.cv!r})"


class ParetoBounded(Distribution):
    """Bounded Pareto on ``[low, high]`` with tail index ``alpha``.

    The classic heavy-tailed model for web object sizes.  Sampled by
    inversion of the truncated CDF.
    """

    def __init__(self, alpha: float, low: float, high: float) -> None:
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if not 0 < low < high:
            raise ConfigurationError("require 0 < low < high")
        self.alpha = float(alpha)
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._invert(rng.uniform()))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._invert(rng.uniform(size=n))

    def _invert(self, u):
        a, low, high = self.alpha, self.low, self.high
        hl = (low / high) ** a
        return low / (1.0 - u * (1.0 - hl)) ** (1.0 / a)

    def mean(self) -> float:
        a, low, high = self.alpha, self.low, self.high
        if a == 1.0:
            return math.log(high / low) * low * high / (high - low)
        num = (low**a) * (high ** (1 - a) - low ** (1 - a)) * a
        den = (1 - a) * (1 - (low / high) ** a)
        return num / den

    def __repr__(self) -> str:
        return (
            f"ParetoBounded(alpha={self.alpha!r}, low={self.low!r}, "
            f"high={self.high!r})"
        )


class Erlang(Distribution):
    """Erlang-k with the given mean (sum of k exponentials)."""

    def __init__(self, k: int, mean: float) -> None:
        if k < 1:
            raise ConfigurationError("Erlang shape k must be >= 1")
        if mean <= 0:
            raise ConfigurationError("Erlang mean must be positive")
        self.k = int(k)
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, self._mean / self.k))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.k, self._mean / self.k, size=n)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Erlang(k={self.k!r}, mean={self._mean!r})"


class Empirical(Distribution):
    """Discrete distribution over given values with given weights."""

    def __init__(self, values: Sequence[float], weights: Sequence[float]) -> None:
        if len(values) == 0:
            raise ConfigurationError("Empirical needs at least one value")
        if len(values) != len(weights):
            raise ConfigurationError("values and weights differ in length")
        weight_array = np.asarray(weights, dtype=float)
        if (weight_array < 0).any() or weight_array.sum() <= 0:
            raise ConfigurationError("weights must be non-negative, sum > 0")
        self.values = np.asarray(values, dtype=float)
        self.probabilities = weight_array / weight_array.sum()

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values, p=self.probabilities))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self.values, p=self.probabilities, size=n)

    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)})"


class Mixture(Distribution):
    """Probabilistic mixture of component distributions."""

    def __init__(
        self, components: Sequence[Distribution], weights: Sequence[float]
    ) -> None:
        if len(components) == 0:
            raise ConfigurationError("Mixture needs at least one component")
        if len(components) != len(weights):
            raise ConfigurationError("components and weights differ in length")
        weight_array = np.asarray(weights, dtype=float)
        if (weight_array < 0).any() or weight_array.sum() <= 0:
            raise ConfigurationError("weights must be non-negative, sum > 0")
        self.components = list(components)
        self.probabilities = weight_array / weight_array.sum()

    def sample(self, rng: np.random.Generator) -> float:
        index = rng.choice(len(self.components), p=self.probabilities)
        return self.components[index].sample(rng)

    def mean(self) -> float:
        means = np.array([c.mean() for c in self.components])
        return float(np.dot(means, self.probabilities))

    def __repr__(self) -> str:
        return f"Mixture(n={len(self.components)})"


_SPEC_BUILDERS = {
    "constant": lambda spec: Constant(spec["value"]),
    "deterministic": lambda spec: Constant(spec["value"]),
    "exponential": lambda spec: Exponential(spec["mean"]),
    "uniform": lambda spec: Uniform(spec["low"], spec["high"]),
    "lognormal": lambda spec: LogNormal(spec["mean"], spec.get("cv", 0.5)),
    "normal": lambda spec: TruncatedNormal(
        spec["mean"], spec["std"], spec.get("floor", 0.0)
    ),
    "pareto": lambda spec: ParetoBounded(
        spec["alpha"], spec["low"], spec["high"]
    ),
    "erlang": lambda spec: Erlang(spec["k"], spec["mean"]),
    "empirical": lambda spec: Empirical(spec["values"], spec["weights"]),
}


def distribution_from_spec(spec: Dict) -> Distribution:
    """Build a distribution from a declarative dict.

    The dict must contain a ``kind`` key naming the family plus the
    family's parameters, e.g. ``{"kind": "lognormal", "mean": 5e-3,
    "cv": 0.4}``.

    Raises:
        ConfigurationError: for an unknown kind or missing parameters.
    """
    if "kind" not in spec:
        raise ConfigurationError("distribution spec needs a 'kind' key")
    kind = spec["kind"]
    builder = _SPEC_BUILDERS.get(kind)
    if builder is None:
        known = ", ".join(sorted(_SPEC_BUILDERS))
        raise ConfigurationError(f"unknown distribution kind {kind!r}; known: {known}")
    try:
        return builder(spec)
    except KeyError as exc:
        raise ConfigurationError(
            f"distribution spec for {kind!r} is missing parameter {exc}"
        ) from None
