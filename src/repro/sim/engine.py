"""The simulation engine: a clock plus the event loop.

The engine is deliberately minimal.  Components schedule plain callbacks;
there is no coroutine machinery to reason about.  Periodic activities are
provided by :class:`repro.sim.process.PeriodicProcess` on top of this.

Typical use::

    sim = Simulator()
    sim.schedule(0.5, handler, arg1, arg2)
    sim.run_until(120.0)
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue


class Simulator:
    """Discrete-event simulator with an absolute clock in seconds."""

    def __init__(self, start_time: float = 0.0) -> None:
        #: Current simulated time in seconds (read-only by convention;
        #: a plain attribute because it is the hottest read in the system).
        self.now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self._events_fired = 0

    # -- clock ---------------------------------------------------------

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds from now.

        The body mirrors :meth:`EventQueue.push` rather than calling it:
        this is the single hottest API of the engine (one call per
        scheduled event), and the delegation frame was measurable.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        queue = self._queue
        event = Event.__new__(Event)
        event.time = time = self.now + delay
        event.priority = priority
        event.seq = seq = next(queue._counter)
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._noted = False
        heappush(queue._heap, (time, priority, seq, event))
        queue._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f} before now={self.now:.6f}"
            )
        return self._queue.push(time, fn, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled(event)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False if none remained."""
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self.now:
            raise SimulationError(
                f"event queue yielded t={event.time} before now={self.now}"
            )
        self.now = event.time
        self._events_fired += 1
        event.fn(*event.args)
        return True

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``, then set now to it.

        Events scheduled exactly at ``end_time`` fire.  The clock is left
        at ``end_time`` even if the queue drains early, so collectors see
        a consistent horizon.
        """
        if end_time < self.now:
            raise SimulationError(
                f"run_until({end_time}) is before now={self.now}"
            )
        self._running = True
        self._stopped = False
        # Hot path: the pop is inlined (mirroring EventQueue.pop_ready,
        # including its live/dead bookkeeping) and the fired counter is
        # kept in a local synced on exit, so each event costs one heap
        # pop plus the callback.  The heap reference is re-read per
        # event because a callback may trigger a compaction.
        queue = self._queue
        fired = self._events_fired
        try:
            while not self._stopped:
                heap = queue._heap
                event = None
                while heap:
                    entry = heap[0]
                    candidate = entry[3]
                    if candidate.cancelled:
                        heappop(heap)
                        if candidate._noted:
                            queue._dead -= 1
                        else:
                            queue._live -= 1
                        continue
                    if entry[0] > end_time:
                        break
                    heappop(heap)
                    queue._live -= 1
                    event = candidate
                    break
                if event is None:
                    break
                time = event.time
                if time < self.now:
                    raise SimulationError(
                        f"event queue yielded t={time} before now={self.now}"
                    )
                self.now = time
                fired += 1
                event.fn(*event.args)
        finally:
            self._events_fired = fired
            self._running = False
        if not self._stopped:
            self.now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains or ``max_events`` were fired."""
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while not self._stopped and self._queue:
                self.step()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current run loop after the in-flight event returns."""
        self._stopped = True

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        self._queue.clear()
        self.now = float(start_time)
        self._events_fired = 0
        self._stopped = False
