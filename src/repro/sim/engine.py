"""The simulation engine: a clock plus the event loop.

The engine is deliberately minimal.  Components schedule plain callbacks;
there is no coroutine machinery to reason about.  Periodic activities are
provided by :class:`repro.sim.process.PeriodicProcess` on top of this.

Typical use::

    sim = Simulator()
    sim.schedule(0.5, handler, arg1, arg2)
    sim.run_until(120.0)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue


class Simulator:
    """Discrete-event simulator with an absolute clock in seconds."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self._events_fired = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        return self._queue.push(self._now + delay, fn, args, priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        return self._queue.push(time, fn, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled(event)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False if none remained."""
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError(
                f"event queue yielded t={event.time} before now={self._now}"
            )
        self._now = event.time
        self._events_fired += 1
        event.fn(*event.args)
        return True

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``, then set now to it.

        Events scheduled exactly at ``end_time`` fire.  The clock is left
        at ``end_time`` even if the queue drains early, so collectors see
        a consistent horizon.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is before now={self._now}"
            )
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
        finally:
            self._running = False
        if not self._stopped:
            self._now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains or ``max_events`` were fired."""
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while not self._stopped and self._queue:
                self.step()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current run loop after the in-flight event returns."""
        self._stopped = True

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        self._queue.clear()
        self._now = float(start_time)
        self._events_fired = 0
        self._stopped = False
