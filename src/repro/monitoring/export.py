"""Trace export: CSV/JSON for trace sets, CSV/NPZ for columnar samples.

The columnar writers serialize a full-registry
:class:`~repro.monitoring.columnar.ColumnarRows` table — one row per
2-second tick, one column per metric — in layouts the traffic
subsystem's :class:`~repro.traffic.trace.RateTrace` readers understand,
so any recorded metric column can round-trip disk and come back as an
offered-load trace (or as a full :class:`ColumnarRows` via
:func:`read_columnar_npz`).
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
from typing import Dict

import numpy as np

from repro.errors import AnalysisError
from repro.monitoring.columnar import ColumnarRows
from repro.monitoring.timeseries import TraceSet


def trace_set_sha256(traces: TraceSet) -> str:
    """Stable content fingerprint of a whole trace set.

    Hashes every series (sorted by ``(entity, resource)`` key) over its
    name, unit, sample times and values — the determinism currency of
    the suite orchestrator: two runs are bit-identical iff their trace
    sets share this digest.
    """
    digest = hashlib.sha256()
    for entity, resource in sorted(traces.keys()):
        series = traces.get(entity, resource)
        digest.update(f"{entity}|{resource}|{series.unit}".encode("utf-8"))
        digest.update(np.ascontiguousarray(series.times).tobytes())
        digest.update(np.ascontiguousarray(series.values).tobytes())
    return digest.hexdigest()


def trace_set_to_csv(traces: TraceSet) -> str:
    """Wide CSV: one row per sample time, one column per series.

    All series must share the same sampling grid (they do when produced
    by one :class:`~repro.monitoring.sampler.TraceRecorder`).
    """
    keys = traces.keys()
    if not keys:
        raise AnalysisError("cannot export an empty trace set")
    first = traces.get(*keys[0])
    times = first.times
    columns = {}
    for entity, resource in keys:
        series = traces.get(entity, resource)
        if len(series) != len(first):
            raise AnalysisError(
                f"series {(entity, resource)} is not aligned with "
                f"{keys[0]}; cannot build a wide CSV"
            )
        columns[f"{entity}:{resource}"] = series.values
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s"] + list(columns))
    for i, t in enumerate(times):
        writer.writerow(
            [f"{t:.3f}"] + [f"{columns[c][i]:.6g}" for c in columns]
        )
    return buffer.getvalue()


def trace_set_to_json(traces: TraceSet) -> str:
    """JSON document with metadata and per-series arrays."""
    document: Dict = {
        "environment": traces.environment,
        "workload": traces.workload,
        "sample_period_s": traces.sample_period_s,
        "metadata": traces.metadata,
        "series": {},
    }
    for (entity, resource), series in traces.items():
        document["series"][f"{entity}:{resource}"] = {
            "unit": series.unit,
            "times": series.times.tolist(),
            "values": series.values.tolist(),
        }
    return json.dumps(document, indent=2, sort_keys=True)


def _columnar_rows_to(handle, columnar: ColumnarRows) -> None:
    if len(columnar) == 0:
        raise AnalysisError("cannot export an empty columnar table")
    writer = csv.writer(handle, lineterminator="\n")
    writer.writerow(columnar.columns)
    # savetxt formats the float matrix at C speed; the pure-Python
    # per-cell loop it replaces was minutes for hour-long tables.
    np.savetxt(handle, columnar.matrix(), fmt="%.9g", delimiter=",")


def columnar_to_csv(columnar: ColumnarRows) -> str:
    """Wide CSV of a columnar table: header row, one row per sample."""
    buffer = io.StringIO()
    _columnar_rows_to(buffer, columnar)
    return buffer.getvalue()


def write_columnar_csv(columnar: ColumnarRows, path: str) -> None:
    """Stream the columnar CSV to ``path``.

    Rows go straight to the file handle — an hour-long full-registry
    table is hundreds of MB as text, so it is never materialized as
    one string.
    """
    with open(path, "w", newline="") as handle:
        _columnar_rows_to(handle, columnar)


def write_columnar_npz(columnar: ColumnarRows, path: str) -> None:
    """Write a columnar table as compressed NPZ (columns + matrix).

    Column names go into one string array rather than one NPZ entry per
    metric: registry labels contain ``/`` and ``|``, which are not safe
    as zip member names.
    """
    if len(columnar) == 0:
        raise AnalysisError("cannot export an empty columnar table")
    np.savez_compressed(
        path,
        columns=np.array(columnar.columns, dtype=str),
        matrix=np.asarray(columnar.matrix()),
    )


def read_columnar_npz(path: str) -> ColumnarRows:
    """Load a :func:`write_columnar_npz` file back into memory."""
    with np.load(path, allow_pickle=False) as data:
        if "columns" not in data or "matrix" not in data:
            raise AnalysisError(
                f"{path}: not a columnar NPZ (needs 'columns' and 'matrix')"
            )
        names = [str(name) for name in data["columns"]]
        return ColumnarRows.from_matrix(names, data["matrix"])


def annotations_to_jsonl(annotations) -> str:
    """JSON Lines export of an annotation stream, one event per line.

    Accepts anything iterable of annotations (objects with
    ``to_dict()`` or plain dicts) — duck-typed so this module never
    imports :mod:`repro.obs`.  Lines come out in the stream's
    deterministic ``(time_s, priority, seq)`` order when given an
    :class:`~repro.obs.annotations.AnnotationStream` (its iterator
    sorts), insertion order otherwise.
    """
    lines = []
    for annotation in annotations:
        record = (
            annotation.to_dict()
            if hasattr(annotation, "to_dict")
            else annotation
        )
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_annotations_jsonl(annotations, path: str) -> None:
    """Write :func:`annotations_to_jsonl` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(annotations_to_jsonl(annotations))


def request_traces_to_jsonl(traces) -> str:
    """JSON Lines export of sampled request traces, one request per line.

    Accepts anything iterable of request traces (objects with
    ``to_dict()`` or plain dicts) — duck-typed so this module never
    imports :mod:`repro.obs`.
    """
    lines = []
    for trace in traces:
        record = trace.to_dict() if hasattr(trace, "to_dict") else trace
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_request_traces_jsonl(traces, path: str) -> None:
    """Write :func:`request_traces_to_jsonl` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(request_traces_to_jsonl(traces))


def request_traces_to_chrome_json(traces) -> str:
    """Chrome ``trace_event`` JSON of sampled request span trees.

    Loads straight into ``chrome://tracing`` / Perfetto: one process,
    one thread ("track") per traced session, one complete event
    (``"ph": "X"``) per span with the queue/service/ready split in
    ``args``.  Timestamps are microseconds of simulated time.  Duck-
    typed over objects shaped like :class:`~repro.obs.tracing.
    RequestTrace` (``session_id``/``seq``/``interaction``/``spans``).
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro request traces"},
        }
    ]
    for trace in traces:
        tid = int(trace.session_id)
        events.append(
            {
                "name": f"{trace.interaction} #{trace.seq}",
                "cat": "request",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": trace.start_s * 1e6,
                "dur": (trace.end_s - trace.start_s) * 1e6,
                "args": {"engine": trace.engine},
            }
        )
        for span in trace.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.device,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": span.start_s * 1e6,
                    "dur": (span.queue_s + span.service_s + span.ready_s)
                    * 1e6,
                    "args": {
                        "queue_ms": span.queue_s * 1e3,
                        "service_ms": span.service_s * 1e3,
                        "ready_ms": span.ready_s * 1e3,
                    },
                }
            )
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, sort_keys=True
    )


def write_request_traces_chrome_json(traces, path: str) -> None:
    """Write :func:`request_traces_to_chrome_json` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(request_traces_to_chrome_json(traces))


def write_trace_csv(traces: TraceSet, path: str) -> None:
    """Write :func:`trace_set_to_csv` output to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(trace_set_to_csv(traces))


def write_trace_json(traces: TraceSet, path: str) -> None:
    """Write :func:`trace_set_to_json` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(trace_set_to_json(traces))
