"""Trace export: CSV and JSON serialization of trace sets."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from repro.errors import AnalysisError
from repro.monitoring.timeseries import TraceSet


def trace_set_to_csv(traces: TraceSet) -> str:
    """Wide CSV: one row per sample time, one column per series.

    All series must share the same sampling grid (they do when produced
    by one :class:`~repro.monitoring.sampler.TraceRecorder`).
    """
    keys = traces.keys()
    if not keys:
        raise AnalysisError("cannot export an empty trace set")
    first = traces.get(*keys[0])
    times = first.times
    columns = {}
    for entity, resource in keys:
        series = traces.get(entity, resource)
        if len(series) != len(first):
            raise AnalysisError(
                f"series {(entity, resource)} is not aligned with "
                f"{keys[0]}; cannot build a wide CSV"
            )
        columns[f"{entity}:{resource}"] = series.values
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s"] + list(columns))
    for i, t in enumerate(times):
        writer.writerow(
            [f"{t:.3f}"] + [f"{columns[c][i]:.6g}" for c in columns]
        )
    return buffer.getvalue()


def trace_set_to_json(traces: TraceSet) -> str:
    """JSON document with metadata and per-series arrays."""
    document: Dict = {
        "environment": traces.environment,
        "workload": traces.workload,
        "sample_period_s": traces.sample_period_s,
        "metadata": traces.metadata,
        "series": {},
    }
    for (entity, resource), series in traces.items():
        document["series"][f"{entity}:{resource}"] = {
            "unit": series.unit,
            "times": series.times.tolist(),
            "values": series.values.tolist(),
        }
    return json.dumps(document, indent=2, sort_keys=True)


def write_trace_csv(traces: TraceSet, path: str) -> None:
    """Write :func:`trace_set_to_csv` output to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(trace_set_to_csv(traces))


def write_trace_json(traces: TraceSet, path: str) -> None:
    """Write :func:`trace_set_to_json` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(trace_set_to_json(traces))
