"""Columnar storage for full-registry samples.

The default full-registry output of :class:`~repro.monitoring.sampler.
TraceRecorder` is one dict per tick with ~1000 keys — convenient, but a
dict allocation plus per-key boxing for every sample, which dominates
memory on hour-long horizons.  :class:`ColumnarRows` stores the same
samples as one preallocated float64 matrix (rows = ticks, columns =
metrics) with amortized doubling growth, the layout every downstream
analysis actually wants: per-metric arrays come back as O(1) views.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import MonitoringError

_INITIAL_CAPACITY = 64


class ColumnarRows:
    """Append-only table of full-registry samples, one column per metric."""

    def __init__(self, columns: Sequence[str]) -> None:
        if not columns:
            raise MonitoringError("ColumnarRows needs at least one column")
        self._names = tuple(columns)
        if len(set(self._names)) != len(self._names):
            raise MonitoringError("duplicate column names in ColumnarRows")
        self._index = {name: i for i, name in enumerate(self._names)}
        self._buffer = np.empty((_INITIAL_CAPACITY, len(self._names)))
        self._n = 0

    @classmethod
    def from_matrix(
        cls, columns: Sequence[str], matrix: np.ndarray
    ) -> "ColumnarRows":
        """Adopt a (samples x columns) matrix (e.g. loaded from NPZ)."""
        table = cls(columns)
        # One guaranteed C-order copy; tables at the multi-hundred-MB
        # scale must not be duplicated transiently.
        data = np.array(matrix, dtype=float, order="C", copy=True)
        if data.ndim != 2 or data.shape[1] != len(table._names):
            raise MonitoringError(
                f"matrix shape {data.shape} does not match "
                f"{len(table._names)} columns"
            )
        table._buffer = data
        table._n = len(data)
        return table

    @classmethod
    def adopt_matrix(
        cls, columns: Sequence[str], matrix: np.ndarray
    ) -> "ColumnarRows":
        """Like :meth:`from_matrix` but takes ownership of ``matrix``.

        No defensive copy: the caller promises not to mutate the array
        afterwards.  This is the path for assembling multi-GB tables
        (e.g. appending control columns to an hour-long full-registry
        table) without a transient duplicate.
        """
        table = cls(columns)
        data = np.ascontiguousarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[1] != len(table._names):
            raise MonitoringError(
                f"matrix shape {data.shape} does not match "
                f"{len(table._names)} columns"
            )
        table._buffer = data
        table._n = len(data)
        return table

    @property
    def columns(self) -> tuple:
        return self._names

    def __len__(self) -> int:
        return self._n

    def append_row(self, row: Sequence[float]) -> None:
        """Append one sample given in column order."""
        if len(row) != len(self._names):
            raise MonitoringError(
                f"row has {len(row)} values, table has {len(self._names)} "
                "columns"
            )
        if self._n == len(self._buffer):
            grown = np.empty((2 * len(self._buffer), len(self._names)))
            grown[: self._n] = self._buffer[: self._n]
            self._buffer = grown
        self._buffer[self._n] = row
        self._n += 1

    def column(self, name: str) -> np.ndarray:
        """Read-only O(1) view of one metric across all samples."""
        if name not in self._index:
            raise MonitoringError(f"unknown column {name!r}")
        view = self._buffer[: self._n, self._index[name]]
        view.setflags(write=False)
        return view

    def matrix(self) -> np.ndarray:
        """Read-only (samples x columns) view of the whole table."""
        view = self._buffer[: self._n]
        view.setflags(write=False)
        return view

    def row(self, i: int) -> Dict[str, float]:
        """One sample as a dict (compatibility with dict-per-tick rows)."""
        if not 0 <= i < self._n:
            raise MonitoringError(
                f"row {i} out of range for table of {self._n}"
            )
        data = self._buffer[i]
        return {name: float(data[j]) for j, name in enumerate(self._names)}

    def rows(self) -> List[Dict[str, float]]:
        """All samples as dicts (compatibility with dict-per-tick rows)."""
        return [self.row(i) for i in range(self._n)]

    def __iter__(self) -> Iterator[Dict[str, float]]:
        return iter(self.rows())
