"""Monitoring substrate (S6): the sysstat/perf profiling pipeline.

The paper profiles 518 metrics at a 2-second period: 182 sysstat metrics
in the hypervisor (dom0), 182 in the VMs, and 154 perf hardware counters.
This package reproduces that pipeline:

* :mod:`~repro.monitoring.timeseries` — sampled series containers,
* :mod:`~repro.monitoring.metric` — metric descriptors (name, source,
  kind, unit, derivation),
* :mod:`~repro.monitoring.registry` — the full 518-metric catalogue,
* :mod:`~repro.monitoring.probes` — raw-counter probes over simulator
  entities (VM contexts, dom0, physical servers),
* :mod:`~repro.monitoring.sampler` — the 2 s periodic trace recorder,
* :mod:`~repro.monitoring.columnar` — per-metric array storage for
  full-registry samples (million-sample horizons),
* :mod:`~repro.monitoring.export` — CSV/JSON trace export plus
  CSV/NPZ round trips for columnar sample matrices.
"""

from repro.monitoring.columnar import ColumnarRows
from repro.monitoring.timeseries import TimeSeries, TraceSet
from repro.monitoring.metric import (
    Metric,
    MetricKind,
    MetricSource,
    SampleInputs,
)
from repro.monitoring.registry import (
    MetricRegistry,
    PERF_METRIC_COUNT,
    SYSSTAT_METRIC_COUNT,
    TOTAL_METRIC_COUNT,
    build_registry,
)
from repro.monitoring.probes import (
    ContextProbe,
    Dom0Probe,
    Probe,
    RawCounters,
)
from repro.monitoring.sampler import TraceRecorder
from repro.monitoring.export import (
    annotations_to_jsonl,
    columnar_to_csv,
    read_columnar_npz,
    trace_set_to_csv,
    trace_set_to_json,
    write_annotations_jsonl,
    write_columnar_csv,
    write_columnar_npz,
)

__all__ = [
    "ColumnarRows",
    "TimeSeries",
    "TraceSet",
    "Metric",
    "MetricKind",
    "MetricSource",
    "SampleInputs",
    "MetricRegistry",
    "build_registry",
    "SYSSTAT_METRIC_COUNT",
    "PERF_METRIC_COUNT",
    "TOTAL_METRIC_COUNT",
    "Probe",
    "RawCounters",
    "ContextProbe",
    "Dom0Probe",
    "TraceRecorder",
    "trace_set_to_csv",
    "trace_set_to_json",
    "annotations_to_jsonl",
    "write_annotations_jsonl",
    "columnar_to_csv",
    "write_columnar_csv",
    "write_columnar_npz",
    "read_columnar_npz",
]
