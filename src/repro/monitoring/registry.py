"""The 518-metric profiling catalogue.

Section 3 of the paper: "In total, 518 metrics are profiled, i.e., 182
for the hypervisor and 182 for VMs by sysstat and 154 for performance
counters by perf".  This module reproduces that catalogue:

* :func:`sysstat_metrics` — the 182 sysstat fields (sar groups: CPU,
  tasks, interrupts, swapping, paging, I/O, memory, swap space, huge
  pages, inodes/files, load, TTY, per-device disk, network DEV/EDEV,
  NFS client/server, sockets, IP/EIP, ICMP/EICMP, TCP/ETCP, UDP, power
  management, IPv6 sockets/IP/UDP), instantiated once with the
  hypervisor source and once with the VM source;
* :func:`perf_metrics` — the 154 perf counters: 34 system-wide events
  plus 15 events on each of the 8 cores.

Every metric derives its value from the interval's raw counter deltas
(:class:`~repro.monitoring.metric.SampleInputs`) through a small
behavioural model — rates from byte counts, microarchitectural events
from cycle counts and an IPC model that degrades under virtualization
(cache/TLB pollution, shadow paging), idle floors from housekeeping.
The counts are enforced by assertions and unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isfinite
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MonitoringError, UnknownMetricError
from repro.monitoring.metric import Metric, MetricKind, MetricSource, SampleInputs
from repro.units import KB

#: Counts stated in the paper (Section 3).
SYSSTAT_METRIC_COUNT = 182
PERF_METRIC_COUNT = 154
TOTAL_METRIC_COUNT = 2 * SYSSTAT_METRIC_COUNT + PERF_METRIC_COUNT

# -- small derivation helpers -------------------------------------------------

_SECTOR_BYTES = 512.0
_AVG_IO_BYTES = 24.0 * KB
_AVG_PKT_BYTES = 900.0


def _per_s(amount_fn: Callable[[SampleInputs], float]) -> Callable:
    """Turn an interval amount into a per-second rate with jitter."""

    def derive(d: SampleInputs) -> float:
        rate = amount_fn(d) / d.interval_s
        if rate < 0.0:
            rate = 0.0
        return rate * d.jitter()

    return derive


def _const(value: float, noise: float = 0.0) -> Callable:
    def derive(d: SampleInputs) -> float:
        return value * (d.jitter(noise) if noise > 0 else 1.0)

    return derive


def _zero_rare(rate_per_s: float) -> Callable:
    """Error-class metrics: almost always zero, rare small counts."""

    def derive(d: SampleInputs) -> float:
        return d.poisson(rate_per_s * d.interval_s) / d.interval_s

    return derive


@dataclass(frozen=True)
class _Arch:
    """Microarchitectural ratios; virtualization degrades all of them."""

    ipc: float
    branch_per_instr: float
    branch_miss: float
    cache_ref_per_instr: float
    cache_miss: float
    l1d_per_instr: float
    l1d_miss: float
    llc_miss: float
    dtlb_miss: float
    itlb_miss: float

    @classmethod
    def for_inputs(cls, d: SampleInputs) -> "_Arch":
        # The ratios depend only on the virtualization flag, so the two
        # profiles are singletons; building a frozen dataclass per metric
        # evaluation was a measurable share of full-registry sampling.
        return _ARCH_VIRTUALIZED if d.virtualized else _ARCH_BARE_METAL


_ARCH_VIRTUALIZED = _Arch(
    ipc=0.85,
    branch_per_instr=0.20,
    branch_miss=0.028,
    cache_ref_per_instr=0.042,
    cache_miss=0.18,
    l1d_per_instr=0.28,
    l1d_miss=0.045,
    llc_miss=0.30,
    dtlb_miss=0.007,
    itlb_miss=0.002,
)

_ARCH_BARE_METAL = _Arch(
    ipc=1.30,
    branch_per_instr=0.20,
    branch_miss=0.022,
    cache_ref_per_instr=0.038,
    cache_miss=0.12,
    l1d_per_instr=0.28,
    l1d_miss=0.030,
    llc_miss=0.22,
    dtlb_miss=0.002,
    itlb_miss=0.0008,
)


def _instructions(d: SampleInputs) -> float:
    return d.cpu_cycles * _Arch.for_inputs(d).ipc


# -- sysstat catalogue ----------------------------------------------------------

def _sysstat_rows() -> List[Tuple[str, MetricKind, str, str, Callable]]:
    """(name, kind, unit, description, derive) for all 182 fields."""
    C, G = MetricKind.COUNTER, MetricKind.GAUGE
    rows: List[Tuple[str, MetricKind, str, str, Callable]] = []

    def add(name, kind, unit, description, derive):
        rows.append((name, kind, unit, description, derive))

    # CPU utilization (sar -u) — 6
    add("%user", C, "%", "CPU time in user space",
        lambda d: d.cpu_utilization * 100.0 * 0.72 * d.jitter())
    add("%nice", C, "%", "CPU time in niced user processes",
        _zero_rare(0.01))
    add("%system", C, "%", "CPU time in kernel space",
        lambda d: d.cpu_utilization * 100.0 * 0.22 * d.jitter())
    add("%iowait", C, "%", "CPU idle while waiting on I/O",
        lambda d: min(25.0, (d.disk_bytes / d.interval_s) / (4e6) * d.jitter()))
    add("%steal", C, "%", "involuntary wait on the hypervisor",
        lambda d: (0.4 * d.cpu_utilization * 100.0 * d.jitter()
                   if d.virtualized else 0.0))
    add("%idle", C, "%", "CPU idle time",
        lambda d: max(0.0, 100.0 - d.cpu_utilization * 100.0 * d.jitter()))
    # Task creation and switching (sar -w) — 2
    add("proc/s", C, "1/s", "tasks created per second",
        lambda d: 0.8 + 0.02 * d.requests / d.interval_s * d.jitter())
    add("cswch/s", C, "1/s", "context switches per second",
        _per_s(lambda d: 40.0 * d.interval_s + 9.0 * d.requests))
    # Interrupts (sar -I SUM) — 1
    add("intr/s", C, "1/s", "hardware interrupts per second",
        _per_s(lambda d: 120.0 * d.interval_s
               + (d.net_bytes / _AVG_PKT_BYTES)
               + (d.disk_bytes / _AVG_IO_BYTES)))
    # Swapping (sar -W) — 2
    add("pswpin/s", C, "pages/s", "swap pages brought in", _zero_rare(0.002))
    add("pswpout/s", C, "pages/s", "swap pages written out", _zero_rare(0.002))
    # Paging (sar -B) — 9
    add("pgpgin/s", C, "KB/s", "KB paged in from disk",
        _per_s(lambda d: d.disk_read_bytes / KB))
    add("pgpgout/s", C, "KB/s", "KB paged out to disk",
        _per_s(lambda d: d.disk_write_bytes / KB))
    add("fault/s", C, "1/s", "page faults (minor+major)",
        _per_s(lambda d: 60.0 * d.interval_s + 25.0 * d.requests))
    add("majflt/s", C, "1/s", "major page faults",
        _zero_rare(0.05))
    add("pgfree/s", C, "pages/s", "pages placed on the free list",
        _per_s(lambda d: 200.0 * d.interval_s + 30.0 * d.requests))
    add("pgscank/s", C, "pages/s", "pages scanned by kswapd", _zero_rare(0.02))
    add("pgscand/s", C, "pages/s", "pages scanned directly", _zero_rare(0.01))
    add("pgsteal/s", C, "pages/s", "pages reclaimed from cache", _zero_rare(0.05))
    add("%vmeff", C, "%", "page reclaim efficiency", _const(0.0))
    # I/O and transfer rates (sar -b) — 5
    add("tps", C, "1/s", "I/O transfers per second",
        _per_s(lambda d: d.disk_bytes / _AVG_IO_BYTES))
    add("rtps", C, "1/s", "read transfers per second",
        _per_s(lambda d: d.disk_read_bytes / _AVG_IO_BYTES))
    add("wtps", C, "1/s", "write transfers per second",
        _per_s(lambda d: d.disk_write_bytes / _AVG_IO_BYTES))
    add("bread/s", C, "blocks/s", "blocks read per second",
        _per_s(lambda d: d.disk_read_bytes / _SECTOR_BYTES))
    add("bwrtn/s", C, "blocks/s", "blocks written per second",
        _per_s(lambda d: d.disk_write_bytes / _SECTOR_BYTES))
    # Memory utilization (sar -r) — 10
    add("kbmemfree", G, "KB", "free memory",
        lambda d: max(0.0, (d.mem_total_bytes - d.mem_used_bytes) / KB))
    add("kbmemused", G, "KB", "used memory",
        lambda d: d.mem_used_bytes / KB)
    add("%memused", G, "%", "used memory percentage",
        lambda d: 100.0 * d.mem_used_bytes / max(d.mem_total_bytes, 1.0))
    add("kbbuffers", G, "KB", "kernel buffer memory",
        lambda d: 0.035 * d.mem_used_bytes / KB * d.jitter())
    add("kbcached", G, "KB", "page cache memory",
        lambda d: 0.30 * d.mem_used_bytes / KB * d.jitter())
    add("kbcommit", G, "KB", "committed address space",
        lambda d: 1.25 * d.mem_used_bytes / KB)
    add("%commit", G, "%", "committed over total",
        lambda d: 125.0 * d.mem_used_bytes / max(d.mem_total_bytes, 1.0))
    add("kbactive", G, "KB", "active memory",
        lambda d: 0.55 * d.mem_used_bytes / KB * d.jitter())
    add("kbinact", G, "KB", "inactive memory",
        lambda d: 0.25 * d.mem_used_bytes / KB * d.jitter())
    add("kbdirty", G, "KB", "dirty pages awaiting writeback",
        lambda d: (d.disk_write_bytes * 0.5) / KB * d.jitter(0.2))
    # Swap space (sar -S) — 5
    add("kbswpfree", G, "KB", "free swap", _const(4_194_304.0))
    add("kbswpused", G, "KB", "used swap", _const(0.0))
    add("%swpused", G, "%", "used swap percentage", _const(0.0))
    add("kbswpcad", G, "KB", "cached swap", _const(0.0))
    add("%swpcad", G, "%", "cached swap percentage", _const(0.0))
    # Huge pages (sar -H) — 3
    add("kbhugfree", G, "KB", "free huge pages", _const(0.0))
    add("kbhugused", G, "KB", "used huge pages", _const(0.0))
    add("%hugused", G, "%", "huge page usage", _const(0.0))
    # Inode/file tables (sar -v) — 4
    add("dentunusd", G, "entries", "unused directory cache entries",
        _const(52_000.0, noise=0.05))
    add("file-nr", G, "entries", "open file handles",
        lambda d: 1600.0 + 3.0 * d.requests / d.interval_s * d.jitter())
    add("inode-nr", G, "entries", "in-core inodes",
        _const(34_000.0, noise=0.03))
    add("pty-nr", G, "entries", "pseudo-terminals in use", _const(2.0))
    # Load and run queue (sar -q) — 6
    add("runq-sz", G, "tasks", "run-queue length",
        lambda d: d.cpu_utilization * 8.0 * d.jitter(0.2))
    add("plist-sz", G, "tasks", "task-list size",
        _const(210.0, noise=0.02))
    add("ldavg-1", G, "load", "1-minute load average",
        lambda d: d.cpu_utilization * 8.0 * d.jitter(0.1))
    add("ldavg-5", G, "load", "5-minute load average",
        lambda d: d.cpu_utilization * 8.0 * d.jitter(0.05))
    add("ldavg-15", G, "load", "15-minute load average",
        lambda d: d.cpu_utilization * 8.0 * d.jitter(0.03))
    add("blocked", G, "tasks", "tasks blocked on I/O",
        lambda d: min(8.0, d.disk_bytes / (8e6) * d.jitter(0.3)))
    # TTY (sar -y) — 6
    for name, desc in (
        ("rcvin/s", "serial receive interrupts"),
        ("xmtin/s", "serial transmit interrupts"),
        ("framerr/s", "serial frame errors"),
        ("prtyerr/s", "serial parity errors"),
        ("brk/s", "serial breaks"),
        ("ovrun/s", "serial overruns"),
    ):
        add(name, C, "1/s", desc, _const(0.0))
    # Block device (sar -d, device sda) — 8
    add("dev-tps", C, "1/s", "device transfers per second",
        _per_s(lambda d: d.disk_bytes / _AVG_IO_BYTES))
    add("rd_sec/s", C, "sectors/s", "sectors read per second",
        _per_s(lambda d: d.disk_read_bytes / _SECTOR_BYTES))
    add("wr_sec/s", C, "sectors/s", "sectors written per second",
        _per_s(lambda d: d.disk_write_bytes / _SECTOR_BYTES))
    add("avgrq-sz", G, "sectors", "average request size",
        _const(_AVG_IO_BYTES / _SECTOR_BYTES, noise=0.1))
    add("avgqu-sz", G, "requests", "average device queue length",
        lambda d: min(4.0, d.disk_bytes / (16e6) * d.jitter(0.3)))
    add("await", G, "ms", "average I/O latency",
        lambda d: 4.0 + min(20.0, d.disk_bytes / (4e6)) * d.jitter(0.2))
    add("svctm", G, "ms", "average device service time",
        _const(3.5, noise=0.15))
    add("%util", C, "%", "device bandwidth utilization",
        lambda d: min(100.0, 100.0 * d.disk_bytes / (d.interval_s * 110e6)))
    # Network device (sar -n DEV, eth0) — 7
    add("rxpck/s", C, "pkts/s", "packets received",
        _per_s(lambda d: d.net_rx_bytes / _AVG_PKT_BYTES))
    add("txpck/s", C, "pkts/s", "packets transmitted",
        _per_s(lambda d: d.net_tx_bytes / _AVG_PKT_BYTES))
    add("rxkB/s", C, "KB/s", "KB received",
        _per_s(lambda d: d.net_rx_bytes / KB))
    add("txkB/s", C, "KB/s", "KB transmitted",
        _per_s(lambda d: d.net_tx_bytes / KB))
    add("rxcmp/s", C, "pkts/s", "compressed packets received", _const(0.0))
    add("txcmp/s", C, "pkts/s", "compressed packets transmitted", _const(0.0))
    add("rxmcst/s", C, "pkts/s", "multicast packets received",
        _zero_rare(0.2))
    # Network errors (sar -n EDEV) — 9
    for name, desc in (
        ("rxerr/s", "bad packets received"),
        ("txerr/s", "transmit errors"),
        ("coll/s", "collisions"),
        ("rxdrop/s", "receive drops"),
        ("txdrop/s", "transmit drops"),
        ("txcarr/s", "carrier errors"),
        ("rxfram/s", "frame alignment errors"),
        ("rxfifo/s", "receive FIFO overruns"),
        ("txfifo/s", "transmit FIFO overruns"),
    ):
        add(name, C, "1/s", desc, _zero_rare(0.005))
    # NFS client (sar -n NFS) — 6
    for name, desc in (
        ("call/s", "NFS client RPC calls"),
        ("retrans/s", "NFS client retransmissions"),
        ("read/s", "NFS client reads"),
        ("write/s", "NFS client writes"),
        ("access/s", "NFS client access calls"),
        ("getatt/s", "NFS client getattr calls"),
    ):
        add(name, C, "1/s", desc, _const(0.0))
    # NFS server (sar -n NFSD) — 11
    for name, desc in (
        ("scall/s", "NFS server RPC calls"),
        ("badcall/s", "NFS server bad calls"),
        ("packet/s", "NFS server packets"),
        ("udp/s", "NFS server UDP packets"),
        ("tcp/s", "NFS server TCP packets"),
        ("hit/s", "NFS server reply-cache hits"),
        ("miss/s", "NFS server reply-cache misses"),
        ("sread/s", "NFS server reads"),
        ("swrite/s", "NFS server writes"),
        ("saccess/s", "NFS server access calls"),
        ("sgetatt/s", "NFS server getattr calls"),
    ):
        add(name, C, "1/s", desc, _const(0.0))
    # Sockets (sar -n SOCK) — 6
    add("totsck", G, "sockets", "sockets in use",
        lambda d: 140.0 + 1.2 * d.requests / d.interval_s * d.jitter(0.05))
    add("tcpsck", G, "sockets", "TCP sockets in use",
        lambda d: 90.0 + 1.0 * d.requests / d.interval_s * d.jitter(0.05))
    add("udpsck", G, "sockets", "UDP sockets in use", _const(6.0))
    add("rawsck", G, "sockets", "raw sockets in use", _const(0.0))
    add("ip-frag", G, "fragments", "IP fragments queued", _const(0.0))
    add("tcp-tw", G, "sockets", "TCP sockets in TIME_WAIT",
        lambda d: 3.0 * d.requests / d.interval_s * d.jitter(0.15))
    # IP (sar -n IP) — 8
    add("irec/s", C, "dgm/s", "input datagrams",
        _per_s(lambda d: d.net_rx_bytes / _AVG_PKT_BYTES))
    add("fwddgm/s", C, "dgm/s", "forwarded datagrams",
        lambda d: (d.net_bytes / _AVG_PKT_BYTES / d.interval_s * d.jitter()
                   if d.virtualized else 0.0))
    add("idel/s", C, "dgm/s", "delivered datagrams",
        _per_s(lambda d: d.net_rx_bytes / _AVG_PKT_BYTES))
    add("orq/s", C, "dgm/s", "output datagram requests",
        _per_s(lambda d: d.net_tx_bytes / _AVG_PKT_BYTES))
    add("asmrq/s", C, "dgm/s", "fragments needing reassembly", _const(0.0))
    add("asmok/s", C, "dgm/s", "datagrams reassembled", _const(0.0))
    add("fragok/s", C, "dgm/s", "datagrams fragmented", _const(0.0))
    add("fragcrt/s", C, "dgm/s", "fragments created", _const(0.0))
    # IP errors (sar -n EIP) — 8
    for name, desc in (
        ("ihdrerr/s", "header errors"),
        ("iadrerr/s", "address errors"),
        ("iukwnpr/s", "unknown protocol"),
        ("idisc/s", "input discards"),
        ("odisc/s", "output discards"),
        ("onort/s", "no-route failures"),
        ("asmf/s", "reassembly failures"),
        ("fragf/s", "fragmentation failures"),
    ):
        add(name, C, "1/s", desc, _zero_rare(0.003))
    # ICMP (sar -n ICMP) — 14
    for name, desc in (
        ("imsg/s", "ICMP messages received"),
        ("omsg/s", "ICMP messages sent"),
        ("iech/s", "echo requests received"),
        ("iechr/s", "echo replies received"),
        ("oech/s", "echo requests sent"),
        ("oechr/s", "echo replies sent"),
        ("itm/s", "timestamps received"),
        ("itmr/s", "timestamp replies received"),
        ("otm/s", "timestamps sent"),
        ("otmr/s", "timestamp replies sent"),
        ("iadrmk/s", "address masks received"),
        ("iadrmkr/s", "address mask replies received"),
        ("oadrmk/s", "address masks sent"),
        ("oadrmkr/s", "address mask replies sent"),
    ):
        add(name, C, "1/s", desc, _zero_rare(0.01))
    # ICMP errors (sar -n EICMP) — 12
    for name, desc in (
        ("ierr/s", "ICMP input errors"),
        ("oerr/s", "ICMP output errors"),
        ("idstunr/s", "dest-unreachable received"),
        ("odstunr/s", "dest-unreachable sent"),
        ("itmex/s", "time-exceeded received"),
        ("otmex/s", "time-exceeded sent"),
        ("iparmpb/s", "parameter problems received"),
        ("oparmpb/s", "parameter problems sent"),
        ("isrcq/s", "source quench received"),
        ("osrcq/s", "source quench sent"),
        ("iredir/s", "redirects received"),
        ("oredir/s", "redirects sent"),
    ):
        add(name, C, "1/s", desc, _zero_rare(0.002))
    # TCP (sar -n TCP) — 4
    add("active/s", C, "conn/s", "active TCP opens",
        lambda d: 0.10 * d.requests / d.interval_s * d.jitter())
    add("passive/s", C, "conn/s", "passive TCP opens",
        lambda d: 0.35 * d.requests / d.interval_s * d.jitter())
    add("iseg/s", C, "seg/s", "TCP segments received",
        _per_s(lambda d: d.net_rx_bytes / _AVG_PKT_BYTES))
    add("oseg/s", C, "seg/s", "TCP segments sent",
        _per_s(lambda d: d.net_tx_bytes / _AVG_PKT_BYTES))
    # TCP errors (sar -n ETCP) — 5
    for name, desc in (
        ("atmptf/s", "failed connection attempts"),
        ("estres/s", "connection resets"),
        ("tcp-retrans/s", "segments retransmitted"),
        ("isegerr/s", "bad segments received"),
        ("orsts/s", "RST segments sent"),
    ):
        add(name, C, "1/s", desc, _zero_rare(0.02))
    # UDP (sar -n UDP) — 4
    add("idgm/s", C, "dgm/s", "UDP datagrams received", _zero_rare(0.5))
    add("odgm/s", C, "dgm/s", "UDP datagrams sent", _zero_rare(0.5))
    add("noport/s", C, "dgm/s", "UDP no-port datagrams", _zero_rare(0.01))
    add("idgmerr/s", C, "dgm/s", "UDP datagram errors", _zero_rare(0.005))
    # Power management (sar -m) — 3
    add("cpu-MHz", G, "MHz", "current CPU frequency", _const(2800.0, 0.002))
    add("fan-rpm", G, "rpm", "chassis fan speed", _const(5400.0, 0.01))
    add("temp-C", G, "degC", "device temperature",
        lambda d: 38.0 + 14.0 * d.cpu_utilization * d.jitter(0.05))
    # IPv6 sockets (sar -n SOCK6) — 4
    add("tcp6sck", G, "sockets", "TCPv6 sockets in use", _const(4.0))
    add("udp6sck", G, "sockets", "UDPv6 sockets in use", _const(2.0))
    add("raw6sck", G, "sockets", "raw IPv6 sockets in use", _const(0.0))
    add("ip6-frag", G, "fragments", "IPv6 fragments queued", _const(0.0))
    # IPv6 traffic (sar -n IP6) — 10
    for name, desc in (
        ("irec6/s", "IPv6 input datagrams"),
        ("fwddgm6/s", "IPv6 forwarded datagrams"),
        ("idel6/s", "IPv6 delivered datagrams"),
        ("orq6/s", "IPv6 output requests"),
        ("asmrq6/s", "IPv6 reassembly requests"),
        ("asmok6/s", "IPv6 reassembled datagrams"),
        ("imcpck6/s", "IPv6 multicast received"),
        ("omcpck6/s", "IPv6 multicast sent"),
        ("fragok6/s", "IPv6 datagrams fragmented"),
        ("fragcr6/s", "IPv6 fragments created"),
    ):
        add(name, C, "1/s", desc, _zero_rare(0.01))
    # IPv6 UDP (sar -n UDP6) — 4
    add("idgm6/s", C, "dgm/s", "UDPv6 datagrams received", _zero_rare(0.01))
    add("odgm6/s", C, "dgm/s", "UDPv6 datagrams sent", _zero_rare(0.01))
    add("noport6/s", C, "dgm/s", "UDPv6 no-port datagrams", _const(0.0))
    add("idgmer6/s", C, "dgm/s", "UDPv6 datagram errors", _const(0.0))

    assert len(rows) == SYSSTAT_METRIC_COUNT, (
        f"sysstat catalogue has {len(rows)} fields, expected "
        f"{SYSSTAT_METRIC_COUNT}"
    )
    return rows


def sysstat_metrics(source: MetricSource) -> List[Metric]:
    """The 182 sysstat metrics bound to one collector source."""
    return [
        Metric(name, source, kind, unit, description, derive)
        for name, kind, unit, description, derive in _sysstat_rows()
    ]


# -- perf catalogue ------------------------------------------------------------

def _perf_global_rows() -> List[Tuple[str, str, str, Callable]]:
    """(name, unit, description, derive) for the 34 system-wide events."""
    rows: List[Tuple[str, str, str, Callable]] = []

    def add(name, unit, description, derive):
        rows.append((name, unit, description, derive))

    def arch_rate(fn: Callable[[SampleInputs, _Arch], float]) -> Callable:
        def derive(d: SampleInputs) -> float:
            value = fn(d, _Arch.for_inputs(d))
            if value < 0.0:
                value = 0.0
            return value * d.jitter()

        return derive

    add("cycles", "cycles", "CPU cycles consumed",
        arch_rate(lambda d, a: d.cpu_cycles))
    add("instructions", "instr", "instructions retired",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc))
    add("branches", "branches", "branch instructions",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.branch_per_instr))
    add("branch-misses", "misses", "mispredicted branches",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.branch_per_instr
                  * a.branch_miss))
    add("bus-cycles", "cycles", "bus cycles",
        arch_rate(lambda d, a: d.cpu_cycles * 0.03))
    add("ref-cycles", "cycles", "reference cycles (unscaled TSC)",
        arch_rate(lambda d, a: d.cpu_cycles))
    add("stalled-cycles-frontend", "cycles", "frontend stall cycles",
        arch_rate(lambda d, a: d.cpu_cycles * (0.22 if d.virtualized else 0.14)))
    add("stalled-cycles-backend", "cycles", "backend stall cycles",
        arch_rate(lambda d, a: d.cpu_cycles * (0.35 if d.virtualized else 0.24)))
    add("cache-references", "refs", "last-level cache references",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.cache_ref_per_instr))
    add("cache-misses", "misses", "last-level cache misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.cache_ref_per_instr
                  * a.cache_miss))
    # L1 data cache — 6
    add("L1-dcache-loads", "loads", "L1D load accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr))
    add("L1-dcache-load-misses", "misses", "L1D load misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr
                  * a.l1d_miss))
    add("L1-dcache-stores", "stores", "L1D store accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr * 0.45))
    add("L1-dcache-store-misses", "misses", "L1D store misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr * 0.45
                  * a.l1d_miss))
    add("L1-dcache-prefetches", "prefetches", "L1D prefetches",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.01))
    add("L1-dcache-prefetch-misses", "misses", "L1D prefetch misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.01 * a.l1d_miss))
    # L1 instruction cache — 2
    add("L1-icache-loads", "loads", "L1I accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.9))
    add("L1-icache-load-misses", "misses", "L1I misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.9
                  * (0.012 if d.virtualized else 0.007)))
    # Last-level cache — 6
    add("LLC-loads", "loads", "LLC load accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.cache_ref_per_instr
                  * 0.6))
    add("LLC-load-misses", "misses", "LLC load misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.cache_ref_per_instr
                  * 0.6 * a.llc_miss))
    add("LLC-stores", "stores", "LLC store accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.cache_ref_per_instr
                  * 0.4))
    add("LLC-store-misses", "misses", "LLC store misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.cache_ref_per_instr
                  * 0.4 * a.llc_miss))
    add("LLC-prefetches", "prefetches", "LLC prefetches",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.004))
    add("LLC-prefetch-misses", "misses", "LLC prefetch misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.004 * a.llc_miss))
    # TLBs — 6
    add("dTLB-loads", "loads", "data TLB accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr))
    add("dTLB-load-misses", "misses", "data TLB load misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr
                  * a.dtlb_miss))
    add("dTLB-stores", "stores", "data TLB store accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr * 0.45))
    add("dTLB-store-misses", "misses", "data TLB store misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * a.l1d_per_instr * 0.45
                  * a.dtlb_miss))
    add("iTLB-loads", "loads", "instruction TLB accesses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.9))
    add("iTLB-load-misses", "misses", "instruction TLB misses",
        arch_rate(lambda d, a: d.cpu_cycles * a.ipc * 0.9 * a.itlb_miss))
    # Software events — 4
    add("task-clock", "ms", "task clock time",
        lambda d: d.cpu_utilization * d.interval_s * 1000.0 * d.jitter())
    add("page-faults", "faults", "page faults",
        lambda d: (60.0 * d.interval_s + 25.0 * d.requests) * d.jitter())
    add("context-switches", "switches", "context switches",
        lambda d: (40.0 * d.interval_s + 9.0 * d.requests) * d.jitter())
    add("cpu-migrations", "migrations", "task CPU migrations",
        lambda d: (0.8 * d.interval_s + 0.02 * d.requests) * d.jitter())

    assert len(rows) == 34, f"perf global catalogue has {len(rows)}, expected 34"
    return rows


#: The 15 events collected per core.
_PER_CORE_EVENTS: Tuple[str, ...] = (
    "cycles",
    "instructions",
    "cache-references",
    "cache-misses",
    "branches",
    "branch-misses",
    "L1-dcache-loads",
    "L1-dcache-load-misses",
    "LLC-loads",
    "LLC-load-misses",
    "dTLB-load-misses",
    "iTLB-load-misses",
    "stalled-cycles-frontend",
    "stalled-cycles-backend",
    "ref-cycles",
)

_CORE_COUNT = 8


def perf_metrics() -> List[Metric]:
    """The 154 perf counters: 34 global + 15 x 8 per-core events."""
    global_rows = _perf_global_rows()
    derive_by_name = {name: derive for name, _, _, derive in global_rows}
    metrics = [
        Metric(name, MetricSource.PERF, MetricKind.COUNTER, unit,
               description, derive)
        for name, unit, description, derive in global_rows
    ]
    for core in range(_CORE_COUNT):
        for event in _PER_CORE_EVENTS:
            base_derive = derive_by_name[event]
            metrics.append(
                Metric(
                    name=f"cpu{core}/{event}",
                    source=MetricSource.PERF,
                    kind=MetricKind.COUNTER,
                    unit="events",
                    description=f"{event} on core {core}",
                    # Cores share the load unevenly; each gets ~1/8 of the
                    # package total with imbalance noise.
                    derive=(
                        lambda d, fn=base_derive: fn(d) / _CORE_COUNT
                        * d.jitter(0.15)
                    ),
                )
            )
    assert len(metrics) == PERF_METRIC_COUNT, (
        f"perf catalogue has {len(metrics)}, expected {PERF_METRIC_COUNT}"
    )
    return metrics


# -- registry ---------------------------------------------------------------------

class MetricRegistry:
    """Lookup and bulk-evaluation over a metric collection."""

    def __init__(self, metrics: Sequence[Metric]) -> None:
        self._metrics = list(metrics)
        self._by_name: Dict[Tuple[MetricSource, str], Metric] = {}
        for metric in self._metrics:
            key = (metric.source, metric.name)
            if key in self._by_name:
                raise UnknownMetricError(
                    f"duplicate metric {metric.qualified_name!r}"
                )
            self._by_name[key] = metric
        self._compiled: Dict[
            Optional[MetricSource], Tuple[Tuple[str, str, Callable], ...]
        ] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self, source: Optional[MetricSource] = None) -> List[Metric]:
        if source is None:
            return list(self._metrics)
        return [m for m in self._metrics if m.source is source]

    def lookup(self, source: MetricSource, name: str) -> Metric:
        key = (source, name)
        if key not in self._by_name:
            raise UnknownMetricError(f"unknown metric {source.value}/{name}")
        return self._by_name[key]

    def compiled(
        self, source: Optional[MetricSource] = None
    ) -> Tuple[Tuple[str, str, Callable], ...]:
        """Flat ``(qualified_name, name, derive)`` triples for one source.

        Built once per source and reused across sampling ticks, so bulk
        evaluation does no per-metric attribute or dict lookups.  Order
        matches :meth:`metrics`, which keeps noise-stream consumption
        (and therefore trace values) identical to per-metric evaluation.
        """
        cached = self._compiled.get(source)
        if cached is None:
            cached = tuple(
                (metric.qualified_name, metric.name, metric.derive)
                for metric in self.metrics(source)
            )
            self._compiled[source] = cached
        return cached

    def evaluate_all(
        self, inputs: SampleInputs, source: Optional[MetricSource] = None
    ) -> Dict[str, float]:
        """Evaluate every metric (optionally of one source) on one interval."""
        out: Dict[str, float] = {}
        for qualified_name, name, derive in self.compiled(source):
            value = float(derive(inputs))
            if not isfinite(value):
                raise MonitoringError(
                    f"metric {name!r} produced a non-finite value"
                )
            out[qualified_name] = value
        return out

    def counts_by_source(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for metric in self._metrics:
            counts[metric.source.value] = counts.get(metric.source.value, 0) + 1
        return counts


def build_registry() -> MetricRegistry:
    """The full 518-metric catalogue of the paper's Section 3."""
    metrics = (
        sysstat_metrics(MetricSource.SYSSTAT_HYPERVISOR)
        + sysstat_metrics(MetricSource.SYSSTAT_VM)
        + perf_metrics()
    )
    registry = MetricRegistry(metrics)
    assert len(registry) == TOTAL_METRIC_COUNT
    return registry


#: The curated sample the paper prints as Table 1.
TABLE1_ROWS: Tuple[Tuple[str, str], ...] = (
    ("sysstat-hypervisor", "%user"),
    ("sysstat-hypervisor", "%system"),
    ("sysstat-hypervisor", "%iowait"),
    ("sysstat-hypervisor", "%idle"),
    ("sysstat-hypervisor", "proc/s"),
    ("sysstat-hypervisor", "cswch/s"),
    ("sysstat-hypervisor", "kbmemused"),
    ("sysstat-hypervisor", "kbcached"),
    ("sysstat-hypervisor", "pgpgin/s"),
    ("sysstat-hypervisor", "pgpgout/s"),
    ("sysstat-hypervisor", "tps"),
    ("sysstat-hypervisor", "bread/s"),
    ("sysstat-hypervisor", "bwrtn/s"),
    ("sysstat-hypervisor", "rxkB/s"),
    ("sysstat-hypervisor", "txkB/s"),
    ("sysstat-vm", "%user"),
    ("sysstat-vm", "%steal"),
    ("sysstat-vm", "kbmemused"),
    ("sysstat-vm", "rxkB/s"),
    ("sysstat-vm", "txkB/s"),
    ("perf", "cycles"),
    ("perf", "instructions"),
    ("perf", "cache-references"),
    ("perf", "cache-misses"),
    ("perf", "dTLB-load-misses"),
)


def table1_sample(registry: Optional[MetricRegistry] = None) -> List[Metric]:
    """The Table 1 metric sample as descriptor objects."""
    registry = registry or build_registry()
    by_value = {source.value: source for source in MetricSource}
    return [
        registry.lookup(by_value[source_value], name)
        for source_value, name in TABLE1_ROWS
    ]
