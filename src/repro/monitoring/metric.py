"""Metric descriptors: what sysstat/perf report and how we derive it.

A :class:`Metric` couples an identity (name, source, kind, unit,
description — what Table 1 of the paper lists) with a derivation
function mapping one sampling interval's raw counter deltas to the
metric's value.  Derivations receive a :class:`SampleInputs` with the
interval deltas, machine constants and a noise stream, mirroring how
sysstat computes rates from successive ``/proc`` snapshots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from math import isfinite
from typing import Callable

import numpy as np

from repro.errors import MonitoringError


class MetricSource(enum.Enum):
    """Where the paper's three collectors run."""

    SYSSTAT_HYPERVISOR = "sysstat-hypervisor"
    SYSSTAT_VM = "sysstat-vm"
    PERF = "perf"


class MetricKind(enum.Enum):
    """COUNTER metrics are per-interval rates; GAUGE metrics are levels."""

    COUNTER = "counter"
    GAUGE = "gauge"


@dataclass
class SampleInputs:
    """Everything a derivation may consume for one sampling interval."""

    #: Interval length in seconds (the paper's 2 s).
    interval_s: float
    #: CPU cycles executed by the entity in the interval.
    cpu_cycles: float
    #: Used memory level at the sample instant (bytes).
    mem_used_bytes: float
    #: Total memory visible to the entity (bytes).
    mem_total_bytes: float
    #: Disk bytes read / written in the interval.
    disk_read_bytes: float
    disk_write_bytes: float
    #: Network bytes received / transmitted in the interval.
    net_rx_bytes: float
    net_tx_bytes: float
    #: Requests completed in the interval (application events).
    requests: float
    #: Cycles the entity could have executed (capacity).
    capacity_cycles: float
    #: Noise stream for measurement jitter.
    rng: np.random.Generator
    #: True when the entity runs virtualized (IPC degradation etc.).
    virtualized: bool = False
    #: Optional pre-drawn noise feed (:class:`DrawRecorder` or
    #: :class:`ReplayFeed`); when set, :meth:`jitter` and
    #: :meth:`poisson` take their draws from it instead of ``rng``.
    feed: object = None

    # Derived quantities are cached: one SampleInputs describes one
    # immutable interval snapshot, and hundreds of metric derivations
    # read these per sample.

    @cached_property
    def cpu_utilization(self) -> float:
        """Busy fraction in [0, 1]."""
        if self.capacity_cycles <= 0:
            return 0.0
        return min(1.0, self.cpu_cycles / self.capacity_cycles)

    @cached_property
    def disk_bytes(self) -> float:
        return self.disk_read_bytes + self.disk_write_bytes

    @cached_property
    def net_bytes(self) -> float:
        return self.net_rx_bytes + self.net_tx_bytes

    def jitter(self, scale: float = 0.03) -> float:
        """Multiplicative measurement noise around 1."""
        if scale <= 0:
            return 1.0
        feed = self.feed
        if feed is not None:
            return feed.normal(scale)
        draw = self.rng.normal(1.0, scale)
        return float(draw) if draw > 0.0 else 0.0

    def poisson(self, lam: float) -> float:
        """One Poisson count draw (rare-event metrics)."""
        feed = self.feed
        if feed is not None:
            return feed.poisson(lam)
        return float(self.rng.poisson(lam))


class DrawRecorder:
    """Pass-through noise feed that records the draw schedule.

    Used for the first sample of a probe: draws scalars from ``rng``
    (bit-identical to the unfed path) while noting each draw's
    distribution and parameter.  The recorded schedule compiles into a
    :class:`DrawSchedule` that batches every later tick's draws.
    """

    __slots__ = ("rng", "schedule")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self.schedule: list = []

    def normal(self, scale: float) -> float:
        self.schedule.append(("normal", scale))
        draw = self.rng.normal(1.0, scale)
        return float(draw) if draw > 0.0 else 0.0

    def poisson(self, lam: float) -> float:
        self.schedule.append(("poisson", lam))
        return float(self.rng.poisson(lam))


class ReplayFeed:
    """Hands out one tick's pre-drawn noise values in schedule order."""

    __slots__ = ("values", "pos")

    def __init__(self, values: list) -> None:
        self.values = values
        self.pos = 0

    def _next(self) -> float:
        pos = self.pos
        self.pos = pos + 1
        return self.values[pos]

    def normal(self, scale: float) -> float:
        return self._next()

    def poisson(self, lam: float) -> float:
        return self._next()


class DrawSchedule:
    """A probe's fixed per-tick draw schedule, segment-batched.

    The registry's noise draws per tick form a fixed sequence per
    probe (the only draw-count conditionals key on ``virtualized``,
    which never changes for a probe).  Consecutive same-distribution
    draws are grouped so one tick costs a handful of array fills
    instead of ~850 scalar Generator calls.  Array fills consume the
    underlying bit stream element-wise exactly like sequential scalar
    draws, so replayed ticks are bit-identical to unbatched ones.
    """

    __slots__ = ("segments", "size")

    def __init__(self, schedule: list) -> None:
        groups: list = []
        for dist, param in schedule:
            if groups and groups[-1][0] == dist:
                groups[-1][1].append(param)
            else:
                groups.append((dist, [param]))
        self.segments = [
            (dist, np.asarray(params, dtype=np.float64))
            for dist, params in groups
        ]
        self.size = len(schedule)

    def draw(self, rng: np.random.Generator) -> ReplayFeed:
        """Batch-draw one tick's noise values from ``rng``."""
        parts = []
        for dist, params in self.segments:
            if dist == "normal":
                draws = rng.normal(1.0, params)
                # Same clamp jitter() applies per scalar draw.
                parts.append(np.where(draws > 0.0, draws, 0.0))
            else:
                parts.append(rng.poisson(params).astype(np.float64))
        values = np.concatenate(parts).tolist() if parts else []
        return ReplayFeed(values)


@dataclass(frozen=True)
class Metric:
    """One entry of the profiling catalogue."""

    name: str
    source: MetricSource
    kind: MetricKind
    unit: str
    description: str
    derive: Callable[[SampleInputs], float]

    def evaluate(self, inputs: SampleInputs) -> float:
        """Compute the metric value; non-finite results are an error."""
        value = float(self.derive(inputs))
        if not isfinite(value):
            raise MonitoringError(
                f"metric {self.name!r} produced a non-finite value"
            )
        return value

    @property
    def qualified_name(self) -> str:
        return f"{self.source.value}/{self.name}"
