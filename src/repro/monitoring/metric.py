"""Metric descriptors: what sysstat/perf report and how we derive it.

A :class:`Metric` couples an identity (name, source, kind, unit,
description — what Table 1 of the paper lists) with a derivation
function mapping one sampling interval's raw counter deltas to the
metric's value.  Derivations receive a :class:`SampleInputs` with the
interval deltas, machine constants and a noise stream, mirroring how
sysstat computes rates from successive ``/proc`` snapshots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from math import isfinite
from typing import Callable

import numpy as np

from repro.errors import MonitoringError


class MetricSource(enum.Enum):
    """Where the paper's three collectors run."""

    SYSSTAT_HYPERVISOR = "sysstat-hypervisor"
    SYSSTAT_VM = "sysstat-vm"
    PERF = "perf"


class MetricKind(enum.Enum):
    """COUNTER metrics are per-interval rates; GAUGE metrics are levels."""

    COUNTER = "counter"
    GAUGE = "gauge"


@dataclass
class SampleInputs:
    """Everything a derivation may consume for one sampling interval."""

    #: Interval length in seconds (the paper's 2 s).
    interval_s: float
    #: CPU cycles executed by the entity in the interval.
    cpu_cycles: float
    #: Used memory level at the sample instant (bytes).
    mem_used_bytes: float
    #: Total memory visible to the entity (bytes).
    mem_total_bytes: float
    #: Disk bytes read / written in the interval.
    disk_read_bytes: float
    disk_write_bytes: float
    #: Network bytes received / transmitted in the interval.
    net_rx_bytes: float
    net_tx_bytes: float
    #: Requests completed in the interval (application events).
    requests: float
    #: Cycles the entity could have executed (capacity).
    capacity_cycles: float
    #: Noise stream for measurement jitter.
    rng: np.random.Generator
    #: True when the entity runs virtualized (IPC degradation etc.).
    virtualized: bool = False

    # Derived quantities are cached: one SampleInputs describes one
    # immutable interval snapshot, and hundreds of metric derivations
    # read these per sample.

    @cached_property
    def cpu_utilization(self) -> float:
        """Busy fraction in [0, 1]."""
        if self.capacity_cycles <= 0:
            return 0.0
        return min(1.0, self.cpu_cycles / self.capacity_cycles)

    @cached_property
    def disk_bytes(self) -> float:
        return self.disk_read_bytes + self.disk_write_bytes

    @cached_property
    def net_bytes(self) -> float:
        return self.net_rx_bytes + self.net_tx_bytes

    def jitter(self, scale: float = 0.03) -> float:
        """Multiplicative measurement noise around 1."""
        if scale <= 0:
            return 1.0
        draw = self.rng.normal(1.0, scale)
        return float(draw) if draw > 0.0 else 0.0


@dataclass(frozen=True)
class Metric:
    """One entry of the profiling catalogue."""

    name: str
    source: MetricSource
    kind: MetricKind
    unit: str
    description: str
    derive: Callable[[SampleInputs], float]

    def evaluate(self, inputs: SampleInputs) -> float:
        """Compute the metric value; non-finite results are an error."""
        value = float(self.derive(inputs))
        if not isfinite(value):
            raise MonitoringError(
                f"metric {self.name!r} produced a non-finite value"
            )
        return value

    @property
    def qualified_name(self) -> str:
        return f"{self.source.value}/{self.name}"
