"""The trace recorder: the paper's 2-second sampling loop.

Every ``interval_s`` (default 2 s, the "Time(Sample 2s)" of all eight
figures) the recorder snapshots each probe, differences the counters,
and appends to the core resource series:

* ``cpu_cycles``  — cycles consumed in the interval (Figures 1/5),
* ``mem_used_mb`` — used memory level in MB (Figures 2/6),
* ``disk_kb``     — disk KB read+written in the interval (Figures 3/7),
* ``net_kb``      — network KB received+transmitted (Figures 4/8).

Optionally it also evaluates the full 518-metric registry per interval
(``collect_full_registry=True``), producing the wide rows a real
sysstat+perf deployment would log.

The tick is the telemetry hot path, so everything resolvable at
construction time is resolved then: per-probe ``(probe, snapshot,
append, ...)`` bindings replace the per-tick dict lookups, and the
registry is compiled into flat per-probe ``(column, name, derive)``
lists with the ``entity|qualified_name`` column labels prebuilt (the
per-tick f-string formatting of ~1000 keys was a measurable cost).
With ``columnar_rows=True`` the full-registry samples go to a
:class:`~repro.monitoring.columnar.ColumnarRows` table instead of one
dict per tick.
"""

from __future__ import annotations

from math import isfinite
from typing import Dict, List, Optional, Sequence

from repro.errors import MonitoringError
from repro.monitoring.columnar import ColumnarRows
from repro.monitoring.metric import (
    DrawRecorder,
    DrawSchedule,
    MetricSource,
    SampleInputs,
)
from repro.monitoring.probes import Probe, RawCounters
from repro.monitoring.registry import MetricRegistry
from repro.monitoring.timeseries import TimeSeries, TraceSet
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.units import KB, MB, SAMPLE_PERIOD_S

#: The four resource classes of the paper, with units.
CORE_RESOURCES = (
    ("cpu_cycles", "cycles/sample"),
    ("mem_used_mb", "MB"),
    ("disk_kb", "KB/sample"),
    ("net_kb", "KB/sample"),
)


class TraceRecorder:
    """Samples a set of probes into a :class:`TraceSet`."""

    def __init__(
        self,
        sim: Simulator,
        probes: Sequence[Probe],
        environment: str,
        workload: str,
        interval_s: float = SAMPLE_PERIOD_S,
        registry: Optional[MetricRegistry] = None,
        collect_full_registry: bool = False,
        rng=None,
        columnar_rows: bool = False,
    ) -> None:
        if not probes:
            raise MonitoringError("TraceRecorder needs at least one probe")
        names = [probe.entity for probe in probes]
        if len(set(names)) != len(names):
            raise MonitoringError(f"duplicate probe entities: {names}")
        self.sim = sim
        self.probes = list(probes)
        self.interval_s = float(interval_s)
        self.registry = registry
        self.collect_full_registry = collect_full_registry
        if collect_full_registry and registry is None:
            raise MonitoringError(
                "collect_full_registry=True requires a registry"
            )
        if collect_full_registry and rng is None:
            raise MonitoringError("collect_full_registry=True requires an rng")
        if columnar_rows and not collect_full_registry:
            raise MonitoringError(
                "columnar_rows=True requires collect_full_registry=True"
            )
        self.rng = rng
        self.traces = TraceSet(environment, workload, self.interval_s)
        for probe in self.probes:
            for resource, unit in CORE_RESOURCES:
                self.traces.add(
                    probe.entity,
                    resource,
                    TimeSeries(f"{probe.entity}:{resource}", unit),
                )
        # Pre-bind everything _tick needs per probe: the snapshot callable
        # and the four series append methods (zero dict lookups per tick).
        self._bound = [
            (
                probe,
                probe.snapshot,
                self.traces.get(probe.entity, "cpu_cycles").append,
                self.traces.get(probe.entity, "mem_used_mb").append,
                self.traces.get(probe.entity, "disk_kb").append,
                self.traces.get(probe.entity, "net_kb").append,
            )
            for probe in self.probes
        ]
        self._previous: List[RawCounters] = [
            probe.snapshot() for probe in self.probes
        ]
        # Per-probe compiled registry: (column_label, name, derive) with
        # "entity|source/name" labels prebuilt; sysstat source first,
        # then perf, matching per-source evaluation order.
        self._compiled: List[tuple] = []
        if collect_full_registry:
            for probe in self.probes:
                entity = probe.entity
                source = self._source_for(probe)
                triples = [
                    (f"{entity}|{qualified}", name, derive)
                    for qualified, name, derive in (
                        registry.compiled(source)
                        + registry.compiled(MetricSource.PERF)
                    )
                ]
                self._compiled.append(tuple(triples))
        # Per-probe noise-draw schedules, recorded on the first sample
        # and replayed as batched array draws on every later one (see
        # DrawSchedule) — bit-identical, ~10x fewer Generator calls.
        self._schedules: List[Optional[DrawSchedule]] = [
            None for _ in self._compiled
        ]
        self.full_rows: List[Dict[str, float]] = []
        self.columnar: Optional[ColumnarRows] = None
        self._use_columnar = columnar_rows
        if columnar_rows:
            columns = ["time_s"]
            for triples in self._compiled:
                columns.extend(label for label, _, _ in triples)
            self.columnar = ColumnarRows(columns)
        self._process = PeriodicProcess(
            sim, self.interval_s, self._tick, priority=30, name="trace-recorder"
        ).start()
        self.samples_taken = 0

    def _tick(self, tick_time: float) -> None:
        self.samples_taken += 1
        previous = self._previous
        collect = self.collect_full_registry
        columnar = self._use_columnar
        if collect:
            scratch: list = [tick_time] if columnar else None
            row: Optional[Dict[str, float]] = (
                None if columnar else {"time_s": tick_time}
            )
        for i, (probe, snapshot, cpu_append, mem_append, disk_append,
                net_append) in enumerate(self._bound):
            current = snapshot()
            delta = current.delta(previous[i])
            delta.validate_monotonic()
            previous[i] = current
            cpu_append(tick_time, delta.cpu_cycles)
            mem_append(tick_time, delta.mem_used_bytes / MB)
            disk_append(
                tick_time,
                (delta.disk_read_bytes + delta.disk_write_bytes) / KB,
            )
            net_append(
                tick_time, (delta.net_rx_bytes + delta.net_tx_bytes) / KB
            )
            if collect:
                inputs = self._sample_inputs(probe, delta)
                schedule = self._schedules[i]
                if schedule is None:
                    inputs.feed = feed = DrawRecorder(self.rng)
                else:
                    inputs.feed = feed = schedule.draw(self.rng)
                if columnar:
                    push = scratch.append
                    for _, name, derive in self._compiled[i]:
                        value = float(derive(inputs))
                        if not isfinite(value):
                            raise MonitoringError(
                                f"metric {name!r} produced a non-finite value"
                            )
                        push(value)
                else:
                    for label, name, derive in self._compiled[i]:
                        value = float(derive(inputs))
                        if not isfinite(value):
                            raise MonitoringError(
                                f"metric {name!r} produced a non-finite value"
                            )
                        row[label] = value
                if schedule is None:
                    self._schedules[i] = DrawSchedule(feed.schedule)
                elif feed.pos != schedule.size:
                    raise MonitoringError(
                        f"probe {probe.entity!r}: noise-draw schedule "
                        f"drifted ({feed.pos} draws, expected "
                        f"{schedule.size})"
                    )
        if collect:
            if columnar:
                self.columnar.append_row(scratch)
            else:
                self.full_rows.append(row)

    def _sample_inputs(self, probe: Probe, delta: RawCounters) -> SampleInputs:
        return SampleInputs(
            interval_s=self.interval_s,
            cpu_cycles=delta.cpu_cycles,
            mem_used_bytes=delta.mem_used_bytes,
            mem_total_bytes=probe.mem_total_bytes,
            disk_read_bytes=delta.disk_read_bytes,
            disk_write_bytes=delta.disk_write_bytes,
            net_rx_bytes=delta.net_rx_bytes,
            net_tx_bytes=delta.net_tx_bytes,
            requests=delta.requests,
            capacity_cycles=probe.capacity_cycles_per_s * self.interval_s,
            rng=self.rng,
            virtualized=probe.virtualized,
        )

    @staticmethod
    def _source_for(probe: Probe) -> MetricSource:
        if probe.entity == "dom0":
            return MetricSource.SYSSTAT_HYPERVISOR
        if probe.virtualized:
            return MetricSource.SYSSTAT_VM
        return MetricSource.SYSSTAT_HYPERVISOR

    def stop(self) -> None:
        self._process.stop()
