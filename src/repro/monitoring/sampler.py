"""The trace recorder: the paper's 2-second sampling loop.

Every ``interval_s`` (default 2 s, the "Time(Sample 2s)" of all eight
figures) the recorder snapshots each probe, differences the counters,
and appends to the core resource series:

* ``cpu_cycles``  — cycles consumed in the interval (Figures 1/5),
* ``mem_used_mb`` — used memory level in MB (Figures 2/6),
* ``disk_kb``     — disk KB read+written in the interval (Figures 3/7),
* ``net_kb``      — network KB received+transmitted (Figures 4/8).

Optionally it also evaluates the full 518-metric registry per interval
(``collect_full_registry=True``), producing the wide rows a real
sysstat+perf deployment would log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import MonitoringError
from repro.monitoring.metric import MetricSource, SampleInputs
from repro.monitoring.probes import Probe, RawCounters
from repro.monitoring.registry import MetricRegistry
from repro.monitoring.timeseries import TimeSeries, TraceSet
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.units import KB, MB, SAMPLE_PERIOD_S

#: The four resource classes of the paper, with units.
CORE_RESOURCES = (
    ("cpu_cycles", "cycles/sample"),
    ("mem_used_mb", "MB"),
    ("disk_kb", "KB/sample"),
    ("net_kb", "KB/sample"),
)


class TraceRecorder:
    """Samples a set of probes into a :class:`TraceSet`."""

    def __init__(
        self,
        sim: Simulator,
        probes: Sequence[Probe],
        environment: str,
        workload: str,
        interval_s: float = SAMPLE_PERIOD_S,
        registry: Optional[MetricRegistry] = None,
        collect_full_registry: bool = False,
        rng=None,
    ) -> None:
        if not probes:
            raise MonitoringError("TraceRecorder needs at least one probe")
        names = [probe.entity for probe in probes]
        if len(set(names)) != len(names):
            raise MonitoringError(f"duplicate probe entities: {names}")
        self.sim = sim
        self.probes = list(probes)
        self.interval_s = float(interval_s)
        self.registry = registry
        self.collect_full_registry = collect_full_registry
        if collect_full_registry and registry is None:
            raise MonitoringError(
                "collect_full_registry=True requires a registry"
            )
        if collect_full_registry and rng is None:
            raise MonitoringError("collect_full_registry=True requires an rng")
        self.rng = rng
        self.traces = TraceSet(environment, workload, self.interval_s)
        for probe in self.probes:
            for resource, unit in CORE_RESOURCES:
                self.traces.add(
                    probe.entity,
                    resource,
                    TimeSeries(f"{probe.entity}:{resource}", unit),
                )
        self.full_rows: List[Dict[str, float]] = []
        self._previous: Dict[str, RawCounters] = {
            probe.entity: probe.snapshot() for probe in self.probes
        }
        self._process = PeriodicProcess(
            sim, self.interval_s, self._tick, priority=30, name="trace-recorder"
        ).start()
        self.samples_taken = 0

    def _tick(self, tick_time: float) -> None:
        self.samples_taken += 1
        full_row: Dict[str, float] = {"time_s": tick_time}
        for probe in self.probes:
            current = probe.snapshot()
            delta = current.delta(self._previous[probe.entity])
            delta.validate_monotonic()
            self._previous[probe.entity] = current
            self.traces.get(probe.entity, "cpu_cycles").append(
                tick_time, delta.cpu_cycles
            )
            self.traces.get(probe.entity, "mem_used_mb").append(
                tick_time, delta.mem_used_bytes / MB
            )
            self.traces.get(probe.entity, "disk_kb").append(
                tick_time,
                (delta.disk_read_bytes + delta.disk_write_bytes) / KB,
            )
            self.traces.get(probe.entity, "net_kb").append(
                tick_time, (delta.net_rx_bytes + delta.net_tx_bytes) / KB
            )
            if self.collect_full_registry:
                inputs = self._sample_inputs(probe, delta)
                source = self._source_for(probe)
                values = self.registry.evaluate_all(inputs, source)
                for name, value in values.items():
                    full_row[f"{probe.entity}|{name}"] = value
                perf_values = self.registry.evaluate_all(
                    inputs, MetricSource.PERF
                )
                for name, value in perf_values.items():
                    full_row[f"{probe.entity}|{name}"] = value
        if self.collect_full_registry:
            self.full_rows.append(full_row)

    def _sample_inputs(self, probe: Probe, delta: RawCounters) -> SampleInputs:
        return SampleInputs(
            interval_s=self.interval_s,
            cpu_cycles=delta.cpu_cycles,
            mem_used_bytes=delta.mem_used_bytes,
            mem_total_bytes=probe.mem_total_bytes,
            disk_read_bytes=delta.disk_read_bytes,
            disk_write_bytes=delta.disk_write_bytes,
            net_rx_bytes=delta.net_rx_bytes,
            net_tx_bytes=delta.net_tx_bytes,
            requests=delta.requests,
            capacity_cycles=probe.capacity_cycles_per_s * self.interval_s,
            rng=self.rng,
            virtualized=probe.virtualized,
        )

    @staticmethod
    def _source_for(probe: Probe) -> MetricSource:
        if probe.entity == "dom0":
            return MetricSource.SYSSTAT_HYPERVISOR
        if probe.virtualized:
            return MetricSource.SYSSTAT_VM
        return MetricSource.SYSSTAT_HYPERVISOR

    def stop(self) -> None:
        self._process.stop()
