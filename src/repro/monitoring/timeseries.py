"""Sampled time-series containers.

A :class:`TimeSeries` is an append-only (time, value) sequence backed by
Python lists during collection and exposed as numpy arrays for analysis.
A :class:`TraceSet` groups the series of one experiment run keyed by
``(entity, resource)`` — e.g. ``("web", "cpu_cycles")`` — together with
run metadata, and is the object every analysis routine consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError


class TimeSeries:
    """Append-only sampled series with numpy views."""

    def __init__(
        self,
        name: str,
        unit: str = "",
        times: Optional[Iterable[float]] = None,
        values: Optional[Iterable[float]] = None,
    ) -> None:
        self.name = name
        self.unit = unit
        self._times: List[float] = list(times) if times is not None else []
        self._values: List[float] = list(values) if values is not None else []
        if len(self._times) != len(self._values):
            raise AnalysisError(
                f"series {name!r}: times and values differ in length"
            )

    def append(self, time: float, value: float) -> None:
        if self._times and time <= self._times[-1]:
            raise AnalysisError(
                f"series {self.name!r}: non-increasing sample time {time}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    # -- summary -------------------------------------------------------------

    def mean(self) -> float:
        self._require(1)
        return float(np.mean(self._values))

    def std(self) -> float:
        self._require(2)
        return float(np.std(self._values, ddof=1))

    def variance(self) -> float:
        self._require(2)
        return float(np.var(self._values, ddof=1))

    def min(self) -> float:
        self._require(1)
        return float(np.min(self._values))

    def max(self) -> float:
        self._require(1)
        return float(np.max(self._values))

    def total(self) -> float:
        return float(np.sum(self._values))

    def coefficient_of_variation(self) -> float:
        """std / mean; raises on a zero-mean series."""
        mean = self.mean()
        if mean == 0:
            raise AnalysisError(
                f"series {self.name!r}: CV undefined at zero mean"
            )
        return self.std() / abs(mean)

    def _require(self, n: int) -> None:
        if len(self._values) < n:
            raise InsufficientDataError(
                f"series {self.name!r} has {len(self._values)} samples, "
                f"needs >= {n}"
            )

    # -- transforms ------------------------------------------------------------

    def sliced(self, start_time: float, end_time: float) -> "TimeSeries":
        """Sub-series with start_time <= t < end_time."""
        times = self.times
        mask = (times >= start_time) & (times < end_time)
        return TimeSeries(
            self.name, self.unit, times[mask].tolist(), self.values[mask].tolist()
        )

    def without_warmup(self, warmup_s: float) -> "TimeSeries":
        """Drop samples earlier than ``warmup_s`` after the first sample."""
        if not self._times:
            return TimeSeries(self.name, self.unit)
        cutoff = self._times[0] + warmup_s
        times = self.times
        mask = times >= cutoff
        return TimeSeries(
            self.name, self.unit, times[mask].tolist(), self.values[mask].tolist()
        )

    def scaled(self, factor: float, unit: Optional[str] = None) -> "TimeSeries":
        return TimeSeries(
            self.name,
            unit if unit is not None else self.unit,
            list(self._times),
            (self.values * factor).tolist(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeSeries {self.name!r} n={len(self)} unit={self.unit!r}>"


class TraceSet:
    """All series of one run, keyed by (entity, resource)."""

    def __init__(
        self,
        environment: str,
        workload: str,
        sample_period_s: float,
        metadata: Optional[Dict] = None,
    ) -> None:
        self.environment = environment
        self.workload = workload
        self.sample_period_s = float(sample_period_s)
        self.metadata: Dict = dict(metadata or {})
        self._series: Dict[Tuple[str, str], TimeSeries] = {}

    def add(self, entity: str, resource: str, series: TimeSeries) -> None:
        key = (entity, resource)
        if key in self._series:
            raise AnalysisError(f"duplicate series {key} in trace set")
        self._series[key] = series

    def get(self, entity: str, resource: str) -> TimeSeries:
        key = (entity, resource)
        if key not in self._series:
            known = sorted(self._series)
            raise AnalysisError(f"no series {key}; trace set has {known}")
        return self._series[key]

    def has(self, entity: str, resource: str) -> bool:
        return (entity, resource) in self._series

    def entities(self) -> List[str]:
        return sorted({entity for entity, _ in self._series})

    def resources(self) -> List[str]:
        return sorted({resource for _, resource in self._series})

    def keys(self) -> List[Tuple[str, str]]:
        return sorted(self._series)

    def items(self):
        return [(key, self._series[key]) for key in self.keys()]

    def __len__(self) -> int:
        return len(self._series)

    def aggregate(self, entities: Iterable[str], resource: str) -> TimeSeries:
        """Element-wise sum of one resource over several entities."""
        entity_list = list(entities)
        if not entity_list:
            raise AnalysisError("aggregate() needs at least one entity")
        base = self.get(entity_list[0], resource)
        values = base.values.copy()
        for entity in entity_list[1:]:
            other = self.get(entity, resource)
            if len(other) != len(base):
                raise AnalysisError(
                    f"series lengths differ: {entity}/{resource}"
                )
            values = values + other.values
        name = "+".join(entity_list) + f":{resource}"
        return TimeSeries(name, base.unit, base.times.tolist(), values.tolist())
