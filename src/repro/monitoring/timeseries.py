"""Sampled time-series containers.

A :class:`TimeSeries` is an append-only (time, value) sequence backed by
preallocated numpy buffers with amortized doubling growth; ``times`` and
``values`` are O(1) cached read-only views into those buffers instead of
per-access array rebuilds.  A :class:`TraceSet` groups the series of one
experiment run keyed by ``(entity, resource)`` — e.g. ``("web",
"cpu_cycles")`` — together with run metadata, and is the object every
analysis routine consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError

#: Starting buffer capacity; doubled on each growth.
_INITIAL_CAPACITY = 64


def _as_buffer(data: Optional[Iterable[float]]) -> np.ndarray:
    """Own, contiguous float64 array from any iterable (or None)."""
    if data is None:
        return np.empty(0, dtype=float)
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data, dtype=float).copy()
    return np.array(list(data), dtype=float)


class TimeSeries:
    """Append-only sampled series with O(1) numpy views."""

    __slots__ = ("name", "unit", "_times", "_values", "_n",
                 "_times_view", "_values_view")

    def __init__(
        self,
        name: str,
        unit: str = "",
        times: Optional[Iterable[float]] = None,
        values: Optional[Iterable[float]] = None,
    ) -> None:
        self.name = name
        self.unit = unit
        self._times = _as_buffer(times)
        self._values = _as_buffer(values)
        if len(self._times) != len(self._values):
            raise AnalysisError(
                f"series {name!r}: times and values differ in length"
            )
        self._n = len(self._times)
        self._times_view: Optional[np.ndarray] = None
        self._values_view: Optional[np.ndarray] = None

    @classmethod
    def _from_arrays(
        cls, name: str, unit: str, times: np.ndarray, values: np.ndarray
    ) -> "TimeSeries":
        """Adopt freshly built float64 arrays without copying them."""
        series = cls.__new__(cls)
        series.name = name
        series.unit = unit
        series._times = times
        series._values = values
        series._n = len(times)
        series._times_view = None
        series._values_view = None
        return series

    def _grow(self) -> None:
        capacity = max(2 * len(self._times), _INITIAL_CAPACITY)
        times = np.empty(capacity, dtype=float)
        values = np.empty(capacity, dtype=float)
        n = self._n
        times[:n] = self._times[:n]
        values[:n] = self._values[:n]
        self._times = times
        self._values = values

    def append(self, time: float, value: float) -> None:
        n = self._n
        if n and time <= self._times[n - 1]:
            raise AnalysisError(
                f"series {self.name!r}: non-increasing sample time {time}"
            )
        if n == len(self._times):
            self._grow()
        self._times[n] = time
        self._values[n] = value
        self._n = n + 1
        # Cached views cover [0, n); invalidate so the next access sees
        # the new sample (and never aliases a reallocated buffer).
        self._times_view = None
        self._values_view = None

    def __len__(self) -> int:
        return self._n

    @property
    def times(self) -> np.ndarray:
        view = self._times_view
        if view is None:
            view = self._times[: self._n]
            view.setflags(write=False)
            self._times_view = view
        return view

    @property
    def values(self) -> np.ndarray:
        view = self._values_view
        if view is None:
            view = self._values[: self._n]
            view.setflags(write=False)
            self._values_view = view
        return view

    # -- summary -------------------------------------------------------------

    def mean(self) -> float:
        self._require(1)
        return float(np.mean(self.values))

    def std(self) -> float:
        self._require(2)
        return float(np.std(self.values, ddof=1))

    def variance(self) -> float:
        self._require(2)
        return float(np.var(self.values, ddof=1))

    def min(self) -> float:
        self._require(1)
        return float(np.min(self.values))

    def max(self) -> float:
        self._require(1)
        return float(np.max(self.values))

    def total(self) -> float:
        return float(np.sum(self.values))

    def coefficient_of_variation(self) -> float:
        """std / mean; raises on a zero-mean series."""
        mean = self.mean()
        if mean == 0:
            raise AnalysisError(
                f"series {self.name!r}: CV undefined at zero mean"
            )
        return self.std() / abs(mean)

    def _require(self, n: int) -> None:
        if self._n < n:
            raise InsufficientDataError(
                f"series {self.name!r} has {self._n} samples, "
                f"needs >= {n}"
            )

    # -- transforms ------------------------------------------------------------

    def sliced(self, start_time: float, end_time: float) -> "TimeSeries":
        """Sub-series with start_time <= t < end_time."""
        times = self.times
        mask = (times >= start_time) & (times < end_time)
        return TimeSeries._from_arrays(
            self.name, self.unit, times[mask], self.values[mask]
        )

    def without_warmup(self, warmup_s: float) -> "TimeSeries":
        """Drop samples earlier than ``warmup_s`` after the first sample."""
        if not self._n:
            return TimeSeries(self.name, self.unit)
        times = self.times
        mask = times >= times[0] + warmup_s
        return TimeSeries._from_arrays(
            self.name, self.unit, times[mask], self.values[mask]
        )

    def scaled(self, factor: float, unit: Optional[str] = None) -> "TimeSeries":
        return TimeSeries._from_arrays(
            self.name,
            unit if unit is not None else self.unit,
            self.times.copy(),
            self.values * factor,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeSeries {self.name!r} n={len(self)} unit={self.unit!r}>"


class TraceSet:
    """All series of one run, keyed by (entity, resource)."""

    def __init__(
        self,
        environment: str,
        workload: str,
        sample_period_s: float,
        metadata: Optional[Dict] = None,
    ) -> None:
        self.environment = environment
        self.workload = workload
        self.sample_period_s = float(sample_period_s)
        self.metadata: Dict = dict(metadata or {})
        self._series: Dict[Tuple[str, str], TimeSeries] = {}

    def add(self, entity: str, resource: str, series: TimeSeries) -> None:
        key = (entity, resource)
        if key in self._series:
            raise AnalysisError(f"duplicate series {key} in trace set")
        self._series[key] = series

    def get(self, entity: str, resource: str) -> TimeSeries:
        key = (entity, resource)
        if key not in self._series:
            known = sorted(self._series)
            raise AnalysisError(f"no series {key}; trace set has {known}")
        return self._series[key]

    def has(self, entity: str, resource: str) -> bool:
        return (entity, resource) in self._series

    def entities(self) -> List[str]:
        return sorted({entity for entity, _ in self._series})

    def resources(self) -> List[str]:
        return sorted({resource for _, resource in self._series})

    def keys(self) -> List[Tuple[str, str]]:
        return sorted(self._series)

    def items(self):
        return [(key, self._series[key]) for key in self.keys()]

    def __len__(self) -> int:
        return len(self._series)

    def aggregate(self, entities: Iterable[str], resource: str) -> TimeSeries:
        """Element-wise sum of one resource over several entities."""
        entity_list = list(entities)
        if not entity_list:
            raise AnalysisError("aggregate() needs at least one entity")
        base = self.get(entity_list[0], resource)
        values = base.values.copy()
        for entity in entity_list[1:]:
            other = self.get(entity, resource)
            if len(other) != len(base):
                raise AnalysisError(
                    f"series lengths differ: {entity}/{resource}"
                )
            values += other.values
        name = "+".join(entity_list) + f":{resource}"
        return TimeSeries._from_arrays(
            name, base.unit, base.times.copy(), values
        )
