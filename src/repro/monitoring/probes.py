"""Raw-counter probes over simulator entities.

A probe is to the sampler what ``/proc`` is to sysstat: a snapshot of
monotonic counters (CPU cycles, disk and network bytes, request counts)
plus the current memory level.  The sampler differences successive
snapshots to produce per-interval values.

Three probe flavours cover the paper's five measured entities:

* :class:`ContextProbe` — a tier running in an execution context (the
  web+app VM, the MySQL VM, or the two bare-metal servers),
* :class:`Dom0Probe` — dom0's physical view on a virtualized server,
* custom probes can implement the :class:`Probe` interface directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps.tier import BareMetalContext, ExecutionContext, VirtualizedContext
from repro.errors import MonitoringError
from repro.virt.hypervisor import Hypervisor
from repro.virt.io_backend import DOM0_OWNER


@dataclass(frozen=True)
class RawCounters:
    """One snapshot of an entity's monotonic counters and memory level."""

    cpu_cycles: float
    mem_used_bytes: float
    disk_read_bytes: float
    disk_write_bytes: float
    net_rx_bytes: float
    net_tx_bytes: float
    requests: float

    def delta(self, earlier: "RawCounters") -> "RawCounters":
        """Counter differences against an earlier snapshot.

        Memory is a level, not a counter, so the *current* level is kept.
        """
        return RawCounters(
            cpu_cycles=self.cpu_cycles - earlier.cpu_cycles,
            mem_used_bytes=self.mem_used_bytes,
            disk_read_bytes=self.disk_read_bytes - earlier.disk_read_bytes,
            disk_write_bytes=self.disk_write_bytes - earlier.disk_write_bytes,
            net_rx_bytes=self.net_rx_bytes - earlier.net_rx_bytes,
            net_tx_bytes=self.net_tx_bytes - earlier.net_tx_bytes,
            requests=self.requests - earlier.requests,
        )

    def validate_monotonic(self) -> None:
        """Counters must never decrease between snapshots."""
        for field_name in (
            "cpu_cycles",
            "disk_read_bytes",
            "disk_write_bytes",
            "net_rx_bytes",
            "net_tx_bytes",
            "requests",
        ):
            if getattr(self, field_name) < -1e-9:
                raise MonitoringError(
                    f"counter {field_name} decreased between samples"
                )


class Probe:
    """Interface: produce a RawCounters snapshot on demand."""

    #: Entity label used in trace sets ("web", "db", "dom0").
    entity: str = ""
    #: Total memory visible to the entity (for %memused-style metrics).
    mem_total_bytes: float = 0.0
    #: Cycles/s capacity available to the entity.
    capacity_cycles_per_s: float = 0.0
    #: Whether the entity runs under a hypervisor.
    virtualized: bool = False

    def snapshot(self) -> RawCounters:
        raise NotImplementedError


class ContextProbe(Probe):
    """Probe over a tier's execution context."""

    def __init__(
        self,
        entity: str,
        context: ExecutionContext,
        requests_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.entity = entity
        self.context = context
        self.requests_fn = requests_fn or (lambda: 0.0)
        if isinstance(context, VirtualizedContext):
            self.virtualized = True
            self._domain = context.domain
            self._frequency_hz = context.hypervisor.server.spec.frequency_hz
            self._static_mem_total = 0.0
            self._static_capacity = 0.0
        elif isinstance(context, BareMetalContext):
            self.virtualized = False
            server = context.server
            self._domain = None
            self._frequency_hz = 0.0
            self._static_mem_total = server.spec.memory_bytes
            self._static_capacity = server.cpu.capacity_cycles_per_s
        else:
            raise MonitoringError(
                f"unsupported context type {type(context).__name__}"
            )

    # Read per sample rather than cached at construction: the elastic
    # controller may hotplug VCPUs or balloon memory mid-run, and the
    # %-utilization metrics must reflect the *current* allocation (what
    # sysstat inside the guest would see).  Identical values to the old
    # cached attributes whenever no control actions occur.
    @property
    def mem_total_bytes(self) -> float:
        if self._domain is not None:
            return self._domain.memory_bytes
        return self._static_mem_total

    @property
    def capacity_cycles_per_s(self) -> float:
        if self._domain is not None:
            return self._domain.online_vcpus * self._frequency_hz
        return self._static_capacity

    def snapshot(self) -> RawCounters:
        context = self.context
        if isinstance(context, VirtualizedContext):
            backend_blk = context.hypervisor.block_backend
            backend_net = context.hypervisor.net_backend
            owner = context.owner
            disk_read = backend_blk.vm_bytes_read(owner)
            disk_write = backend_blk.vm_bytes_written(owner)
            net_rx = backend_net.vm_bytes_received(owner)
            net_tx = backend_net.vm_bytes_transmitted(owner)
        else:
            server = context.server
            owner = context.owner
            disk_read = server.disk.bytes_read(owner)
            disk_write = server.disk.bytes_written(owner)
            net_rx = server.nic.bytes_received(owner)
            net_tx = server.nic.bytes_transmitted(owner)
        return RawCounters(
            cpu_cycles=context.cpu_cycles_total(),
            mem_used_bytes=context.memory_used(),
            disk_read_bytes=disk_read,
            disk_write_bytes=disk_write,
            net_rx_bytes=net_rx,
            net_tx_bytes=net_tx,
            requests=float(self.requests_fn()),
        )


class Dom0Probe(Probe):
    """Dom0's physical view: what sysstat running in dom0 reports."""

    def __init__(self, hypervisor: Hypervisor, entity: str = "dom0") -> None:
        # Multi-server testbeds run one dom0 per server; extra servers
        # use a qualified entity ("dom0.<server>") so series never
        # collide while single-server trace layouts stay unchanged.
        self.entity = entity
        self.hypervisor = hypervisor
        self.virtualized = False  # dom0 reads physical counters
        server = hypervisor.server
        self.mem_total_bytes = server.spec.memory_bytes
        self.capacity_cycles_per_s = server.cpu.capacity_cycles_per_s

    def snapshot(self) -> RawCounters:
        server = self.hypervisor.server
        return RawCounters(
            cpu_cycles=server.cpu.ledger.total(DOM0_OWNER),
            mem_used_bytes=server.memory.usage(DOM0_OWNER),
            disk_read_bytes=server.disk.bytes_read(DOM0_OWNER),
            disk_write_bytes=server.disk.bytes_written(DOM0_OWNER),
            net_rx_bytes=server.nic.bytes_received(DOM0_OWNER),
            net_tx_bytes=server.nic.bytes_transmitted(DOM0_OWNER),
            requests=float(self.hypervisor.requests_accounted),
        )
