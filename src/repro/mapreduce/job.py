"""MapReduce job specifications and runtime state."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

_job_ids = itertools.count(1)


class TaskKind(enum.Enum):
    MAP = "map"
    REDUCE = "reduce"


@dataclass(frozen=True)
class JobSpec:
    """Static description of one MapReduce job.

    Attributes:
        name: label for reports.
        input_bytes: total input read by the map phase.
        map_tasks / reduce_tasks: task counts.
        map_cycles_per_byte / reduce_cycles_per_byte: CPU cost densities.
        map_output_ratio: intermediate bytes per input byte (the map
            selectivity — ~1.0 for sort, << 1 for grep/filter jobs).
        output_replication: copies written by the reduce phase (HDFS-
            style; the extra copies are network + disk on other nodes,
            modelled as local writes for simplicity).
    """

    name: str
    input_bytes: float
    map_tasks: int
    reduce_tasks: int
    map_cycles_per_byte: float = 8.0
    reduce_cycles_per_byte: float = 6.0
    map_output_ratio: float = 1.0
    output_replication: int = 3

    def __post_init__(self) -> None:
        if self.input_bytes <= 0:
            raise ConfigurationError("input_bytes must be positive")
        if self.map_tasks < 1 or self.reduce_tasks < 1:
            raise ConfigurationError("need at least one map and one reduce")
        if self.map_output_ratio < 0:
            raise ConfigurationError("map_output_ratio must be >= 0")
        if self.output_replication < 1:
            raise ConfigurationError("output_replication must be >= 1")

    @property
    def split_bytes(self) -> float:
        """Input bytes per map task."""
        return self.input_bytes / self.map_tasks

    @property
    def intermediate_bytes(self) -> float:
        """Total shuffle volume."""
        return self.input_bytes * self.map_output_ratio

    @property
    def partition_bytes(self) -> float:
        """Shuffle bytes received by one reducer."""
        return self.intermediate_bytes / self.reduce_tasks


@dataclass
class JobStats:
    """Phase timing collected while the job runs."""

    submitted_at: Optional[float] = None
    map_started_at: Optional[float] = None
    map_finished_at: Optional[float] = None
    shuffle_finished_at: Optional[float] = None
    finished_at: Optional[float] = None
    maps_completed: int = 0
    reduces_completed: int = 0
    shuffle_bytes_moved: float = 0.0

    @property
    def makespan_s(self) -> Optional[float]:
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def map_phase_s(self) -> Optional[float]:
        if self.map_started_at is None or self.map_finished_at is None:
            return None
        return self.map_finished_at - self.map_started_at


class MapReduceJob:
    """Runtime wrapper: a spec plus progress state."""

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.job_id = next(_job_ids)
        self.stats = JobStats()
        self._maps_remaining = spec.map_tasks
        self._reduces_remaining = spec.reduce_tasks

    @property
    def maps_remaining(self) -> int:
        return self._maps_remaining

    @property
    def reduces_remaining(self) -> int:
        return self._reduces_remaining

    def map_done(self) -> bool:
        """Record one finished map; True when the phase completed."""
        if self._maps_remaining <= 0:
            raise ConfigurationError("map_done past the map phase")
        self._maps_remaining -= 1
        self.stats.maps_completed += 1
        return self._maps_remaining == 0

    def reduce_done(self) -> bool:
        """Record one finished reduce; True when the job completed."""
        if self._reduces_remaining <= 0:
            raise ConfigurationError("reduce_done past the reduce phase")
        self._reduces_remaining -= 1
        self.stats.reduces_completed += 1
        return self._reduces_remaining == 0
