"""MapReduce workload extension (the paper's Section 5 future work).

"We also plan to characterize the workload of other cloud applications,
such as big data applications using the MapReduce paradigm."  This
package implements that plan on the same substrates: a slot-based
MapReduce engine runs jobs over bare-metal worker nodes (map: local
read + CPU + intermediate write; shuffle: all-to-all network; reduce:
CPU + replicated output write), all resource activity lands on the
standard execution contexts, and the unchanged monitoring +
characterization pipeline profiles it.

The signature result — reproduced by ``examples/
mapreduce_characterization.py`` and the extension benchmark — is the
phase-structured resource profile: disk-read/CPU-heavy map phase,
network-heavy shuffle, write-heavy reduce tail.
"""

from repro.mapreduce.job import JobSpec, JobStats, MapReduceJob, TaskKind
from repro.mapreduce.engine import MapReduceCluster
from repro.mapreduce.workload import JobMix, grep_like_job, sort_like_job

__all__ = [
    "JobSpec",
    "JobStats",
    "MapReduceJob",
    "TaskKind",
    "MapReduceCluster",
    "JobMix",
    "grep_like_job",
    "sort_like_job",
]
