"""Canonical MapReduce job shapes and arrival mixes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.mapreduce.engine import MapReduceCluster
from repro.mapreduce.job import JobSpec, MapReduceJob
from repro.sim.engine import Simulator
from repro.units import MB


def sort_like_job(input_mb: float = 512.0, tasks: int = 16) -> JobSpec:
    """A shuffle-heavy job: intermediate volume equals the input."""
    return JobSpec(
        name="sort",
        input_bytes=input_mb * MB,
        map_tasks=tasks,
        reduce_tasks=max(2, tasks // 2),
        map_cycles_per_byte=6.0,
        reduce_cycles_per_byte=8.0,
        map_output_ratio=1.0,
    )


def grep_like_job(input_mb: float = 512.0, tasks: int = 16) -> JobSpec:
    """A scan-heavy job: tiny intermediate output (high selectivity)."""
    return JobSpec(
        name="grep",
        input_bytes=input_mb * MB,
        map_tasks=tasks,
        reduce_tasks=2,
        map_cycles_per_byte=10.0,
        reduce_cycles_per_byte=4.0,
        map_output_ratio=0.02,
        output_replication=1,
    )


@dataclass
class JobMix:
    """A Poisson arrival process over a set of job templates."""

    templates: List[JobSpec]
    arrival_rate_per_s: float = 0.02

    def __post_init__(self) -> None:
        if not self.templates:
            raise ConfigurationError("JobMix needs at least one template")
        if self.arrival_rate_per_s <= 0:
            raise ConfigurationError("arrival_rate_per_s must be positive")

    def drive(
        self,
        sim: Simulator,
        cluster: MapReduceCluster,
        rng: np.random.Generator,
        horizon_s: float,
        on_complete: Callable[[MapReduceJob], None] = None,
    ) -> List[MapReduceJob]:
        """Schedule job submissions over ``horizon_s``; returns the jobs."""
        jobs: List[MapReduceJob] = []
        t = float(rng.exponential(1.0 / self.arrival_rate_per_s))
        while t < horizon_s:
            spec = self.templates[int(rng.integers(len(self.templates)))]
            job = MapReduceJob(spec)
            jobs.append(job)
            sim.schedule_at(t, cluster.submit, job, on_complete)
            t += float(rng.exponential(1.0 / self.arrival_rate_per_s))
        return jobs
