"""Slot-based MapReduce execution over simulated worker nodes.

By default each worker node is a
:class:`~repro.hardware.server.PhysicalServer` wrapped in a
:class:`~repro.apps.tier.BareMetalContext` (owner ``mr:node-K``), so
every byte and cycle lands on the same ledgers the monitoring layer
samples — characterizing a MapReduce job uses exactly the same
probes/recorder/analysis stack as the RUBiS study.

Alternatively the cluster accepts externally built *contexts* — e.g. a
:class:`~repro.apps.tier.VirtualizedContext` over a batch VM on a
shared hypervisor — which is how the multi-tenant testbed runs
MapReduce *inside* the simulated virtualized servers: task CPU runs
under the credit scheduler (tasks raise the domain's worker gauge, so
the scheduler sees batch demand), and task I/O flows through the same
dom0 split drivers the web tiers use.

Execution model (Hadoop-classic, simplified and documented):

* map tasks: read the split from local disk (sequential), burn
  ``map_cycles_per_byte * split``, write the intermediate locally;
* shuffle starts when the *whole* map phase ends (no slow-start): each
  reducer pulls its partition from every mapper node over the NICs;
* reduce tasks: burn cycles over the partition, write the output with
  replication;
* scheduling: a fixed number of map/reduce slots per node, FIFO task
  queue, tasks assigned to the node with the most free slots (data
  locality is not modelled — noted in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.apps.tier import BareMetalContext, ExecutionContext, OsActivityModel
from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.hardware.server import ServerSpec
from repro.mapreduce.job import JobSpec, MapReduceJob
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: Service-time jitter applied per task (stragglers are real).
TASK_JITTER_CV = 0.15


class _WorkerNode:
    """One worker: a context plus slot accounting."""

    def __init__(
        self,
        name: str,
        context: ExecutionContext,
        map_slots: int,
        reduce_slots: int,
    ) -> None:
        self.name = name
        self.context = context
        self.map_slots_free = map_slots
        self.reduce_slots_free = reduce_slots
        self.tasks_completed = 0


class MapReduceCluster:
    """A pool of worker nodes executing MapReduce jobs FIFO.

    With ``contexts=None`` (the default) the cluster owns its nodes:
    one paper-spec physical server per node.  Passing ``contexts``
    attaches the workers to externally built execution contexts
    instead (e.g. the VMs of a multi-tenant testbed); the caller then
    owns those contexts' lifecycles, and ``stream`` names the RNG
    stream so several clusters in one run draw independently.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        nodes: int = 4,
        map_slots: int = 2,
        reduce_slots: int = 2,
        server_spec: Optional[ServerSpec] = None,
        contexts: Optional[Sequence[ExecutionContext]] = None,
        stream: str = "mapreduce",
    ) -> None:
        if map_slots < 1 or reduce_slots < 1:
            raise ConfigurationError("slots must be >= 1")
        self.sim = sim
        self.rng = streams.stream(stream)
        del server_spec  # owned nodes use the paper's server spec
        if contexts is not None:
            if not contexts:
                raise ConfigurationError("need at least one worker context")
            self.cluster = None
            self._owns_contexts = False
            self.nodes: List[_WorkerNode] = [
                _WorkerNode(f"node-{i}", context, map_slots, reduce_slots)
                for i, context in enumerate(contexts)
            ]
        else:
            if nodes < 1:
                raise ConfigurationError("need at least one worker node")
            self.cluster = Cluster()
            self._owns_contexts = True
            self.nodes = [
                _WorkerNode(
                    f"node-{i}",
                    BareMetalContext(
                        sim,
                        self.cluster.add_server(f"node-{i}"),
                        owner=f"mr:node-{i}",
                        os_model=OsActivityModel(
                            disk_accounting_factor=1.0,
                            net_accounting_factor=1.0,
                        ),
                    ),
                    map_slots,
                    reduce_slots,
                )
                for i in range(nodes)
            ]
        self._pending_maps: List[tuple] = []
        self._pending_reduces: List[tuple] = []
        self.jobs_completed = 0
        self.tasks_completed = 0

    # -- public API -------------------------------------------------------

    def submit(
        self,
        job: MapReduceJob,
        on_complete: Optional[Callable[[MapReduceJob], None]] = None,
    ) -> None:
        """Queue all map tasks of ``job``; reduces follow the shuffle."""
        job.stats.submitted_at = self.sim.now
        for _ in range(job.spec.map_tasks):
            self._pending_maps.append((job, on_complete))
        self._dispatch()

    def contexts(self) -> Dict[str, BareMetalContext]:
        """Node contexts for monitoring probes."""
        return {node.name: node.context for node in self.nodes}

    def shutdown(self) -> None:
        if self._owns_contexts:
            for node in self.nodes:
                node.context.shutdown()

    # -- scheduling ----------------------------------------------------------

    def _node_with_free_slot(self, kind: str) -> Optional[_WorkerNode]:
        attribute = f"{kind}_slots_free"
        candidates = [n for n in self.nodes if getattr(n, attribute) > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda n: getattr(n, attribute))

    def _dispatch(self) -> None:
        while self._pending_maps:
            node = self._node_with_free_slot("map")
            if node is None:
                break
            job, on_complete = self._pending_maps.pop(0)
            node.map_slots_free -= 1
            self._start_map(node, job, on_complete)
        while self._pending_reduces:
            node = self._node_with_free_slot("reduce")
            if node is None:
                break
            job, on_complete = self._pending_reduces.pop(0)
            node.reduce_slots_free -= 1
            self._start_reduce(node, job, on_complete)

    def _jitter(self) -> float:
        return float(max(0.2, self.rng.normal(1.0, TASK_JITTER_CV)))

    # -- task execution ----------------------------------------------------------

    def _start_map(self, node, job: MapReduceJob, on_complete) -> None:
        spec = job.spec
        if job.stats.map_started_at is None:
            job.stats.map_started_at = self.sim.now
        context = node.context
        # Raise the context's worker gauge for the task's lifetime: under
        # a hypervisor this is the batch domain's CPU demand signal, so
        # the credit scheduler contends it against co-resident tenants.
        context.worker_started()
        split = spec.split_bytes
        read_done = context.disk_read(split)
        cpu_time = context.cpu_time(
            split * spec.map_cycles_per_byte * self._jitter()
        )
        finish_at = max(read_done, self.sim.now) + cpu_time
        self.sim.schedule_at(
            finish_at, self._finish_map, node, job, on_complete
        )

    def _finish_map(self, node, job: MapReduceJob, on_complete) -> None:
        spec = job.spec
        context = node.context
        context.worker_finished()
        context.charge_cpu(spec.split_bytes * spec.map_cycles_per_byte)
        context.disk_write(spec.split_bytes * spec.map_output_ratio)
        node.map_slots_free += 1
        node.tasks_completed += 1
        self.tasks_completed += 1
        if job.map_done():
            job.stats.map_finished_at = self.sim.now
            self._start_shuffle(job, on_complete)
        self._dispatch()

    def _start_shuffle(self, job: MapReduceJob, on_complete) -> None:
        """All-to-all: every reducer pulls a partition share per node."""
        spec = job.spec
        latest = self.sim.now
        share = spec.partition_bytes / len(self.nodes)
        for _ in range(spec.reduce_tasks):
            for source in self.nodes:
                done = source.context.net_transmit(share)
                latest = max(latest, done)
            job.stats.shuffle_bytes_moved += spec.partition_bytes
        # Receivers: spread partitions across nodes round-robin.
        for index in range(spec.reduce_tasks):
            sink = self.nodes[index % len(self.nodes)]
            done = sink.context.net_receive(spec.partition_bytes)
            latest = max(latest, done)
        self.sim.schedule_at(
            latest, self._shuffle_finished, job, on_complete
        )

    def _shuffle_finished(self, job: MapReduceJob, on_complete) -> None:
        job.stats.shuffle_finished_at = self.sim.now
        for _ in range(job.spec.reduce_tasks):
            self._pending_reduces.append((job, on_complete))
        self._dispatch()

    def _start_reduce(self, node, job: MapReduceJob, on_complete) -> None:
        spec = job.spec
        context = node.context
        context.worker_started()
        cpu_time = context.cpu_time(
            spec.partition_bytes * spec.reduce_cycles_per_byte
            * self._jitter()
        )
        self.sim.schedule(
            cpu_time, self._finish_reduce, node, job, on_complete
        )

    def _finish_reduce(self, node, job: MapReduceJob, on_complete) -> None:
        spec = job.spec
        context = node.context
        context.worker_finished()
        context.charge_cpu(spec.partition_bytes * spec.reduce_cycles_per_byte)
        context.disk_write(
            spec.partition_bytes * spec.output_replication
        )
        node.reduce_slots_free += 1
        node.tasks_completed += 1
        self.tasks_completed += 1
        if job.reduce_done():
            job.stats.finished_at = self.sim.now
            self.jobs_completed += 1
            if on_complete is not None:
                on_complete(job)
        self._dispatch()
