"""SLO incident detection over sampled probe series.

An :class:`Incident` is one contiguous episode of a windowed p95
series above its SLO — a renamed, enriched
:class:`~repro.faults.scoring.ViolationWindow`: the detector reuses
``faults.scoring``'s sustained-window logic (an episode only closes
after ``sustain_windows`` consecutive compliant samples), then tags
each episode with the entity it was observed on and its peak.

:func:`incidents_for_result` scans *every* ``p95_ms`` series a run
recorded — the ``obs`` entity (present on any observed run), the
fleet controller's, the web controller's and the per-tenant
controllers' (``control.<tenant>``) — so incidents localize per
tenant as well as fleet-wide; per-server localization comes from the
attribution stage, which reads the per-server witness series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.faults.scoring import violation_windows


@dataclass(frozen=True)
class Incident:
    """One SLO-violation episode on one probe series."""

    entity: str
    resource: str
    slo_ms: float
    #: Sample time of the first breached window.
    start_s: float
    #: Sample time of the last breached window.
    end_s: float
    #: Summed width of the breached samples, seconds.
    width_s: float
    #: Breached samples inside the episode.
    samples: int
    #: Worst p95 observed inside the episode, milliseconds.
    peak_ms: float

    def to_dict(self) -> dict:
        return {
            "entity": self.entity,
            "resource": self.resource,
            "slo_ms": self.slo_ms,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "width_s": self.width_s,
            "samples": self.samples,
            "peak_ms": self.peak_ms,
        }


def detect_incidents(
    times,
    values,
    slo_ms: float,
    sustain_windows: int = 3,
    min_samples: int = 1,
    entity: str = "",
    resource: str = "p95_ms",
) -> List[Incident]:
    """Scan one sampled p95 series into incident episodes.

    ``sustain_windows`` is the episode-closing rule (a dip shorter
    than it does not split an incident); ``min_samples`` drops
    episodes briefer than the floor — a single noisy window is not an
    incident worth diagnosing.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    incidents: List[Incident] = []
    for window in violation_windows(times, values, slo_ms, sustain_windows):
        if window.breached_samples < min_samples:
            continue
        inside = (times >= window.start_s) & (times <= window.end_s)
        peak = float(values[inside].max()) if inside.any() else 0.0
        incidents.append(
            Incident(
                entity=entity,
                resource=resource,
                slo_ms=slo_ms,
                start_s=window.start_s,
                end_s=window.end_s,
                width_s=window.width_s,
                samples=window.breached_samples,
                peak_ms=peak,
            )
        )
    return incidents


def incidents_for_result(
    result,
    slo_ms: float,
    sustain_windows: int = 3,
    min_samples: int = 1,
    resource: str = "p95_ms",
) -> Dict[str, List[Incident]]:
    """Incidents per entity, over every ``p95_ms`` series of a run."""
    found: Dict[str, List[Incident]] = {}
    for entity, res in sorted(result.traces.keys()):
        if res != resource:
            continue
        series = result.traces.get(entity, res)
        incidents = detect_incidents(
            series.times,
            series.values,
            slo_ms,
            sustain_windows=sustain_windows,
            min_samples=min_samples,
            entity=entity,
            resource=res,
        )
        if incidents:
            found[entity] = incidents
    return found
