"""Root-cause attribution: rank candidate causes per incident.

For each detected :class:`~repro.obs.incidents.Incident` the engine
collects the annotations in a lookback window around it and scores
each candidate on four axes:

* **temporal proximity** — causes precede their incidents; an
  annotation landing just before the first breached window outranks
  one half a lookback earlier, and annotations *inside* the incident
  (the control plane's responses, evacuations) are discounted;
* **witness shift** — every contention channel names witness probe
  series and the direction a true cause moves them (a NIC degrade
  collapses ``net_kb`` throughput, dom0 saturation inflates ``dom0``
  ``cpu_cycles``, a bot flood inflates web ``net_kb``, ...); the
  median level shift across the annotation time, normalized, is the
  evidence weight;
* **changepoint alignment** — :func:`repro.analysis.changepoint.
  detect_level_shifts` must find a step of the witnessed direction
  near the annotation time (the same detector the paper's RAM-jump
  analysis uses);
* **cross-channel correlation** — :func:`repro.analysis.correlation.
  cross_correlation` between the incident's p95 series and the
  witness series over the incident neighbourhood; a witness that
  moves *with* the SLO signal corroborates its channel.

Candidates rank by score with the deterministic tie-break
``(priority, time, seq)``, so a diagnosis is bit-stable across
repeats and suite worker counts.  On ``--faults`` runs the resolved
schedule is ground truth: :func:`grade_attribution` checks the top-1
cause of each fault's incident against the schedule entry — the
precision@1 number the chaos-sweep ranking table reports per policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.changepoint import detect_level_shifts
from repro.analysis.correlation import cross_correlation
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    InsufficientDataError,
)
from repro.obs.annotations import Annotation
from repro.obs.incidents import Incident, detect_incidents

#: Default annotation lookback before an incident's first breached
#: window, seconds.
LOOKBACK_S = 40.0

#: Half-width of the witness-shift comparison around an annotation.
WITNESS_SPAN_S = 20.0

#: Scoring weights (sum to 1; proximity dominates, evidence refines).
W_PROXIMITY = 0.5
W_WITNESS = 0.25
W_CHANGEPOINT = 0.15
W_CORRELATION = 0.10

#: Source priors: a fault outranks the failure declaration it caused,
#: which outranks the recovery actions responding to it.
SOURCE_PRIOR = {
    "fault": 1.0,
    "fleet": 0.7,
    "migration": 0.45,
    "control": 0.35,
}

#: Witness probe series per channel: ``(entity, resource, direction)``
#: where direction is the sign a true cause moves the series
#: (-1 collapse, +1 inflate).  All of them are CORE_RESOURCES series
#: present on every virtualized run.
WITNESSES: Dict[str, Tuple[Tuple[str, str, float], ...]] = {
    "server": (("web", "cpu_cycles", -1.0), ("db", "cpu_cycles", -1.0)),
    "disk": (("db", "disk_kb", -1.0), ("dom0", "disk_kb", -1.0)),
    "nic": (("web", "net_kb", -1.0), ("dom0", "net_kb", -1.0)),
    "neighbor": (("web", "cpu_cycles", -1.0),),
    "dom0": (("dom0", "cpu_cycles", 1.0),),
    "traffic": (("web", "net_kb", 1.0), ("dom0", "net_kb", 1.0)),
    "migration": (("dom0", "net_kb", 1.0),),
    "control": (),
    "fault": (),
}


@dataclass(frozen=True)
class CandidateCause:
    """One ranked candidate with its per-axis evidence."""

    annotation: Annotation
    score: float
    proximity: float
    witness: float
    changepoint: float
    correlation: float
    #: Human-readable evidence notes (witness shifts, aligned steps).
    evidence: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "time_s": self.annotation.time_s,
            "source": self.annotation.source,
            "kind": self.annotation.kind,
            "channel": self.annotation.channel,
            "server": self.annotation.server,
            "domain": self.annotation.domain,
            "fault": self.annotation.payload.get("fault"),
            "target": self.annotation.payload.get("target"),
            "score": self.score,
            "proximity": self.proximity,
            "witness": self.witness,
            "changepoint": self.changepoint,
            "correlation": self.correlation,
            "evidence": list(self.evidence),
        }


@dataclass
class Diagnosis:
    """One incident with its ranked candidate causes."""

    incident: Incident
    causes: List[CandidateCause] = field(default_factory=list)
    #: Slowest sampled request traces inside the incident window
    #: (:class:`~repro.obs.tracing.RequestTrace`) — concrete per-hop
    #: evidence of where the violating requests spent their time.
    #: Empty when the run was not traced.
    exemplars: List = field(default_factory=list)

    @property
    def top(self) -> Optional[CandidateCause]:
        return self.causes[0] if self.causes else None

    def to_dict(self, top_n: int = 5) -> dict:
        return {
            "incident": self.incident.to_dict(),
            "causes": [cause.to_dict() for cause in self.causes[:top_n]],
            "exemplars": [trace.to_dict() for trace in self.exemplars],
        }


# -- evidence primitives ----------------------------------------------------


def _segment(series, start_s: float, end_s: float) -> np.ndarray:
    mask = (series.times >= start_s) & (series.times <= end_s)
    return series.values[mask]


def _witness_shift(series, at_s: float, span_s: float) -> Optional[float]:
    """Normalized level shift of ``series`` across ``at_s``.

    Median-after minus median-before, scaled by the larger magnitude —
    a value in roughly [-1, 1] whose sign is the movement direction.
    """
    before = _segment(series, at_s - span_s, at_s - 1e-9)
    after = _segment(series, at_s + 1e-9, at_s + span_s)
    if before.size < 2 or after.size < 2:
        return None
    b = float(np.median(before))
    a = float(np.median(after))
    scale = max(abs(b), abs(a))
    if scale <= 0:
        return 0.0
    return (a - b) / scale


def _witness_entity(traces, entity: str, server: str) -> str:
    """Resolve a witness entity against a fleet's per-server probes.

    The web server's dom0 keeps the plain ``dom0`` entity; an
    annotation from another server reads that server's own
    ``dom0.<server>`` probe when it exists.
    """
    if entity == "dom0" and server:
        scoped = f"dom0.{server}"
        if traces.has(scoped, "cpu_cycles"):
            return scoped
    return entity


def _changepoint_alignment(
    series, at_s: float, direction: float, span_s: float
) -> float:
    """1.0 when a level shift of the witnessed direction lands near
    ``at_s``, else 0."""
    values = series.values
    if values.size < 11:
        return 0.0
    spread = float(np.median(np.abs(values - np.median(values))))
    min_shift = max(4.0 * spread, 1e-6)
    try:
        shifts = detect_level_shifts(series, min_shift=min_shift, window=5)
    except (InsufficientDataError, ConfigurationError):
        return 0.0
    for shift in shifts:
        if abs(shift.time_s - at_s) <= span_s and (
            shift.magnitude * direction > 0
        ):
            return 1.0
    return 0.0


def _correlation_score(
    p95_segment: np.ndarray,
    witness_segment: np.ndarray,
    direction: float,
    max_lag: int = 5,
) -> float:
    """Corroboration from the witness co-moving with the SLO signal.

    During an incident p95 rises, so a channel whose witness collapses
    (direction -1) should anti-correlate with it and an inflating
    witness should correlate positively; the peak cross-correlation in
    the expected direction is the score.
    """
    n = min(p95_segment.size, witness_segment.size)
    if n < 6:
        return 0.0
    lag = min(max_lag, n // 3)
    try:
        xcorr = cross_correlation(
            p95_segment[:n], witness_segment[:n], max_lag=lag
        )
    except (AnalysisError, InsufficientDataError):
        return 0.0
    peak = float(xcorr[np.argmax(np.abs(xcorr))])
    return max(0.0, direction * peak)


def _proximity(annotation: Annotation, incident: Incident,
               lookback_s: float) -> float:
    """Causes precede incidents; responses inside one are discounted."""
    if annotation.time_s <= incident.start_s:
        delta = incident.start_s - annotation.time_s
        return max(0.0, 1.0 - delta / lookback_s)
    span = max(incident.end_s - incident.start_s, 1e-9)
    inside = (annotation.time_s - incident.start_s) / span
    return 0.5 * max(0.0, 1.0 - inside)


# -- the engine -------------------------------------------------------------


def _score_candidate(
    result,
    annotation: Annotation,
    incident: Incident,
    p95_segment: np.ndarray,
    lookback_s: float,
    span_s: float = WITNESS_SPAN_S,
) -> CandidateCause:
    """Score one annotation against one incident."""
    traces = result.traces
    proximity = _proximity(annotation, incident, lookback_s)
    witness_scores: List[float] = []
    changepoint_scores: List[float] = []
    correlation_scores: List[float] = []
    evidence: List[str] = []
    for entity, resource, direction in WITNESSES.get(annotation.channel, ()):
        entity = _witness_entity(traces, entity, annotation.server)
        if not traces.has(entity, resource):
            continue
        series = traces.get(entity, resource)
        shift = _witness_shift(series, annotation.time_s, span_s)
        if shift is None:
            continue
        aligned = max(0.0, direction * shift)
        witness_scores.append(min(1.0, aligned))
        if aligned > 0:
            evidence.append(
                f"{entity}:{resource} shifted {shift:+.0%} across "
                f"t={annotation.time_s:.0f}s (expected "
                f"{'drop' if direction < 0 else 'rise'})"
            )
        step = _changepoint_alignment(
            series, annotation.time_s, direction, span_s
        )
        changepoint_scores.append(step)
        if step > 0:
            evidence.append(
                f"level shift on {entity}:{resource} within "
                f"{span_s:.0f}s of the annotation"
            )
        witness_segment = _segment(
            series, incident.start_s - lookback_s, incident.end_s
        )
        correlation_scores.append(
            _correlation_score(p95_segment, witness_segment, direction)
        )
    witness = max(witness_scores) if witness_scores else 0.0
    changepoint = max(changepoint_scores) if changepoint_scores else 0.0
    correlation = max(correlation_scores) if correlation_scores else 0.0
    prior = SOURCE_PRIOR.get(annotation.source, 0.3)
    score = prior * (
        W_PROXIMITY * proximity
        + W_WITNESS * witness
        + W_CHANGEPOINT * changepoint
        + W_CORRELATION * correlation
    )
    return CandidateCause(
        annotation=annotation,
        score=score,
        proximity=proximity,
        witness=witness,
        changepoint=changepoint,
        correlation=correlation,
        evidence=tuple(evidence),
    )


def diagnose(
    result,
    slo_ms: float = 100.0,
    sustain_windows: int = 3,
    entity: str = "obs",
    lookback_s: float = LOOKBACK_S,
    min_samples: int = 2,
) -> List[Diagnosis]:
    """Detect and attribute every incident of one observed run.

    Requires the run to have been observed (``run_scenario(...,
    observe=True)`` / ``repro run --diagnose``): the annotation stream
    is the candidate pool and the ``obs`` entity carries the default
    SLO signal.
    """
    if getattr(result, "annotations", None) is None:
        raise ConfigurationError(
            "result carries no annotation stream; re-run with "
            "observe=True (CLI: --diagnose)"
        )
    if not result.traces.has(entity, "p95_ms"):
        raise ConfigurationError(
            f"no ({entity!r}, 'p95_ms') series to detect incidents on"
        )
    series = result.traces.get(entity, "p95_ms")
    incidents = detect_incidents(
        series.times,
        series.values,
        slo_ms,
        sustain_windows=sustain_windows,
        min_samples=min_samples,
        entity=entity,
    )
    request_traces = getattr(result, "request_traces", None)
    diagnoses: List[Diagnosis] = []
    for incident in incidents:
        p95_segment = _segment(
            series, incident.start_s - lookback_s, incident.end_s
        )
        candidates = [
            annotation
            for annotation in result.annotations.between(
                incident.start_s - lookback_s, incident.end_s
            )
            # A clear ends a fault; it cannot have started an incident.
            if annotation.kind != "fault.clear"
        ]
        causes = [
            _score_candidate(
                result, annotation, incident, p95_segment, lookback_s
            )
            for annotation in candidates
        ]
        causes.sort(
            key=lambda cause: (
                -cause.score,
                cause.annotation.priority,
                cause.annotation.time_s,
                cause.annotation.seq,
            )
        )
        exemplars: List = []
        if request_traces:
            from repro.obs.tracing import slowest_traces, traces_in_window

            exemplars = slowest_traces(
                traces_in_window(
                    request_traces, incident.start_s, incident.end_s
                ),
                count=3,
            )
        diagnoses.append(
            Diagnosis(
                incident=incident, causes=causes, exemplars=exemplars
            )
        )
    return diagnoses


# -- grading against ground truth -------------------------------------------


def grade_attribution(
    result,
    diagnoses: List[Diagnosis],
    grace_s: float = 60.0,
) -> dict:
    """Score a run's diagnoses against its resolved fault schedule.

    Every schedule entry must be matched by an incident starting
    within ``grace_s`` of its injection, whose top-1 cause is that
    fault's own ``fault.inject`` annotation (kind, target and onset
    all matching) — the precision@1 the ranking table reports.
    """
    reports = result.control_reports or {}
    faults = reports.get("faults")
    if not faults:
        raise ConfigurationError(
            "result carries no faults report; grading needs ground truth"
        )
    per_kind: Dict[str, Dict[str, int]] = {}
    matches: List[dict] = []
    correct_total = 0
    for entry in sorted(faults["schedule"], key=lambda e: e["inject_at_s"]):
        kind = entry["fault"]
        bucket = per_kind.setdefault(kind, {"faults": 0, "correct": 0})
        bucket["faults"] += 1
        inject_at = entry["inject_at_s"]
        window = [
            diagnosis
            for diagnosis in diagnoses
            if diagnosis.incident.end_s >= inject_at
            and diagnosis.incident.start_s <= inject_at + grace_s
        ]
        matched = (
            min(window, key=lambda d: abs(d.incident.start_s - inject_at))
            if window
            else None
        )
        top = matched.top if matched is not None else None
        correct = bool(
            top is not None
            and top.annotation.source == "fault"
            and top.annotation.kind == "fault.inject"
            and top.annotation.payload.get("fault") == kind
            and top.annotation.payload.get("target") == entry["target"]
            and abs(top.annotation.time_s - inject_at) <= 1e-6
        )
        if correct:
            bucket["correct"] += 1
            correct_total += 1
        matches.append(
            {
                "fault": kind,
                "target": entry["target"],
                "inject_at_s": inject_at,
                "incident": (
                    matched.incident.to_dict() if matched is not None else None
                ),
                "top_cause": top.to_dict() if top is not None else None,
                "correct": correct,
            }
        )
    total = len(matches)
    return {
        "faults": total,
        "correct": correct_total,
        "precision_at_1": (correct_total / total) if total else None,
        "per_kind": per_kind,
        "matches": matches,
    }
