"""The unified annotation stream.

Every mid-run actor already broadcasts what it does through the
hypervisor control hooks — elastic actuations (``set_cap``,
``balloon``, ...), fault transitions (``fault.inject`` /
``fault.clear``), migration phases (``migrate_pre_copy`` /
``migrate_downtime`` / ``migrate_in``) and failure declarations
(``server_failed``) — but each consumer today filters the raw dicts
for itself.  An :class:`AnnotationStream` is the one typed, time-
ordered log over all of them: each hook event becomes an
:class:`Annotation` tagged with its *source* subsystem, the *server*
whose hypervisor emitted it, the *domain* it acted on and the
contention *channel* it speaks for (nic / disk / neighbor / dom0 /
traffic / server) — the vocabulary the attribution engine ranks causes
in.

Ordering is bit-stable by construction: annotations sort by
``(time_s, priority, seq)`` where ``priority`` is the source class
(faults before failure declarations before migrations before control
actions at the same timestamp) and ``seq`` is the stream's insertion
counter.  Hook callbacks fire in event-loop order, which is itself
deterministic, so two runs of the same seed produce byte-identical
streams — across repeats *and* across suite worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults.spec import (
    BOT_FLOOD,
    CAP_THEFT,
    CRASH,
    DEGRADE_DISK,
    DEGRADE_NIC,
    DOM0_SATURATE,
    FLASH_CROWD,
)

#: Contention channel each fault kind speaks for — the label the
#: attribution engine must recover from the probe series alone.
FAULT_CHANNELS: Dict[str, str] = {
    CRASH: "server",
    DEGRADE_DISK: "disk",
    DEGRADE_NIC: "nic",
    CAP_THEFT: "neighbor",
    DOM0_SATURATE: "dom0",
    BOT_FLOOD: "traffic",
    FLASH_CROWD: "traffic",
}

#: Same-timestamp ordering of the source classes: root causes (faults)
#: sort before their consequences (failure declarations, evacuations)
#: and before the control plane's responses.
SOURCE_PRIORITY: Dict[str, int] = {
    "fault": 0,
    "fleet": 1,
    "migration": 2,
    "control": 3,
}

#: The fixed source vocabulary (stable series/report keys).
SOURCES: Tuple[str, ...] = ("fault", "fleet", "migration", "control")


def classify_hook_event(event: dict) -> Tuple[str, str, int]:
    """Map one control-hook event to ``(source, channel, priority)``.

    The ``kind`` conventions are set by the emitters: ``fault.*`` by
    the fault scheduler, ``server_failed`` by the fleet failure
    detector, ``migrate_*`` by the live-migration model; everything
    else is a control-plane actuation.
    """
    kind = event.get("kind", "")
    if kind.startswith("fault."):
        channel = FAULT_CHANNELS.get(event.get("fault", ""), "fault")
        return "fault", channel, SOURCE_PRIORITY["fault"]
    if kind == "server_failed":
        return "fleet", "server", SOURCE_PRIORITY["fleet"]
    if kind.startswith("migrate_"):
        return "migration", "migration", SOURCE_PRIORITY["migration"]
    return "control", "control", SOURCE_PRIORITY["control"]


@dataclass(frozen=True)
class Annotation:
    """One typed entry of the unified event log."""

    time_s: float
    #: Emitting subsystem: fault / fleet / migration / control.
    source: str
    #: The emitter's event kind (``fault.inject``, ``set_cap``, ...).
    kind: str
    #: Contention channel the event speaks for.
    channel: str
    #: Server whose hypervisor broadcast the event.
    server: str = ""
    #: Domain the event acted on ("" for server-scope events).
    domain: str = ""
    #: Same-timestamp source-class rank (see :data:`SOURCE_PRIORITY`).
    priority: int = 3
    #: Stream insertion counter — the final tie-break.
    seq: int = 0
    #: The raw hook event, verbatim.
    payload: dict = field(default_factory=dict, repr=False)

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        """The deterministic total order: (time, priority, seq)."""
        return (self.time_s, self.priority, self.seq)

    def to_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "source": self.source,
            "kind": self.kind,
            "channel": self.channel,
            "server": self.server,
            "domain": self.domain,
            "priority": self.priority,
            "seq": self.seq,
            "payload": dict(self.payload),
        }


class AnnotationStream:
    """Append-only, deterministically ordered annotation log."""

    def __init__(self) -> None:
        self._annotations: List[Annotation] = []
        self._seq = 0

    def record(
        self,
        time_s: float,
        source: str,
        kind: str,
        channel: str,
        server: str = "",
        domain: str = "",
        priority: Optional[int] = None,
        payload: Optional[dict] = None,
    ) -> Annotation:
        """Append one annotation (seq assigned by the stream)."""
        annotation = Annotation(
            time_s=float(time_s),
            source=source,
            kind=kind,
            channel=channel,
            server=server,
            domain=domain,
            priority=(
                SOURCE_PRIORITY.get(source, 3) if priority is None else priority
            ),
            seq=self._seq,
            payload=dict(payload or {}),
        )
        self._seq += 1
        self._annotations.append(annotation)
        return annotation

    def observe(self, server: str, event: dict) -> Annotation:
        """Record one raw control-hook event from ``server``."""
        source, channel, priority = classify_hook_event(event)
        return self.record(
            time_s=event.get("time_s", 0.0),
            source=source,
            kind=event.get("kind", ""),
            channel=channel,
            server=server,
            domain=event.get("domain", "") or "",
            priority=priority,
            payload=event,
        )

    # -- views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._annotations)

    def __iter__(self) -> Iterator[Annotation]:
        return iter(self.sorted())

    def sorted(self) -> List[Annotation]:
        """Every annotation in ``(time_s, priority, seq)`` order."""
        return sorted(self._annotations, key=lambda a: a.sort_key)

    def between(self, start_s: float, end_s: float) -> List[Annotation]:
        """Annotations with ``start_s <= time_s <= end_s``, ordered."""
        return [
            annotation
            for annotation in self.sorted()
            if start_s <= annotation.time_s <= end_s
        ]

    def counts_by_source(self) -> Dict[str, int]:
        """``{source: events}`` over the fixed source vocabulary."""
        counts = {source: 0 for source in SOURCES}
        for annotation in self._annotations:
            counts[annotation.source] = counts.get(annotation.source, 0) + 1
        return counts

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for annotation in self._annotations:
            counts[annotation.kind] = counts.get(annotation.kind, 0) + 1
        return counts

    def counts_by_channel(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for annotation in self._annotations:
            counts[annotation.channel] = (
                counts.get(annotation.channel, 0) + 1
            )
        return counts

    def to_dicts(self) -> List[dict]:
        """Plain-data dump in deterministic order (JSONL export)."""
        return [annotation.to_dict() for annotation in self.sorted()]
