"""Request-level tracing: sampled span trees with latency anatomy.

The paper's core question — *where does a request's time go on a
virtualized server?* — is answered here at request granularity.  A
sampled request records one span tree: session → request → per-hop
device visits (NIC transfers, CPU worker services, synchronous disk
reads), and every span separates three latency components:

* ``queue_s`` — time waiting for a worker (station queue wait),
* ``service_s`` — pure service time (``cycles / frequency``; transfer
  time for device hops),
* ``ready_s`` — virtualization slowdown: the inflation of CPU service
  by the credit scheduler (ready/steal/cap-throttle), i.e. actual
  service duration minus the pure time.  Zero on bare metal.

Sampling is **deterministic and RNG-free**: the decision for request
``(session_id, seq)`` is a pure hash of the run seed and those two
integers (sha256-derived key, splitmix64 finalizer), so

* a ``trace_sample=0`` run constructs no tracing machinery and stays
  bit-identical to pre-tracing runs,
* a traced run's *physics* is bit-identical to the untraced run (no
  stream is consumed, no event is scheduled),
* the sampled set is invariant to sweep worker counts and engines —
  the same ``(seed, session, seq)`` is sampled everywhere.

Net spans carry the full transfer+propagation latency as ``service_s``
(NIC serialization is not decomposed further — a documented
approximation); the synchronous db miss read appears as its own
``disk.db_read`` span rather than inflating the ``cpu.db`` service.

On top of the span store: :func:`latency_anatomy` (p50/p95/p99
decomposed into queue/service/ready per hop), :func:`tail_attribution`
(which channel is responsible for the p99 − p50 gap),
:func:`critical_path`, and text renderers for the ``repro trace`` CLI.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, ConfigurationError

#: Span component keys, in render order.
COMPONENTS = ("queue", "service", "ready")

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_SEQ_SALT = 0xC2B2AE3D27D4EB4F
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _run_key(seed: int) -> int:
    """Per-run 64-bit sampling key, derived like every other stream seed."""
    digest = hashlib.sha256(f"{seed}:trace-sample".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class TraceSampler:
    """Deterministic, RNG-free request sampling decision.

    ``sample(session_id, seq)`` hashes the run key with the request's
    coordinates through a splitmix64 finalizer and compares against
    ``rate * 2**64``.  The array form is bit-equal to the scalar form
    element-wise, so the classic engine (per-request calls) and the
    batched engine (per-cohort arrays) sample the same request set.
    """

    def __init__(self, seed: int, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"trace sample rate {rate} outside [0, 1]"
            )
        self.seed = int(seed)
        self.rate = float(rate)
        self.key = _run_key(seed)
        # rate == 1.0 would need 2**64, which no uint64 holds; treat it
        # (and 0.0) as unconditional.
        self._threshold = int(self.rate * float(1 << 64))

    def sample(self, session_id: int, seq: int) -> bool:
        """Scalar decision for one request."""
        if self.rate >= 1.0:
            return True
        if self._threshold <= 0:
            return False
        z = (
            self.key
            ^ ((int(session_id) * _GOLDEN) & _MASK64)
            ^ ((int(seq) * _SEQ_SALT) & _MASK64)
        )
        z = (z + _GOLDEN) & _MASK64
        z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
        z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
        z = z ^ (z >> 31)
        return z < self._threshold

    def sample_array(
        self, session_ids: np.ndarray, seqs: np.ndarray
    ) -> np.ndarray:
        """Vector decision for one cohort (bit-equal to :meth:`sample`)."""
        n = np.asarray(session_ids).size
        if self.rate >= 1.0:
            return np.ones(n, dtype=bool)
        if self._threshold <= 0:
            return np.zeros(n, dtype=bool)
        with np.errstate(over="ignore"):
            sid = np.asarray(session_ids, dtype=np.uint64)
            seq = np.asarray(seqs, dtype=np.uint64)
            z = (
                np.uint64(self.key)
                ^ (sid * np.uint64(_GOLDEN))
                ^ (seq * np.uint64(_SEQ_SALT))
            )
            z = z + np.uint64(_GOLDEN)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
            z = z ^ (z >> np.uint64(31))
        return z < np.uint64(self._threshold)


@dataclass(frozen=True)
class Span:
    """One device visit of a traced request."""

    name: str  #: hop name, e.g. ``cpu.web``, ``net.request``, ``disk.db_read``
    device: str  #: device class: ``cpu`` | ``net`` | ``disk``
    start_s: float  #: arrival at the hop (queueing starts here)
    queue_s: float  #: wait for a worker before service began
    service_s: float  #: pure service (cycles/frequency; transfer time)
    ready_s: float  #: virtualization inflation of the service (0 on bare metal)

    @property
    def duration_s(self) -> float:
        return self.queue_s + self.service_s + self.ready_s

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "device": self.device,
            "start_s": self.start_s,
            "queue_s": self.queue_s,
            "service_s": self.service_s,
            "ready_s": self.ready_s,
        }


@dataclass(frozen=True)
class RequestTrace:
    """One sampled request's span tree (a chain through the tiers)."""

    session_id: int
    seq: int  #: 1-based request index within the session
    interaction: str
    engine: str  #: ``classic`` | ``batched``
    start_s: float
    end_s: float
    spans: Tuple[Span, ...]

    @property
    def total_s(self) -> float:
        return self.end_s - self.start_s

    def component_s(self, span_name: str, component: str) -> float:
        """Summed seconds of one component over spans named ``span_name``."""
        return sum(
            getattr(span, f"{component}_s")
            for span in self.spans
            if span.name == span_name
        )

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "seq": self.seq,
            "interaction": self.interaction,
            "engine": self.engine,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "total_s": self.total_s,
            "spans": [span.to_dict() for span in self.spans],
        }


class _TraceBuilder:
    """Mutable span accumulator riding one classic-engine request.

    The deployment's net hops call :meth:`add_net` (each net span's end
    doubles as the arrival stamp of the next station), the tiers call
    :meth:`add_cpu`/:meth:`add_disk`, and :meth:`finish` freezes the
    chain into a :class:`RequestTrace`.
    """

    __slots__ = (
        "session_id", "seq", "interaction", "start_s", "spans", "_arrived_at"
    )

    def __init__(
        self, session_id: int, seq: int, interaction: str, start_s: float
    ) -> None:
        self.session_id = session_id
        self.seq = seq
        self.interaction = interaction
        self.start_s = start_s
        self.spans: List[Span] = []
        self._arrived_at = start_s

    def add_net(self, name: str, start_s: float, duration_s: float) -> None:
        self.spans.append(
            Span(name, "net", start_s, 0.0, duration_s, 0.0)
        )
        self._arrived_at = start_s + duration_s

    def add_cpu(
        self, name: str, start_s: float, duration_s: float, pure_s: float
    ) -> None:
        queue = start_s - self._arrived_at
        if queue < 0.0:
            queue = 0.0
        ready = duration_s - pure_s
        if ready < 0.0:
            ready = 0.0
        self.spans.append(
            Span(name, "cpu", start_s - queue, queue, pure_s, ready)
        )

    def add_disk(self, name: str, start_s: float, duration_s: float) -> None:
        self.spans.append(
            Span(name, "disk", start_s, 0.0, duration_s, 0.0)
        )

    def finish(self, engine: str) -> RequestTrace:
        end = self.spans[-1].end_s if self.spans else self.start_s
        return RequestTrace(
            session_id=self.session_id,
            seq=self.seq,
            interaction=self.interaction,
            engine=engine,
            start_s=self.start_s,
            end_s=end,
            spans=tuple(self.spans),
        )


class RequestTracer:
    """Per-run tracing state: the sampler plus the span store.

    One instance serves a whole run; the classic deployment holds it as
    ``deployment.tracer`` and the batched drivers pass cohort masks
    derived from the same sampler, so both engines fill the same store.
    """

    def __init__(self, seed: int, rate: float, engine: str) -> None:
        self.sampler = TraceSampler(seed, rate)
        self.engine = engine
        self.traces: List[RequestTrace] = []

    def __len__(self) -> int:
        return len(self.traces)

    # -- classic-engine surface -------------------------------------------

    def begin(self, session, interaction: str, now: float):
        """Sampling gate at send time; a builder when sampled, else None."""
        session_id = session.session_id
        seq = getattr(session, "requests_sent", None)
        if seq is None:
            # Open-loop transient session: its driver holds the visit
            # length, ``remaining`` has already been decremented.
            driver = session.driver
            seq = driver.requests_per_session - session.remaining
        if not self.sampler.sample(session_id, seq):
            return None
        return _TraceBuilder(session_id, seq, interaction, now)

    def commit(self, builder: _TraceBuilder) -> None:
        self.traces.append(builder.finish(self.engine))


# -- analysis ---------------------------------------------------------------


def _channels(traces: Sequence[RequestTrace]) -> List[Tuple[str, str]]:
    """Every (span name, component) pair present, in first-seen span order."""
    seen: Dict[str, None] = {}
    for trace in traces:
        for span in trace.spans:
            if span.name not in seen:
                seen[span.name] = None
    return [
        (name, component) for name in seen for component in COMPONENTS
    ]


def _component_matrix(
    traces: Sequence[RequestTrace], channels: List[Tuple[str, str]]
) -> np.ndarray:
    """``(len(traces), len(channels))`` seconds matrix."""
    index = {channel: j for j, channel in enumerate(channels)}
    matrix = np.zeros((len(traces), len(channels)))
    for i, trace in enumerate(traces):
        for span in trace.spans:
            base = index[(span.name, "queue")]
            matrix[i, base] += span.queue_s
            matrix[i, base + 1] += span.service_s
            matrix[i, base + 2] += span.ready_s
    return matrix


def _percentile_band(
    order: np.ndarray, percentile: float, width: int
) -> np.ndarray:
    """Indices of requests whose totals straddle one percentile rank."""
    n = order.size
    rank = int(round((percentile / 100.0) * (n - 1)))
    lo = max(0, rank - width)
    hi = min(n, rank + width + 1)
    return order[lo:hi]


@dataclass(frozen=True)
class Anatomy:
    """Latency anatomy of one run's sampled requests.

    ``rows[(span, component)][p]`` is the mean seconds that channel
    contributes within the band of requests around percentile ``p`` of
    total latency — so each percentile column decomposes (approximately)
    into the channel rows, and the tail columns show *which* channel
    grows between the median and the p99.
    """

    percentiles: Tuple[float, ...]
    totals: Dict[float, float]  #: mean end-to-end seconds per percentile band
    rows: Dict[Tuple[str, str], Dict[float, float]]
    count: int


def latency_anatomy(
    traces: Sequence[RequestTrace],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
    band_width: Optional[int] = None,
) -> Anatomy:
    """Decompose total-latency percentiles into per-hop components.

    For each percentile the requests ranked nearest that percentile of
    total latency (a band of ``2*band_width + 1`` requests) are
    averaged channel-by-channel.  Band averaging keeps the table stable
    under sampling noise; the default width is 2 % of the sample.
    """
    if not traces:
        raise AnalysisError("no request traces to analyze")
    channels = _channels(traces)
    matrix = _component_matrix(traces, channels)
    totals = np.array([trace.total_s for trace in traces])
    order = np.argsort(totals, kind="stable")
    if band_width is None:
        band_width = max(2, len(traces) // 50)
    rows: Dict[Tuple[str, str], Dict[float, float]] = {
        channel: {} for channel in channels
    }
    band_totals: Dict[float, float] = {}
    for p in percentiles:
        band = _percentile_band(order, p, band_width)
        means = matrix[band].mean(axis=0)
        band_totals[p] = float(totals[band].mean())
        for j, channel in enumerate(channels):
            rows[channel][p] = float(means[j])
    return Anatomy(
        percentiles=tuple(percentiles),
        totals=band_totals,
        rows=rows,
        count=len(traces),
    )


@dataclass(frozen=True)
class TailAttribution:
    """Which channel is responsible for the p-tail − median latency gap."""

    tail_percentile: float
    median_s: float
    tail_s: float
    gap_s: float
    #: Per-channel share of the gap (seconds), sorted descending.
    contributions: Tuple[Tuple[str, str, float], ...]

    @property
    def channel(self) -> Tuple[str, str]:
        """The (span, component) owning the largest share of the gap."""
        name, component, _ = self.contributions[0]
        return (name, component)

    @property
    def channel_label(self) -> str:
        name, component = self.channel
        return f"{name}:{component}"


def tail_attribution(
    traces: Sequence[RequestTrace],
    tail_percentile: float = 99.0,
    band_width: Optional[int] = None,
) -> TailAttribution:
    """Name the channel responsible for the tail − median gap.

    Compares mean per-channel seconds of the requests around the median
    against the band around ``tail_percentile``; the channel whose
    contribution grows the most *is* the tail's anatomy — e.g.
    ``cpu.web:ready`` when credit-scheduler contention inflates the
    p99 while the median rides idle workers.
    """
    anatomy = latency_anatomy(
        traces,
        percentiles=(50.0, tail_percentile),
        band_width=band_width,
    )
    median = anatomy.totals[50.0]
    tail = anatomy.totals[tail_percentile]
    deltas = [
        (name, component, row[tail_percentile] - row[50.0])
        for (name, component), row in anatomy.rows.items()
    ]
    deltas.sort(key=lambda item: item[2], reverse=True)
    return TailAttribution(
        tail_percentile=tail_percentile,
        median_s=median,
        tail_s=tail,
        gap_s=tail - median,
        contributions=tuple(deltas),
    )


def critical_path(trace: RequestTrace) -> List[Tuple[Span, float]]:
    """Spans in time order with their exclusive critical-path seconds.

    Request span chains are sequential, so each span's exclusive time
    is its own duration minus any overlap with a later-starting span
    (the synchronous db read overlaps its CPU parent in some engines);
    the residue of ``total_s`` not covered by any span is propagation
    and think-free fabric latency.
    """
    spans = sorted(trace.spans, key=lambda s: (s.start_s, s.end_s))
    out: List[Tuple[Span, float]] = []
    for i, span in enumerate(spans):
        exclusive = span.duration_s
        for other in spans[i + 1:]:
            overlap = min(span.end_s, other.end_s) - max(
                span.start_s, other.start_s
            )
            if overlap > 0.0:
                exclusive -= overlap
        out.append((span, max(exclusive, 0.0)))
    return out


# -- rendering --------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}"


def render_anatomy(anatomy: Anatomy) -> str:
    """Aligned latency-anatomy table (milliseconds)."""
    header = ["hop:component        "] + [
        f"   p{p:g} ms" for p in anatomy.percentiles
    ]
    lines = [
        f"latency anatomy — {anatomy.count} sampled requests",
        "".join(header),
    ]
    for (name, component), row in anatomy.rows.items():
        values = "".join(_fmt_ms(row[p]) for p in anatomy.percentiles)
        lines.append(f"{name + ':' + component:<21s}{values}")
    totals = "".join(_fmt_ms(anatomy.totals[p]) for p in anatomy.percentiles)
    lines.append(f"{'total':<21s}{totals}")
    return "\n".join(lines)


def render_tail_attribution(attribution: TailAttribution) -> str:
    """Human-readable tail-vs-median verdict."""
    p = attribution.tail_percentile
    lines = [
        f"tail anatomy — p{p:g} {attribution.tail_s * 1e3:.3f} ms vs "
        f"median {attribution.median_s * 1e3:.3f} ms "
        f"(gap {attribution.gap_s * 1e3:.3f} ms)",
    ]
    gap = attribution.gap_s
    for name, component, delta in attribution.contributions[:6]:
        share = (delta / gap * 100.0) if gap > 0 else 0.0
        lines.append(
            f"  {name + ':' + component:<21s}{delta * 1e3:+9.3f} ms"
            f"  ({share:5.1f}% of gap)"
        )
    name, component = attribution.channel
    lines.append(
        f"  -> the p{p:g} gap is dominated by {name} {component} time"
    )
    return "\n".join(lines)


def render_trace(trace: RequestTrace) -> str:
    """One request's span tree with the critical-path breakdown."""
    lines = [
        f"request session={trace.session_id} seq={trace.seq} "
        f"{trace.interaction!r} [{trace.engine}] "
        f"total {trace.total_s * 1e3:.3f} ms",
    ]
    for span, exclusive in critical_path(trace):
        offset = (span.start_s - trace.start_s) * 1e3
        lines.append(
            f"  +{offset:9.3f} ms  {span.name:<14s}"
            f" queue {span.queue_s * 1e3:8.3f}"
            f"  service {span.service_s * 1e3:8.3f}"
            f"  ready {span.ready_s * 1e3:8.3f}"
            f"  | path {exclusive * 1e3:8.3f} ms"
        )
    return "\n".join(lines)


def slowest_traces(
    traces: Sequence[RequestTrace], count: int = 3
) -> List[RequestTrace]:
    """The ``count`` slowest sampled requests (exemplar tail anatomy)."""
    return sorted(traces, key=lambda t: t.total_s, reverse=True)[:count]


def traces_in_window(
    traces: Sequence[RequestTrace], start_s: float, end_s: float
) -> List[RequestTrace]:
    """Sampled requests completing inside ``[start_s, end_s]``."""
    return [t for t in traces if start_s <= t.end_s <= end_s]
