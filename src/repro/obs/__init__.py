"""Observability: annotation stream, incidents, attribution, manifest.

The diagnosis half of the AIOps loop. :mod:`repro.obs.annotations`
turns the control/fault/fleet/migration hook events — today scattered
callbacks — into one typed, time-ordered annotation stream;
:mod:`repro.obs.recorder` attaches that stream (plus a windowed p95
probe) to a live run as a standard periodic controller;
:mod:`repro.obs.incidents` scans SLO probe series into incident
windows; :mod:`repro.obs.attribution` ranks candidate causes per
incident by aligning probe-series changepoints and cross-channel
correlation with nearby annotations — graded for precision@1 against
resolved fault schedules; :mod:`repro.obs.manifest` fingerprints a run
(config, seed, trace sha256, per-phase wall clock, per-subsystem event
counts); :mod:`repro.obs.ranking` aggregates per-cell diagnoses of a
chaos sweep into the policy ranking table; :mod:`repro.obs.tracing`
samples requests deterministically into span trees (queue / pure
service / virtualization-ready split per hop, on either engine) and
decomposes tail latency channel by channel.

Observation is strictly opt-in (``run_scenario(..., observe=True)``,
``repro run --diagnose``): an unobserved run constructs none of this
machinery, so fault-free traces stay bit-identical — and observing a
run never perturbs its physics, only adds series and annotations.
"""

from repro.obs.annotations import (
    Annotation,
    AnnotationStream,
    FAULT_CHANNELS,
    classify_hook_event,
)
from repro.obs.attribution import (
    CandidateCause,
    Diagnosis,
    diagnose,
    grade_attribution,
)
from repro.obs.incidents import Incident, detect_incidents, incidents_for_result
from repro.obs.manifest import build_manifest, render_manifest
from repro.obs.ranking import (
    diagnosis_summary,
    policy_ranking_data,
    render_policy_ranking_table,
    write_ranking_figures,
)
from repro.obs.recorder import OBS_PRIORITY, ObsRecorder
from repro.obs.tracing import (
    RequestTrace,
    RequestTracer,
    Span,
    TraceSampler,
    critical_path,
    latency_anatomy,
    render_anatomy,
    render_tail_attribution,
    render_trace,
    slowest_traces,
    tail_attribution,
    traces_in_window,
)

__all__ = [
    "Annotation",
    "AnnotationStream",
    "FAULT_CHANNELS",
    "classify_hook_event",
    "CandidateCause",
    "Diagnosis",
    "diagnose",
    "grade_attribution",
    "Incident",
    "detect_incidents",
    "incidents_for_result",
    "build_manifest",
    "render_manifest",
    "diagnosis_summary",
    "policy_ranking_data",
    "render_policy_ranking_table",
    "write_ranking_figures",
    "OBS_PRIORITY",
    "ObsRecorder",
    "RequestTrace",
    "RequestTracer",
    "Span",
    "TraceSampler",
    "critical_path",
    "latency_anatomy",
    "render_anatomy",
    "render_tail_attribution",
    "render_trace",
    "slowest_traces",
    "tail_attribution",
    "traces_in_window",
]
