"""Run manifest: what ran, from what config, and where time went.

:func:`build_manifest` condenses one experiment result into the
plain-data record an incident review starts from — the config
fingerprint (SHA-256 over the scenario's full behavioural cache key,
the same fingerprint the result cache deduplicates on), the seed, the
trace-set SHA-256 (the determinism currency of the suite), per-phase
wall clock (build / simulate / collect), the event-loop volume and
per-subsystem event counts (annotations by source, control actions,
injected faults, series per entity).  ``repro run --diagnose`` and
``repro diagnose`` print it via :func:`render_manifest`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.monitoring.export import trace_set_sha256


def config_fingerprint(scenario) -> str:
    """SHA-256 over the scenario's full behavioural cache key.

    Frozen-dataclass reprs are content-only (no object identities), so
    the fingerprint is stable across processes and worker counts —
    two runs share it iff they would simulate identically.
    """
    return hashlib.sha256(
        repr(scenario.cache_key).encode("utf-8")
    ).hexdigest()


def build_manifest(result) -> dict:
    """Condense one run into its plain-data manifest."""
    scenario = result.scenario
    series_by_entity: Dict[str, int] = {}
    for entity, _resource in result.traces.keys():
        series_by_entity[entity] = series_by_entity.get(entity, 0) + 1
    subsystems: Dict[str, dict] = {}
    for entity, report in sorted((result.control_reports or {}).items()):
        if not isinstance(report, dict):
            continue
        kind = report.get("kind", entity)
        if kind == "billing":
            continue
        counts = {}
        if "num_actions" in report:
            counts["actions"] = report["num_actions"]
        if "injected" in report:
            counts["injected"] = report["injected"]
            counts["cleared"] = report["cleared"]
        if "events" in report and isinstance(report["events"], int):
            counts["events"] = report["events"]
        if "migrations" in report:
            counts["migrations"] = len(report["migrations"])
            counts["evacuations"] = len(report.get("evacuations", []))
        subsystems[entity] = {"kind": kind, **counts}
    annotations = getattr(result, "annotations", None)
    request_traces = getattr(result, "request_traces", None)
    return {
        "scenario": scenario.name,
        "environment": scenario.environment,
        "engine": getattr(scenario, "engine", "classic"),
        "seed": scenario.seed,
        "duration_s": scenario.duration_s,
        "config_fingerprint": config_fingerprint(scenario),
        "trace_sha256": trace_set_sha256(result.traces),
        "requests_completed": result.requests_completed,
        "events_fired": getattr(result, "events_fired", 0),
        "phases_s": dict(getattr(result, "phases_s", None) or {}),
        "series": {
            "total": len(result.traces.keys()),
            "by_entity": series_by_entity,
        },
        "annotations": (
            {
                "total": len(annotations),
                "by_source": annotations.counts_by_source(),
            }
            if annotations is not None
            else None
        ),
        "tracing": (
            {
                "sample_rate": float(
                    getattr(scenario, "trace_sample", 0.0) or 0.0
                ),
                "requests_traced": len(request_traces),
                "spans": sum(
                    len(trace.spans) for trace in request_traces
                ),
            }
            if request_traces is not None
            else None
        ),
        "subsystems": subsystems,
    }


def render_manifest(manifest: dict) -> str:
    """Aligned text report of one manifest."""
    engine = manifest.get("engine", "classic")
    lines = [
        f"run manifest — {manifest['scenario']} "
        f"({manifest['environment']}, {engine} engine, "
        f"seed {manifest['seed']}, "
        f"{manifest['duration_s']:.0f}s simulated)",
        f"  config fingerprint  {manifest['config_fingerprint'][:16]}",
        f"  trace sha256        {manifest['trace_sha256'][:16]}",
        f"  requests completed  {manifest['requests_completed']}",
        f"  events fired        {manifest['events_fired']}",
    ]
    phases = manifest.get("phases_s") or {}
    if phases:
        text = ", ".join(
            f"{phase} {seconds:.3f}s" for phase, seconds in phases.items()
        )
        lines.append(f"  wall clock          {text}")
    series = manifest.get("series") or {}
    if series:
        entities = ", ".join(
            f"{entity} x{count}"
            for entity, count in sorted(series["by_entity"].items())
        )
        lines.append(
            f"  series              {series['total']} ({entities})"
        )
    annotations: Optional[dict] = manifest.get("annotations")
    if annotations is not None:
        sources = ", ".join(
            f"{source} x{count}"
            for source, count in sorted(annotations["by_source"].items())
            if count
        ) or "none"
        lines.append(
            f"  annotations         {annotations['total']} ({sources})"
        )
    tracing: Optional[dict] = manifest.get("tracing")
    if tracing is not None:
        lines.append(
            f"  request traces      {tracing['requests_traced']} "
            f"({tracing['spans']} spans, "
            f"sample rate {tracing['sample_rate']:g})"
        )
    for entity, report in sorted((manifest.get("subsystems") or {}).items()):
        counts = ", ".join(
            f"{name} {value}"
            for name, value in report.items()
            if name != "kind"
        ) or "idle"
        lines.append(f"  {entity:<18s}  [{report['kind']}] {counts}")
    return "\n".join(lines)
