"""Chaos-sweep ranking: grade recovery policies across a fault grid.

A chaos sweep (``repro sweep --faults ... --diagnose``) runs the same
workload under the same injected faults with different recovery
policies (controllers, fleet sizes, placements).  Each faulted cell
carries a :func:`diagnosis_summary` — incidents, top-ranked causes,
attribution precision@1 against the resolved schedule, recovery score
and the capacity bill.  :func:`policy_ranking_data` folds those into
the policy ranking table: recovery time, SLO-violation width,
$-per-kilorequest and attribution accuracy per cell, ordered best
first (recovered runs before unrecovered, then by violation width,
then by cost).  :func:`write_ranking_figures` exports the table as
per-metric bar figures next to the sweep's ratio figures.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.faults.scoring import score_run
from repro.obs.attribution import diagnose, grade_attribution
from repro.planning.cost import CostModel

#: Ranking-figure metrics: (row key, axis label).
RANKING_FIGURE_METRICS = (
    ("slo_violation_s", "SLO-violation width (s)"),
    ("recovery_s", "recovery time (s)"),
    ("usd_per_kilorequest", "$ per kilorequest"),
    ("precision_at_1", "attribution precision@1"),
)


def diagnosis_summary(
    result,
    slo_ms: float = 100.0,
    sustain_windows: int = 3,
    cost_model: Optional[CostModel] = None,
) -> dict:
    """Plain-data diagnosis of one observed, faulted run.

    Everything a suite worker ships home for the ranking table:
    incidents with their top-5 ranked causes, the precision@1 grade
    against the resolved schedule, per-fault recovery scores (read off
    the ``obs`` p95 series, so uncontrolled cells score too) and the
    capacity bill per completed kilorequest.
    """
    diagnoses = diagnose(
        result, slo_ms=slo_ms, sustain_windows=sustain_windows
    )
    grade = grade_attribution(result, diagnoses)
    scores = score_run(
        result, slo_ms=slo_ms, entity="obs", sustain_windows=sustain_windows
    )
    billing = (result.control_reports or {}).get("billing")
    usd_total = None
    usd_per_kilorequest = None
    if billing is not None:
        model = cost_model or CostModel()
        usd_total = model.run_cost_usd(billing)["total"]
        completed = result.requests_completed
        usd_per_kilorequest = (
            usd_total / (completed / 1000.0)
            if completed > 0
            else float("inf")
        )
    return {
        "slo_ms": slo_ms,
        "incidents": len(diagnoses),
        "diagnoses": [diagnosis.to_dict() for diagnosis in diagnoses],
        "grade": grade,
        "recovery": [score.to_dict() for score in scores],
        "usd_total": usd_total,
        "usd_per_kilorequest": usd_per_kilorequest,
    }


def policy_ranking_data(suite) -> List[dict]:
    """One ranking row per diagnosed cell of a sweep, best first.

    Reads the ``diagnosis`` summaries :func:`repro.experiments.suite.
    run_suite` attaches under ``--diagnose``.  Rows order by
    (recovered, SLO-violation width, $-per-kilorequest, run id) — the
    policy that closes the violation window cheapest ranks first.
    """
    rows: List[dict] = []
    for run_id in sorted(suite.summaries):
        summary = suite.summaries[run_id]
        diagnosis = getattr(summary, "diagnosis", None)
        if not diagnosis:
            continue
        recovery = diagnosis.get("recovery") or []
        first = recovery[0] if recovery else {}
        violation_s = sum(
            entry.get("slo_violation_s", 0.0) for entry in recovery
        )
        recovered = bool(recovery) and all(
            entry.get("recovered") for entry in recovery
        )
        grade = diagnosis.get("grade") or {}
        top_cause = None
        for entry in diagnosis.get("diagnoses", []):
            causes = entry.get("causes") or []
            if causes:
                top_cause = causes[0]
                break
        rows.append(
            {
                "run_id": run_id,
                "incidents": diagnosis.get("incidents", 0),
                "recovered": recovered,
                "recovery_s": first.get("recovery_s"),
                "detection_s": first.get("detection_s"),
                "slo_violation_s": violation_s,
                "usd_per_kilorequest": diagnosis.get("usd_per_kilorequest"),
                "precision_at_1": grade.get("precision_at_1"),
                "faults": grade.get("faults", 0),
                "correct": grade.get("correct", 0),
                "top_cause": top_cause,
            }
        )
    if not rows:
        raise ConfigurationError(
            "no diagnosed runs to rank; run the sweep with --diagnose "
            "and a --faults axis"
        )
    rows.sort(
        key=lambda row: (
            not row["recovered"],
            row["slo_violation_s"],
            (
                row["usd_per_kilorequest"]
                if row["usd_per_kilorequest"] is not None
                else float("inf")
            ),
            row["run_id"],
        )
    )
    return rows


def _cell(value, fmt: str, missing: str = "-") -> str:
    if value is None:
        return missing
    return format(value, fmt)


def render_policy_ranking_table(suite) -> str:
    """The chaos-sweep policy ranking table, one row per cell."""
    rows = policy_ranking_data(suite)
    header = (
        f"{'#':>2s} {'run':<44s} {'rec s':>7s} {'viol s':>7s} "
        f"{'$/kRq':>9s} {'p@1':>5s} {'top cause':<28s}"
    )
    lines = [header]
    for rank, row in enumerate(rows, start=1):
        top = row["top_cause"] or {}
        cause = ""
        if top:
            cause = top.get("fault") or top.get("kind") or ""
            channel = top.get("channel", "")
            if channel:
                cause += f" [{channel}]"
        precision = row["precision_at_1"]
        lines.append(
            f"{rank:>2d} {row['run_id']:<44.44s} "
            f"{_cell(row['recovery_s'], '7.1f', '  never'):>7s} "
            f"{row['slo_violation_s']:>7.1f} "
            f"{_cell(row['usd_per_kilorequest'], '9.6f'):>9s} "
            f"{_cell(precision, '5.2f'):>5s} "
            f"{cause:<28.28s}"
        )
    lines.append(
        "ranked by (recovered, SLO-violation width, $/kilorequest); "
        "p@1 = attribution precision against the fault schedule"
    )
    return "\n".join(lines)


def _ranking_figure_text(metric: str, label: str, rows: List[dict],
                         width: int = 48) -> str:
    """ASCII bar panel for one ranking metric (matplotlib-free)."""
    lines = [f"{label} — one bar per diagnosed run", "=" * 72]
    numeric = [
        row[metric] for row in rows
        if row[metric] is not None and row[metric] == row[metric]
        and row[metric] != float("inf")
    ]
    top = max(numeric, default=0.0)
    for row in rows:
        value = row[metric]
        if value is None:
            text, bar = "-", ""
        else:
            text = f"{value:.4g}"
            bar = "#" * (round(value / top * width) if top > 0 else 0)
        lines.append(f"{row['run_id']:<44.44s} {text:>10s} |{bar}|")
    return "\n".join(lines) + "\n"


def write_ranking_figures(suite, out_dir: str) -> List[str]:
    """Export the ranking table as per-metric bar figures.

    Matplotlib PNGs when the backend exists, aligned-text panels
    otherwise — the same graceful degradation as the sweep's ratio
    figures.  Returns the written paths in metric order.
    """
    rows = policy_ranking_data(suite)
    os.makedirs(out_dir, exist_ok=True)
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
    paths: List[str] = []
    for metric, label in RANKING_FIGURE_METRICS:
        if plt is None:
            path = os.path.join(out_dir, f"ranking_{metric}.txt")
            with open(path, "w") as handle:
                handle.write(_ranking_figure_text(metric, label, rows))
            paths.append(path)
            continue
        run_ids = [row["run_id"] for row in rows]
        values = [
            row[metric] if row[metric] is not None else 0.0 for row in rows
        ]
        height = max(2.5, 0.5 * len(rows) + 1.2)
        fig, ax = plt.subplots(figsize=(9.0, height))
        positions = range(len(rows))
        ax.barh(list(positions), values, color="#d65f5f")
        ax.set_yticks(list(positions))
        ax.set_yticklabels(run_ids, fontsize=8)
        ax.invert_yaxis()
        ax.set_xlabel(label)
        ax.set_title(f"{label} per diagnosed run")
        fig.tight_layout()
        path = os.path.join(out_dir, f"ranking_{metric}.png")
        fig.savefig(path, dpi=120)
        plt.close(fig)
        paths.append(path)
    return paths
