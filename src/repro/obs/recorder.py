"""The observation recorder: one controller that watches everything.

An :class:`ObsRecorder` is a standard
:class:`~repro.control.controller.PeriodicController` (entity
``"obs"``), so the experiment layers need no new plumbing: the testbed
appends it to ``testbed.controllers``, its per-tick series merge into
the run's trace set and columnar table, and its :meth:`report` lands
in ``control_reports["obs"]``.

It does two things:

* **collect annotations** — it registers one control hook per
  hypervisor in the testbed, tagging every broadcast event with the
  server it came from and filing it into an
  :class:`~repro.obs.annotations.AnnotationStream`;
* **sample the SLO signal** — its own
  :class:`~repro.control.signals.SignalTap` (a private window sink;
  side-effect-free sampling) records a windowed web ``p95_ms`` series
  under the ``obs`` entity, so incident detection works on *any*
  observed run — controllers attached or not — plus cumulative
  annotation counts per source, aligned to the sampling grid.

The tick runs at priority :data:`OBS_PRIORITY` — between the fleet
controller (45) and the fault scheduler (50) at the same timestamp, a
slot no other actor uses — and neither the hooks (list appends) nor
the tap (no randomness, no scheduled events) touch simulation state,
so observing a run never changes its physics: every pre-existing
series is bit-identical with and without the recorder.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.control.controller import PeriodicController
from repro.control.signals import SignalTap
from repro.obs.annotations import SOURCES, AnnotationStream
from repro.units import SAMPLE_PERIOD_S

#: Event-loop priority of the observation tick: after the recorder
#: (30), elastic (40) and fleet (45) ticks, before fault transitions
#: (50) at the same timestamp — so each sample closes the window
#: *before* a same-tick fault lands in the next one.
OBS_PRIORITY = 46


class ObsRecorder(PeriodicController):
    """Tap every hypervisor's event hooks plus the web SLO signal."""

    def __init__(
        self,
        sim,
        stats,
        hypervisors: Dict[str, object],
        driver=None,
        entity: str = "obs",
        interval_s: float = SAMPLE_PERIOD_S,
    ) -> None:
        super().__init__(sim, entity)
        self.stream = AnnotationStream()
        self._interval_s = interval_s
        self.servers: List[str] = sorted(hypervisors)
        self.tap = SignalTap(
            sim, stats, None, (), driver=driver, window_s=interval_s
        )
        for server in self.servers:
            hypervisors[server].add_control_hook(self._hook_for(server))
        self._add_series("p95_ms", "ms")
        self._add_series("events", "count")
        for source in SOURCES:
            self._add_series(f"{source}_events", "count")

    def _hook_for(self, server: str):
        def hook(event: dict) -> None:
            self.stream.observe(server, event)

        return hook

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ObsRecorder":
        self._arm(self._interval_s, priority=OBS_PRIORITY)
        return self

    # -- sampling ----------------------------------------------------------

    def _tick(self, tick_time: float) -> None:
        signals = self.tap.sample()
        series = self._series
        series["p95_ms"].append(tick_time, signals.p95_ms)
        counts = self.stream.counts_by_source()
        series["events"].append(tick_time, float(len(self.stream)))
        for source in SOURCES:
            series[f"{source}_events"].append(
                tick_time, float(counts[source])
            )

    # -- exports -----------------------------------------------------------

    def report(self) -> dict:
        """Plain-data summary of everything observed."""
        return {
            "kind": "obs",
            "events": len(self.stream),
            "servers": list(self.servers),
            "by_source": self.stream.counts_by_source(),
            "by_kind": self.stream.counts_by_kind(),
            "by_channel": self.stream.counts_by_channel(),
        }

    def first_annotation_at_s(self) -> Optional[float]:
        ordered = self.stream.sorted()
        if not ordered:
            return None
        return ordered[0].time_s
