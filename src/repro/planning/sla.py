"""SLA targets and compliance evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, InsufficientDataError


@dataclass(frozen=True)
class SlaTarget:
    """A latency SLA: ``quantile`` of response times under ``threshold_s``."""

    threshold_s: float
    quantile: float = 0.95

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ConfigurationError("threshold_s must be positive")
        if not 0 < self.quantile < 1:
            raise ConfigurationError("quantile must be in (0, 1)")


@dataclass(frozen=True)
class SlaEvaluation:
    """Outcome of checking response times against a target."""

    target: SlaTarget
    observed_quantile_s: float
    violation_fraction: float
    compliant: bool

    @property
    def margin_s(self) -> float:
        """Positive when compliant with slack; negative when violating."""
        return self.target.threshold_s - self.observed_quantile_s


def evaluate_sla(
    response_times_s: Sequence[float], target: SlaTarget
) -> SlaEvaluation:
    """Evaluate measured response times against an SLA target."""
    values = np.asarray(list(response_times_s), dtype=float)
    if values.size < 10:
        raise InsufficientDataError(
            f"SLA evaluation needs >= 10 response times, got {values.size}"
        )
    observed = float(np.quantile(values, target.quantile))
    violations = float(np.mean(values > target.threshold_s))
    return SlaEvaluation(
        target=target,
        observed_quantile_s=observed,
        violation_fraction=violations,
        compliant=observed <= target.threshold_s,
    )
