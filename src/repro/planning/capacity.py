"""Utilization-law capacity estimation.

Given a measured per-sample demand vector (from
:func:`repro.analysis.ratios.demand_vector`) obtained at a known client
count, the utilization law gives per-resource utilization at any other
client count: demand scales linearly with throughput in a closed system
operating far from saturation, which is exactly the regime the paper's
figures show (and the regime where capacity planning is actionable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.ratios import RESOURCES, ResourceVector
from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec
from repro.units import KB, MB, SAMPLE_PERIOD_S


@dataclass(frozen=True)
class ResourceCapacity:
    """Per-sample capacity of one server for each resource class."""

    cpu_cycles: float
    mem_used_mb: float
    disk_kb: float
    net_kb: float

    @classmethod
    def from_server_spec(
        cls, spec: ServerSpec, sample_period_s: float = SAMPLE_PERIOD_S
    ) -> "ResourceCapacity":
        disk_bandwidth = min(
            spec.disk_read_bandwidth_bps, spec.disk_write_bandwidth_bps
        )
        return cls(
            cpu_cycles=spec.cores * spec.frequency_hz * sample_period_s,
            mem_used_mb=spec.memory_bytes / MB,
            disk_kb=disk_bandwidth * sample_period_s / KB,
            net_kb=2 * spec.nic_bandwidth_bps * sample_period_s / KB,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu_cycles": self.cpu_cycles,
            "mem_used_mb": self.mem_used_mb,
            "disk_kb": self.disk_kb,
            "net_kb": self.net_kb,
        }


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of :func:`plan_capacity`."""

    client_count: int
    utilizations: Dict[str, float]
    bottleneck: str
    bottleneck_utilization: float
    max_clients: int

    @property
    def feasible(self) -> bool:
        return self.bottleneck_utilization <= 1.0


def utilization_at(
    demand: ResourceVector,
    measured_clients: int,
    target_clients: int,
    capacity: ResourceCapacity,
) -> Dict[str, float]:
    """Per-resource utilization when scaling to ``target_clients``.

    CPU, disk and network demand scale with throughput (proportional to
    clients in a closed system below saturation); memory scales with the
    session-state fraction only, so it is conservatively scaled linearly
    as well — an upper bound, flagged in the plan.
    """
    if measured_clients < 1 or target_clients < 0:
        raise ConfigurationError("client counts must be positive")
    scale = target_clients / measured_clients
    capacities = capacity.as_dict()
    demands = demand.as_dict()
    return {
        resource: demands[resource] * scale / capacities[resource]
        for resource in RESOURCES
    }


def plan_capacity(
    demand: ResourceVector,
    measured_clients: int,
    target_clients: int,
    capacity: ResourceCapacity,
    headroom: float = 0.8,
) -> CapacityPlan:
    """Size one server for ``target_clients`` with a headroom budget.

    ``max_clients`` is the largest client count keeping every resource
    below ``headroom`` of capacity.
    """
    if not 0 < headroom <= 1:
        raise ConfigurationError("headroom must be in (0, 1]")
    utilizations = utilization_at(
        demand, measured_clients, target_clients, capacity
    )
    bottleneck = max(utilizations, key=lambda r: utilizations[r])
    per_client = {
        resource: value / target_clients if target_clients else 0.0
        for resource, value in utilizations.items()
    }
    if target_clients == 0 or max(per_client.values()) == 0:
        max_clients = 0
    else:
        max_clients = int(headroom / max(per_client.values()))
    return CapacityPlan(
        client_count=target_clients,
        utilizations=utilizations,
        bottleneck=bottleneck,
        bottleneck_utilization=utilizations[bottleneck],
        max_clients=max_clients,
    )
