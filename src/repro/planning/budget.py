"""Bill-reading budget policy: watch $-per-kilorequest, flag overruns.

The cost module (:mod:`repro.planning.cost`) scores a *finished* run;
a fleet optimizer needs the same economics *mid-run*: every decision
window it reads the fleet's capacity bill and completed-request
counter, differences them against the previous window, and asks "is
this fleet currently paying more per thousand requests than the
budget allows?".  Capacity billing is lazy piecewise-constant accrual
(pure arithmetic, no events, no randomness), so reading the bill
between windows never perturbs the physics.

:class:`BudgetPolicy` is that windowed tracker.  It only *observes* —
the caller (the sharded fleet optimizer, or any controller) decides
what to throttle; the readings record why.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.planning.cost import CostModel


@dataclass(frozen=True)
class BudgetSpec:
    """The fleet's economic envelope."""

    #: Ceiling on dollars per thousand completed requests; a window
    #: above it is an overrun.
    usd_per_kilorequest: float = 0.05
    #: Scheduler-cap floor (cores) a budget-driven throttle may push a
    #: domain down to — the optimizer never caps below this.
    min_cap_cores: float = 1.0
    #: Consecutive over-budget windows before acting (hysteresis).
    over_windows: int = 2
    cost_model: CostModel = CostModel()

    def __post_init__(self) -> None:
        if not isinstance(self.cost_model, CostModel):
            object.__setattr__(
                self, "cost_model", CostModel(**self.cost_model)
            )
        if self.usd_per_kilorequest <= 0:
            raise ConfigurationError(
                "usd_per_kilorequest must be positive"
            )
        if self.min_cap_cores <= 0:
            raise ConfigurationError("min_cap_cores must be positive")
        if self.over_windows < 1:
            raise ConfigurationError("over_windows must be >= 1")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BudgetSpec":
        """Reconstruct from a plain dict (fleet-scenario shipping)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"budget spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown budget spec keys: {sorted(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class BudgetReading:
    """One window's economics."""

    time_s: float
    #: Dollars accrued fleet-wide during this window.
    window_cost_usd: float
    #: Requests completed fleet-wide during this window.
    window_requests: int
    #: Window dollars per thousand window requests (inf when the fleet
    #: spent money and completed nothing; 0 when it did neither).
    usd_per_kilorequest: float
    over_budget: bool

    def to_dict(self) -> dict:
        return asdict(self)


class BudgetPolicy:
    """Windowed $-per-kilorequest tracker over a live capacity bill."""

    def __init__(self, spec: BudgetSpec) -> None:
        self.spec = spec
        self.readings: List[BudgetReading] = []
        self._last_cost_usd = 0.0
        self._last_requests = 0
        self._over_streak = 0

    def observe(
        self, billing: dict, requests_completed: int, time_s: float = 0.0
    ) -> BudgetReading:
        """Difference the bill/counter against the previous window.

        ``billing`` is either the raw ``{domain: bill}`` mapping or the
        testbed's ``{"kind": "billing", "domains": {...}}`` envelope;
        ``requests_completed`` is the run-cumulative counter.
        """
        total_usd = self.spec.cost_model.run_cost_usd(billing)["total"]
        window_cost = total_usd - self._last_cost_usd
        window_requests = requests_completed - self._last_requests
        self._last_cost_usd = total_usd
        self._last_requests = requests_completed
        if window_requests > 0:
            per_kilo = window_cost / (window_requests / 1000.0)
        elif window_cost > 0:
            per_kilo = float("inf")
        else:
            per_kilo = 0.0
        over = per_kilo > self.spec.usd_per_kilorequest
        self._over_streak = self._over_streak + 1 if over else 0
        reading = BudgetReading(
            time_s=float(time_s),
            window_cost_usd=window_cost,
            window_requests=window_requests,
            usd_per_kilorequest=per_kilo,
            over_budget=over,
        )
        self.readings.append(reading)
        return reading

    @property
    def should_act(self) -> bool:
        """True after ``over_windows`` consecutive overrun windows."""
        return self._over_streak >= self.spec.over_windows

    def report(self) -> dict:
        """Plain-data summary (rides ``control_reports``-style paths)."""
        return {
            "kind": "budget",
            "budget_usd_per_kilorequest": self.spec.usd_per_kilorequest,
            "windows": len(self.readings),
            "over_budget_windows": sum(
                1 for r in self.readings if r.over_budget
            ),
            "readings": [r.to_dict() for r in self.readings],
        }
