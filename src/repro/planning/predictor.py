"""Workload projection: scale a measured profile to a hypothetical load.

Combines the pieces the paper says its findings enable: take a measured
demand vector, project it to a different client population with the
utilization law, estimate the response-time inflation with an M/M/c-style
correction, and predict SLA compliance at the projected load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.ratios import ResourceVector
from repro.errors import ConfigurationError
from repro.planning.capacity import (
    CapacityPlan,
    ResourceCapacity,
    plan_capacity,
)
from repro.planning.sla import SlaTarget


@dataclass(frozen=True)
class WorkloadProjection:
    """Prediction for a projected client count."""

    target_clients: int
    plan: CapacityPlan
    predicted_response_time_s: float
    sla_target: Optional[SlaTarget]
    sla_predicted_compliant: Optional[bool]

    @property
    def utilizations(self) -> Dict[str, float]:
        return self.plan.utilizations


def _queueing_inflation(utilization: float) -> float:
    """Response-time inflation factor at the bottleneck.

    Uses the M/M/1-style 1/(1-rho) blow-up, capped to keep projections
    finite past saturation (the prediction there is "violated" anyway).
    """
    if utilization >= 0.99:
        return 100.0
    return 1.0 / (1.0 - utilization)


def project_workload(
    demand: ResourceVector,
    measured_clients: int,
    base_response_time_s: float,
    target_clients: int,
    capacity: ResourceCapacity,
    sla_target: Optional[SlaTarget] = None,
    headroom: float = 0.8,
) -> WorkloadProjection:
    """Predict utilization, response time and SLA compliance at a load.

    Args:
        demand: measured per-sample demand vector (one tier or aggregate).
        measured_clients: client count at which ``demand`` was measured.
        base_response_time_s: mean response time at the measured load.
        target_clients: projected client population.
        capacity: server capacity the demand runs against.
        sla_target: optional SLA to check the projection against.
        headroom: utilization budget used for ``plan.max_clients``.
    """
    if base_response_time_s <= 0:
        raise ConfigurationError("base_response_time_s must be positive")
    plan = plan_capacity(
        demand, measured_clients, target_clients, capacity, headroom
    )
    base_utilizations = plan_capacity(
        demand, measured_clients, measured_clients, capacity, headroom
    ).utilizations
    base_bottleneck = max(base_utilizations.values())
    # Remove the queueing component already present in the measurement,
    # then re-apply it at the projected utilization.
    service_time = base_response_time_s / _queueing_inflation(base_bottleneck)
    predicted = service_time * _queueing_inflation(
        plan.bottleneck_utilization
    )
    compliant = None
    if sla_target is not None:
        compliant = predicted <= sla_target.threshold_s
    return WorkloadProjection(
        target_clients=target_clients,
        plan=plan,
        predicted_response_time_s=predicted,
        sla_target=sla_target,
        sla_predicted_compliant=compliant,
    )
