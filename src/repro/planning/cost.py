"""Cost accounting: turn capacity bills into $ and score them vs. SLA.

The elastic-control ROADMAP item asks for *cost-aware* policies: a
controller (or a placement policy) is only better if it buys the same
SLA for fewer capacity-seconds.  The hypervisors bill every guest's
reserved capacity per scheduler epoch
(:meth:`~repro.virt.hypervisor.Hypervisor.billing_report`), the
testbed merges the bill fleet-wide into
``RunSummary.control_reports["billing"]``, and this module converts
that bill into dollars and scores it against an SLA outcome — the
$-vs-SLA trade-off a capacity planner optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

#: Seconds per billing hour (prices below are hourly, bills arrive in
#: capacity-*seconds*).
_HOUR_S = 3600.0


@dataclass(frozen=True)
class CostModel:
    """Linear on-demand price book (defaults near small-cloud list
    prices; the *ratios* are what the comparisons depend on)."""

    usd_per_core_hour: float = 0.04
    usd_per_gb_hour: float = 0.005

    def __post_init__(self) -> None:
        if self.usd_per_core_hour < 0 or self.usd_per_gb_hour < 0:
            raise ConfigurationError("prices must be >= 0")

    def domain_cost_usd(self, bill: Dict[str, float]) -> float:
        """Dollar cost of one domain's ``{capacity_core_s, memory_gb_s}``."""
        return (
            bill.get("capacity_core_s", 0.0) / _HOUR_S
            * self.usd_per_core_hour
            + bill.get("memory_gb_s", 0.0) / _HOUR_S * self.usd_per_gb_hour
        )

    def run_cost_usd(self, billing: dict) -> Dict[str, float]:
        """Per-domain dollars (plus ``total``) for one run's bill.

        Accepts either the raw ``{domain: bill}`` mapping or the
        testbed's ``{"kind": "billing", "domains": {...}}`` envelope.
        """
        domains = billing.get("domains", billing)
        costs = {
            name: self.domain_cost_usd(bill)
            for name, bill in domains.items()
            if isinstance(bill, dict)
        }
        costs["total"] = sum(costs.values())
        return costs


@dataclass(frozen=True)
class CostSlaScore:
    """$-vs-SLA outcome of one run."""

    cost_usd: float
    p95_ms: float
    slo_ms: float
    sla_met: bool
    #: Dollars per thousand completed requests (inf when none completed).
    usd_per_kilorequest: float

    @property
    def slo_margin_ms(self) -> float:
        """Positive when the SLO holds with slack."""
        return self.slo_ms - self.p95_ms


def score_cost_sla(
    billing: dict,
    p95_ms: float,
    slo_ms: float,
    requests_completed: int = 0,
    cost_model: Optional[CostModel] = None,
) -> CostSlaScore:
    """Score one run's capacity bill against its latency outcome.

    The planner's decision rule is then a simple dominance check:
    among runs that meet the SLO, prefer the cheapest; a run that
    violates the SLO is not made acceptable by any saving.
    """
    if slo_ms <= 0:
        raise ConfigurationError("slo_ms must be positive")
    model = cost_model or CostModel()
    total = model.run_cost_usd(billing)["total"]
    per_kilo = (
        total / (requests_completed / 1000.0)
        if requests_completed > 0
        else float("inf")
    )
    return CostSlaScore(
        cost_usd=total,
        p95_ms=float(p95_ms),
        slo_ms=float(slo_ms),
        sla_met=p95_ms <= slo_ms,
        usd_per_kilorequest=per_kilo,
    )
