"""Capacity planning and SLA prediction (S8).

The paper motivates its characterization with resource planning: "The
findings ... will help us accurately estimate the performance of
applications, predict SLA compliance or violation based on the
projected application workload and guide the decision making to support
applications with the right hardware."  This package implements that
workflow on top of the characterization results:

* :mod:`~repro.planning.capacity` — utilization-law demand estimation
  and server sizing,
* :mod:`~repro.planning.sla` — SLA targets and compliance evaluation,
* :mod:`~repro.planning.predictor` — project a measured workload to a
  different client count and predict utilization and SLA compliance,
* :mod:`~repro.planning.cost` — price capacity bills and score runs on
  the $-vs-SLA trade-off (cost-aware control and placement),
* :mod:`~repro.planning.budget` — windowed $-per-kilorequest budget
  policies (the fleet optimizer's bill-reading lever).
"""

from repro.planning.budget import BudgetPolicy, BudgetReading, BudgetSpec
from repro.planning.capacity import (
    CapacityPlan,
    ResourceCapacity,
    plan_capacity,
    utilization_at,
)
from repro.planning.cost import CostModel, CostSlaScore, score_cost_sla
from repro.planning.sla import SlaTarget, SlaEvaluation, evaluate_sla
from repro.planning.predictor import (
    WorkloadProjection,
    project_workload,
)

__all__ = [
    "BudgetPolicy",
    "BudgetReading",
    "BudgetSpec",
    "ResourceCapacity",
    "CapacityPlan",
    "plan_capacity",
    "utilization_at",
    "CostModel",
    "CostSlaScore",
    "score_cost_sla",
    "SlaTarget",
    "SlaEvaluation",
    "evaluate_sla",
    "WorkloadProjection",
    "project_workload",
]
