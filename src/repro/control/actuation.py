"""Shared capacity actuation: one VM resize in the canonical order.

Every layer that resizes a domain — the elastic controller's level
mapping, a fleet optimizer's budget throttle, a sharded pod applying a
coordinator command — must touch the hypervisor actuators in the same
sequence, because actuation order is trace-visible: each effective
actuation emits a control event and charges dom0 cycles.  The
canonical order is the elastic controller's historical one:

    credit-scheduler cap → VCPU hotplug → scheduler weight → balloon

:class:`CapacityActuator` encapsulates that sequence for one domain.
Each underlying hypervisor actuator no-ops when the value is
unchanged, so re-applying the current target is free (no events, no
dom0 charge) — callers do not need to diff before applying.
"""

from __future__ import annotations

from typing import Optional

from repro.units import MB


class CapacityActuator:
    """Apply capacity targets to one domain, in canonical order."""

    def __init__(
        self,
        hypervisor,
        domain,
        base_weight: Optional[float] = None,
    ) -> None:
        self.hypervisor = hypervisor
        self.domain = domain
        #: Weight the multiplicative boosts scale from (captured at
        #: construction — boosting must not compound across ticks).
        self.base_weight = (
            float(base_weight) if base_weight is not None else domain.weight
        )

    def apply(
        self,
        cap_cores: float,
        vcpus: int,
        weight_factor: Optional[float] = None,
        memory_mb: Optional[float] = None,
    ) -> None:
        """Actuate cap, vcpus and (optionally) weight and balloon."""
        hypervisor = self.hypervisor
        domain = self.domain
        hypervisor.set_cap_cores(domain, cap_cores)
        hypervisor.set_vcpus(domain, vcpus)
        if weight_factor is not None:
            hypervisor.set_weight(domain, self.base_weight * weight_factor)
        if memory_mb is not None:
            hypervisor.balloon(domain, memory_mb * MB)

    def throttle(self, cap_cores: float) -> None:
        """Cap-only actuation (budget throttles leave the rest alone)."""
        self.hypervisor.set_cap_cores(self.domain, cap_cores)
