"""Control-action records: what the controller did, and when.

The hypervisor actuators emit plain-dict events (they must not depend
on this layer); :class:`ActionLog` collects them as typed
:class:`ControlAction` records for reports, tests and serialization.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class ControlAction:
    """One effective actuation (value actually changed)."""

    time_s: float
    domain: str
    kind: str
    old: float
    new: float

    def to_dict(self) -> dict:
        return asdict(self)


class ActionLog:
    """Append-only log of control actions across one run."""

    def __init__(self) -> None:
        self._actions: List[ControlAction] = []

    def record(self, event: dict) -> None:
        """Append one hypervisor control event (plain dict form)."""
        self._actions.append(ControlAction(**event))

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[ControlAction]:
        return iter(self._actions)

    @property
    def actions(self) -> List[ControlAction]:
        return list(self._actions)

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of effective actuations per action kind."""
        counts: Dict[str, int] = {}
        for action in self._actions:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        return counts

    def to_dicts(self) -> List[dict]:
        """Every action as a plain dict (JSON-exportable)."""
        return [action.to_dict() for action in self._actions]
