"""Elastic resource control: feedback autoscaling of VM capacity mid-run.

The paper's point of characterizing web workloads on virtualized
servers is to *act* on the characterization — sizing and resizing VM
capacity as load shifts.  This subsystem closes that loop inside the
simulated testbed:

* **actuators** — runtime VCPU hotplug, credit-scheduler cap/weight
  adjustment and memory ballooning live on the
  :class:`~repro.virt.hypervisor.Hypervisor`; every effective actuation
  charges dom0 the toolstack cost and is recorded as a control-action
  event;
* **signals** (:mod:`repro.control.signals`) — a
  :class:`SignalTap` turns live telemetry (response times, open-loop
  offered/shed counters, scheduler allocation, CPU-ready accrual) into
  windowed controller inputs;
* **policies** (:mod:`repro.control.policies`) — threshold/hysteresis
  reactive scaling, PID-style target tracking, and an AR-model
  predictive policy that scales ahead of ramps;
* **controller** (:mod:`repro.control.controller`) — the periodic
  observe → decide → act loop, with every decision recorded as
  first-class time series exported alongside the run's metrics.

Scenarios opt in through
:class:`~repro.control.spec.ControllerSpec` (on
:class:`~repro.experiments.scenarios.Scenario`,
:class:`~repro.config.ExperimentConfig` and per-tenant on
:class:`~repro.workloads.base.TenantSpec`);
``repro run --controller {none,static,threshold,pid,predictive}``
selects a policy from the CLI.
"""

from repro.control.actions import ActionLog, ControlAction
from repro.control.controller import ElasticController
from repro.control.policies import (
    ControlPolicy,
    PidPolicy,
    PredictivePolicy,
    StaticPolicy,
    ThresholdPolicy,
    build_policy,
)
from repro.control.signals import ControlSignals, DomainSignals, SignalTap
from repro.control.spec import CONTROLLER_KINDS, ControllerSpec

__all__ = [
    "ActionLog",
    "ControlAction",
    "ControlPolicy",
    "ControlSignals",
    "ControllerSpec",
    "CONTROLLER_KINDS",
    "DomainSignals",
    "ElasticController",
    "PidPolicy",
    "PredictivePolicy",
    "SignalTap",
    "StaticPolicy",
    "ThresholdPolicy",
    "build_policy",
]
