"""Declarative controller specifications.

A :class:`ControllerSpec` is the plain-data description of one elastic
controller: which policy runs (``static`` / ``threshold`` / ``pid`` /
``predictive``), which domains it resizes, the capacity band it may
move them within (CPU cap, VCPUs, memory), and the policy knobs.  It is
a frozen, hashable dataclass so it can ride inside a scenario's cache
fingerprint and serialize through
:class:`~repro.config.ExperimentConfig`.

``kind="static"`` is the *baseline* controller: it applies the same
initial (minimum) capacity and records the same control signals as an
active policy, but never actuates — the static-provisioning run every
autoscaling experiment compares against.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Tuple

from repro.errors import ConfigurationError
from repro.units import SAMPLE_PERIOD_S

STATIC = "static"
THRESHOLD = "threshold"
PID = "pid"
PREDICTIVE = "predictive"
CONTROLLER_KINDS = (STATIC, THRESHOLD, PID, PREDICTIVE)


@dataclass(frozen=True)
class ControllerSpec:
    """How one elastic controller observes and resizes tenant capacity.

    Capacity mapping: the policy emits a load *level* in ``[0, 1]``;
    the controller maps it linearly into the ``[min, max]`` bands below
    (snapped to the step sizes), hotplugging VCPUs to cover the CPU cap
    and — when a balloon band is configured — ballooning memory along.
    ``invert=True`` flips the mapping (capacity shrinks as load rises):
    the priority-aware throttle for antagonist tenants.
    """

    kind: str = THRESHOLD
    #: Domains this controller resizes (tenant-attached controllers
    #: replace this with the tenant's own VM).
    domains: Tuple[str, ...] = ("web-vm", "db-vm")
    #: Decision epoch.  Defaults to the 2 s sampling period so the
    #: control series align with the trace recorder's grid (wide-CSV
    #: exports require aligned series).
    interval_s: float = SAMPLE_PERIOD_S
    #: High load shrinks (instead of grows) capacity — antagonist throttling.
    invert: bool = False
    # -- CPU capacity band -------------------------------------------------
    min_cap_cores: float = 0.25
    max_cap_cores: float = 2.0
    step_cores: float = 0.25
    min_vcpus: int = 1
    max_vcpus: int = 2
    #: Weight multiplier at full level: ``weight = base * (1 + boost * level)``
    #: (0 disables weight actuation).
    weight_boost: float = 0.0
    # -- memory balloon band (0/0 disables ballooning) ---------------------
    balloon_min_mb: float = 0.0
    balloon_max_mb: float = 0.0
    balloon_step_mb: float = 256.0
    #: Front-end session capacity per GB of the first domain's memory:
    #: ballooning the web VM up raises the open-loop driver's session
    #: budget (MaxClients scales with memory).  0 leaves the budget alone.
    sessions_per_gb: float = 0.0
    # -- threshold / hysteresis policy -------------------------------------
    p95_high_ms: float = 100.0
    p95_low_ms: float = 25.0
    shed_high: float = 0.02
    up_step: float = 0.34
    down_step: float = 0.2
    calm_windows: int = 3
    # -- PID policy --------------------------------------------------------
    p95_target_ms: float = 60.0
    kp: float = 0.5
    ki: float = 0.1
    # -- predictive policy -------------------------------------------------
    ar_order: int = 2
    lead_windows: int = 2
    history_windows: int = 48
    #: Offered-rate ratio (vs. the calm baseline) mapped to level 1.0.
    surge_ref_ratio: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in CONTROLLER_KINDS:
            raise ConfigurationError(
                f"unknown controller kind {self.kind!r}; "
                f"choose from {CONTROLLER_KINDS}"
            )
        if not isinstance(self.domains, tuple):
            object.__setattr__(self, "domains", tuple(self.domains))
        if not self.domains:
            raise ConfigurationError("a controller needs at least one domain")
        if len(set(self.domains)) != len(self.domains):
            raise ConfigurationError(
                f"duplicate controller domains: {list(self.domains)}"
            )
        if self.interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if not 0 < self.min_cap_cores <= self.max_cap_cores:
            raise ConfigurationError(
                "need 0 < min_cap_cores <= max_cap_cores"
            )
        if self.step_cores <= 0:
            raise ConfigurationError("step_cores must be positive")
        if not 1 <= self.min_vcpus <= self.max_vcpus:
            raise ConfigurationError("need 1 <= min_vcpus <= max_vcpus")
        if self.weight_boost < 0:
            raise ConfigurationError("weight_boost must be >= 0")
        if self.balloon_min_mb < 0 or self.balloon_max_mb < 0:
            raise ConfigurationError("balloon bounds must be >= 0")
        if bool(self.balloon_min_mb) != bool(self.balloon_max_mb):
            raise ConfigurationError(
                "balloon_min_mb and balloon_max_mb must be set together"
            )
        if self.balloon_max_mb and (
            self.balloon_min_mb > self.balloon_max_mb
        ):
            raise ConfigurationError(
                "need balloon_min_mb <= balloon_max_mb"
            )
        if self.balloon_step_mb <= 0:
            raise ConfigurationError("balloon_step_mb must be positive")
        if self.sessions_per_gb < 0:
            raise ConfigurationError("sessions_per_gb must be >= 0")
        if self.sessions_per_gb > 0 and not self.balloon_max_mb:
            raise ConfigurationError(
                "sessions_per_gb needs a balloon band (the budget "
                "follows ballooned memory)"
            )
        if not 0 < self.p95_low_ms < self.p95_high_ms:
            raise ConfigurationError("need 0 < p95_low_ms < p95_high_ms")
        if self.shed_high <= 0:
            raise ConfigurationError("shed_high must be positive")
        if not 0 < self.up_step <= 1 or not 0 < self.down_step <= 1:
            raise ConfigurationError("up/down steps must be in (0, 1]")
        if self.calm_windows < 1:
            raise ConfigurationError("calm_windows must be >= 1")
        if self.p95_target_ms <= 0:
            raise ConfigurationError("p95_target_ms must be positive")
        if self.kp < 0 or self.ki < 0:
            raise ConfigurationError("PID gains must be >= 0")
        if self.ar_order < 1:
            raise ConfigurationError("ar_order must be >= 1")
        if self.lead_windows < 1:
            raise ConfigurationError("lead_windows must be >= 1")
        if self.history_windows < max(
            12, 4 * self.ar_order + self.lead_windows
        ):
            # Must cover the predictive policy's activation minimum
            # (policies.PredictivePolicy), or the AR branch could
            # never fire and "predictive" would silently degrade to
            # pure threshold behaviour.
            raise ConfigurationError(
                "history_windows too small: the predictive policy "
                f"needs >= max(12, 4 * ar_order + lead_windows) = "
                f"{max(12, 4 * self.ar_order + self.lead_windows)} "
                "windows of offered-rate history"
            )
        if self.surge_ref_ratio <= 1:
            raise ConfigurationError("surge_ref_ratio must be > 1")

    @property
    def active(self) -> bool:
        """True when the policy actuates (everything but ``static``)."""
        return self.kind != STATIC

    @property
    def balloon_enabled(self) -> bool:
        """True when a memory balloon band is configured."""
        return self.balloon_max_mb > 0

    def for_domain(self, domain: str) -> "ControllerSpec":
        """Copy retargeted at one domain (tenant-attached controllers)."""
        return replace(self, domains=(domain,))

    @classmethod
    def from_kind(cls, kind: str) -> "ControllerSpec":
        """Default-band spec for a CLI policy token."""
        return cls(kind=kind)

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["domains"] = list(self.domains)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerSpec":
        """Reconstruct from a plain dict (config deserialization)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"controller spec must be an object, got {type(data).__name__}"
            )
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown controller spec keys: {sorted(unknown)}"
            )
        payload = dict(data)
        if "domains" in payload:
            payload["domains"] = tuple(payload["domains"])
        return cls(**payload)
