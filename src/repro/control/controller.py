"""The closed-loop elastic controller.

An :class:`ElasticController` runs a periodic observe → decide → act
loop during a simulation: every ``interval_s`` it samples its
:class:`~repro.control.signals.SignalTap`, feeds the window to its
policy, and maps the resulting load level onto the hypervisor
actuators — credit-scheduler cap, VCPU hotplug, weight, memory balloon
and (through ballooned memory) the open-loop driver's session budget.

Everything the loop does is recorded: every effective actuation lands
in an :class:`~repro.control.actions.ActionLog`, and the controller
keeps per-tick :class:`~repro.monitoring.timeseries.TimeSeries` of its
signals and the capacity it set — first-class series the experiment
runner merges into the run's :class:`TraceSet` (and, for columnar
runs, into the per-metric table), so control decisions export through
the exact same CSV/NPZ paths as every other metric.

Determinism: the tick draws no randomness and the policies are pure
functions of the observed signals, so a controller-enabled run is a
deterministic function of the scenario seed.  The tick runs at
priority 40 — after the trace recorder's priority-30 tick at the same
timestamp — so each sample reflects the pre-action state ("observe,
then act") and recorder alignment is unaffected.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.control.actions import ActionLog
from repro.control.actuation import CapacityActuator
from repro.control.policies import build_policy
from repro.control.signals import SignalTap
from repro.control.spec import ControllerSpec
from repro.monitoring.timeseries import TimeSeries
from repro.sim.process import PeriodicProcess
from repro.units import MB


def _snap(value: float, low: float, high: float, step: float) -> float:
    """Snap ``value`` onto the ``low + k * step`` grid, clamped to band."""
    snapped = low + round((value - low) / step) * step
    return min(high, max(low, snapped))


class PeriodicController:
    """Scaffold shared by every periodic observe→act controller.

    Owns the per-tick :class:`TimeSeries` dict, the periodic-process
    lifecycle and the trace/columnar export surface — the duck-typed
    controller contract (``start``/``stop``/``trace_series``/
    ``columnar_block``/``report``/``entity``) the experiment layers
    speak.  Subclasses (the VM-resizing :class:`ElasticController`
    here, the migrating ``FleetController`` in
    :mod:`repro.placement.fleet`) add their signals, actuators and
    ``_tick``.
    """

    def __init__(self, sim, entity: str) -> None:
        self.sim = sim
        #: Trace-set entity the controller's series are filed under.
        self.entity = entity
        self._series: Dict[str, TimeSeries] = {}
        self._process: Optional[PeriodicProcess] = None

    def _add_series(self, resource: str, unit: str) -> None:
        self._series[resource] = TimeSeries(
            f"{self.entity}:{resource}", unit
        )

    def _arm(self, interval_s: float, priority: int) -> None:
        """Start the periodic decision loop."""
        self._process = PeriodicProcess(
            self.sim,
            interval_s,
            self._tick,
            priority=priority,
            name=f"{type(self).__name__}:{self.entity}",
        ).start()

    def _tick(self, tick_time: float) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        """Disarm the decision loop (end of an experiment)."""
        if self._process is not None:
            self._process.stop()
            self._process = None

    # -- exports -----------------------------------------------------------

    def trace_series(self) -> List[Tuple[str, TimeSeries]]:
        """The controller's series as ``(resource, series)`` pairs."""
        return list(self._series.items())

    def columnar_block(self) -> Tuple[List[str], np.ndarray]:
        """Column labels + matrix for columnar (per-metric) export."""
        names = [
            f"{self.entity}|{resource}" for resource in self._series
        ]
        if not self._series:
            return names, np.empty((0, 0))
        matrix = np.column_stack(
            [series.values for series in self._series.values()]
        )
        return names, matrix


class ElasticController(PeriodicController):
    """Observe live telemetry, resize tenant capacity mid-run."""

    def __init__(
        self,
        sim,
        spec: ControllerSpec,
        hypervisor,
        stats,
        driver=None,
        entity: str = "control",
    ) -> None:
        super().__init__(sim, entity)
        self.spec = spec
        self.hypervisor = hypervisor
        self.driver = driver
        # Resolve eagerly so a misnamed domain fails at build time.
        self._domains = [hypervisor.domain(name) for name in spec.domains]
        self._actuators = {
            d.name: CapacityActuator(hypervisor, d) for d in self._domains
        }
        self.tap = SignalTap(
            sim,
            stats,
            hypervisor,
            spec.domains,
            driver=driver,
            window_s=spec.interval_s,
        )
        self.policy = build_policy(spec)
        self.log = ActionLog()
        hypervisor.add_control_hook(self._on_action)
        self._actions_in_tick = 0
        self.level = 0.0
        self._add_series("level", "fraction")
        self._add_series("p95_ms", "ms")
        self._add_series("actions", "count/sample")
        if driver is not None:
            self._add_series("offered_rps", "arrivals/s")
            self._add_series("shed_fraction", "fraction")
            self._add_series("session_budget", "sessions")
        for name in spec.domains:
            self._add_series(f"{name}.cap_cores", "cores")
            self._add_series(f"{name}.vcpus", "vcpus")
            self._add_series(f"{name}.memory_mb", "MB")

    def _on_action(self, event: dict) -> None:
        # The hypervisor broadcasts to every registered hook; keep only
        # the actions on domains this controller owns.  Fault markers
        # carry extra payload keys that don't fit the ControlAction
        # shape — and a fault is not an actuation by this controller.
        if event["kind"].startswith("fault."):
            return
        if event["domain"] in self.spec.domains:
            self.log.record(event)
            self._actions_in_tick += 1

    # -- capacity mapping --------------------------------------------------

    def _effective_level(self, level: float) -> float:
        return 1.0 - level if self.spec.invert else level

    def _cap_for(self, level: float) -> float:
        spec = self.spec
        effective = self._effective_level(level)
        return _snap(
            spec.min_cap_cores
            + effective * (spec.max_cap_cores - spec.min_cap_cores),
            spec.min_cap_cores,
            spec.max_cap_cores,
            spec.step_cores,
        )

    def _vcpus_for(self, cap_cores: float) -> int:
        spec = self.spec
        wanted = int(ceil(cap_cores - 1e-9))
        return min(spec.max_vcpus, max(spec.min_vcpus, wanted))

    def _memory_mb_for(self, level: float) -> float:
        spec = self.spec
        effective = self._effective_level(level)
        return _snap(
            spec.balloon_min_mb
            + effective * (spec.balloon_max_mb - spec.balloon_min_mb),
            spec.balloon_min_mb,
            spec.balloon_max_mb,
            spec.balloon_step_mb,
        )

    def _actuate(self, level: float) -> None:
        spec = self.spec
        cap = self._cap_for(level)
        vcpus = self._vcpus_for(cap)
        memory_mb = (
            self._memory_mb_for(level) if spec.balloon_enabled else None
        )
        weight_factor = (
            1.0 + spec.weight_boost * self._effective_level(level)
            if spec.weight_boost > 0
            else None
        )
        for domain in self._domains:
            self._actuators[domain.name].apply(
                cap, vcpus,
                weight_factor=weight_factor,
                memory_mb=memory_mb,
            )
        if (
            memory_mb is not None
            and spec.sessions_per_gb > 0
            and self.driver is not None
        ):
            budget = max(1, round(spec.sessions_per_gb * memory_mb / 1024.0))
            self.driver.set_session_budget(budget)

    # -- lifecycle ---------------------------------------------------------

    def apply_initial(self) -> None:
        """Provision the controlled domains at the level-0 capacity.

        Runs for every kind including ``static`` — the static baseline
        is "the same initial sizing, never resized", which makes
        static-vs-policy comparisons apples-to-apples.
        """
        self._actuate(0.0)

    def start(self) -> "ElasticController":
        """Apply the initial capacity and arm the decision loop."""
        self.apply_initial()
        self._arm(self.spec.interval_s, priority=40)
        return self

    # -- the decision epoch ------------------------------------------------

    def _tick(self, tick_time: float) -> None:
        signals = self.tap.sample()
        self._actions_in_tick = 0
        level = self.policy.update(signals)
        if self.spec.active:
            self._actuate(level)
        self.level = level
        series = self._series
        series["level"].append(tick_time, level)
        series["p95_ms"].append(tick_time, signals.p95_ms)
        series["actions"].append(tick_time, float(self._actions_in_tick))
        if self.driver is not None:
            series["offered_rps"].append(tick_time, signals.offered_rps)
            series["shed_fraction"].append(
                tick_time, signals.shed_fraction
            )
            series["session_budget"].append(
                tick_time, float(self.driver.session_budget or 0)
            )
        for name, domain_signals in signals.domains.items():
            domain = self.hypervisor.domain(name)
            series[f"{name}.cap_cores"].append(
                tick_time, domain.cap_cores
            )
            series[f"{name}.vcpus"].append(
                tick_time, float(domain.online_vcpus)
            )
            series[f"{name}.memory_mb"].append(
                tick_time, domain.memory_bytes / MB
            )

    # -- exports -----------------------------------------------------------

    def report(self) -> dict:
        """Plain-data summary of what this controller did."""
        return {
            "kind": self.spec.kind,
            "domains": list(self.spec.domains),
            "level": self.level,
            "num_actions": len(self.log),
            "actions_by_kind": self.log.counts_by_kind(),
            "final": {
                domain.name: {
                    "cap_cores": domain.cap_cores,
                    "vcpus": domain.online_vcpus,
                    "memory_mb": domain.memory_bytes / MB,
                }
                for domain in self._domains
            },
            "session_budget": (
                self.driver.session_budget
                if self.driver is not None
                else None
            ),
        }
