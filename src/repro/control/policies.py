"""Scaling policies: signals in, load level out.

Every policy maps a :class:`~repro.control.signals.ControlSignals`
window to a *load level* in ``[0, 1]``; the controller turns the level
into concrete capacity (CPU cap, VCPUs, memory, session budget).  All
policies are deterministic — they draw no randomness, so
controller-enabled runs stay seed-reproducible.

* :class:`StaticPolicy` — the baseline: level 0 forever.
* :class:`ThresholdPolicy` — reactive hysteresis: step up when p95 or
  the shed fraction crosses the high watermark, step down only after
  ``calm_windows`` consecutive calm windows.
* :class:`PidPolicy` — velocity-form PI tracking of a p95 target (the
  shed fraction enters the error so overload without completions still
  scales up); the incremental form plus clamping gives anti-windup.
* :class:`PredictivePolicy` — fits an AR model
  (:class:`~repro.analysis.models.ARModel`) to the recent offered-rate
  history and scales ahead of predicted ramps; falls back to threshold
  behaviour until enough history exists, and never scales below what
  the reactive part demands.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.models import ARModel
from repro.errors import AnalysisError, ConfigurationError, InsufficientDataError
from repro.control.signals import ControlSignals
from repro.control.spec import (
    PID,
    PREDICTIVE,
    STATIC,
    THRESHOLD,
    ControllerSpec,
)


def _clamp01(value: float) -> float:
    return min(1.0, max(0.0, value))


class ControlPolicy:
    """Interface: consume one signal window, emit a load level."""

    def update(self, signals: ControlSignals) -> float:
        """Return the load level in ``[0, 1]`` for this window."""
        raise NotImplementedError


class StaticPolicy(ControlPolicy):
    """The non-policy: static provisioning (level 0 forever)."""

    def update(self, signals: ControlSignals) -> float:
        return 0.0


class ThresholdPolicy(ControlPolicy):
    """Reactive threshold scaling with scale-down hysteresis."""

    def __init__(self, spec: ControllerSpec) -> None:
        self.spec = spec
        self.level = 0.0
        self._calm = 0

    def update(self, signals: ControlSignals) -> float:
        spec = self.spec
        hot = (
            signals.p95_ms > spec.p95_high_ms
            or signals.shed_fraction > spec.shed_high
        )
        calm = (
            signals.p95_ms < spec.p95_low_ms and signals.shed == 0
        )
        if hot:
            self.level = _clamp01(self.level + spec.up_step)
            self._calm = 0
        elif calm:
            self._calm += 1
            if self._calm >= spec.calm_windows:
                self.level = _clamp01(self.level - spec.down_step)
                self._calm = 0
        else:
            self._calm = 0
        return self.level


class PidPolicy(ControlPolicy):
    """Velocity-form PI tracking of the p95 target."""

    #: Error clamp: one target's worth of slack downward, four upward
    #: (a p95 at 5x the target saturates the proportional response).
    ERROR_MIN = -1.0
    ERROR_MAX = 4.0

    def __init__(self, spec: ControllerSpec) -> None:
        self.spec = spec
        self.level = 0.0
        self._previous_error = 0.0

    def _error(self, signals: ControlSignals) -> float:
        spec = self.spec
        latency_error = signals.p95_ms / spec.p95_target_ms - 1.0
        error = latency_error
        if signals.shed > 0:
            shed_error = signals.shed_fraction / spec.shed_high - 1.0
            error = max(error, shed_error)
        return min(self.ERROR_MAX, max(self.ERROR_MIN, error))

    def update(self, signals: ControlSignals) -> float:
        error = self._error(signals)
        delta = (
            self.spec.kp * (error - self._previous_error)
            + self.spec.ki * error
        )
        self._previous_error = error
        self.level = _clamp01(self.level + delta)
        return self.level


class PredictivePolicy(ControlPolicy):
    """Scale ahead of ramps predicted from the offered-arrival history."""

    def __init__(self, spec: ControllerSpec) -> None:
        self.spec = spec
        self._reactive = ThresholdPolicy(spec)
        self._history: List[float] = []
        #: Level the AR forecast asked for in the last window (exposed
        #: for tests/diagnostics).
        self.predicted_level = 0.0

    def _forecast_rate(self) -> float:
        """Offered rate ``lead_windows`` ahead, via an AR fit."""
        spec = self.spec
        history = np.asarray(self._history)
        model = ARModel(order=spec.ar_order).fit(history)
        window = list(history)
        prediction = float(history[-1])
        for _ in range(spec.lead_windows):
            prediction = model.predict_one_step(np.asarray(window))
            window.append(prediction)
        return max(prediction, 0.0)

    def update(self, signals: ControlSignals) -> float:
        spec = self.spec
        self._history.append(signals.offered_rps)
        if len(self._history) > spec.history_windows:
            del self._history[: len(self._history) - spec.history_windows]
        reactive = self._reactive.update(signals)
        self.predicted_level = 0.0
        minimum = max(12, 4 * spec.ar_order + spec.lead_windows)
        if len(self._history) >= minimum:
            try:
                predicted = self._forecast_rate()
            except (AnalysisError, InsufficientDataError):
                return reactive  # constant/degenerate history
            baseline = float(np.percentile(self._history, 20.0))
            if baseline > 0:
                ratio = predicted / baseline
                self.predicted_level = _clamp01(
                    (ratio - 1.0) / (spec.surge_ref_ratio - 1.0)
                )
        # Never below the reactive demand: prediction adds lead time,
        # it must not mask a live overload signal.
        level = max(reactive, self.predicted_level)
        self._reactive.level = level
        return level


def build_policy(spec: ControllerSpec) -> ControlPolicy:
    """Construct the policy a controller spec names."""
    if spec.kind == STATIC:
        return StaticPolicy()
    if spec.kind == THRESHOLD:
        return ThresholdPolicy(spec)
    if spec.kind == PID:
        return PidPolicy(spec)
    if spec.kind == PREDICTIVE:
        return PredictivePolicy(spec)
    raise ConfigurationError(f"unknown controller kind {spec.kind!r}")
