"""The signal layer: windowed controller inputs over live telemetry.

A :class:`SignalTap` sits over the objects a run already maintains —
the traffic driver's :class:`~repro.rubis.client.SessionStats`, the
open-loop driver's offered/shed counters, and the hypervisor's
per-domain allocation and CPU-ready accounting — and turns their
cumulative counters into *windowed* control inputs: per-window p95
latency, offered and shed rates, and per-domain utilization signals.

Sampling draws no randomness and schedules no events, so attaching a
tap (the ``static`` baseline controller does) never perturbs a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.units import MB


@dataclass(frozen=True)
class DomainSignals:
    """One domain's allocation state at a sample."""

    demand_cores: float
    speed_fraction: float
    cap_cores: float
    online_vcpus: int
    memory_mb: float
    mem_used_mb: float
    #: CPU ready (steal) time accrued inside the window, core-seconds.
    ready_delta_s: float


@dataclass(frozen=True)
class ControlSignals:
    """Everything a policy sees for one decision window."""

    time_s: float
    window_s: float
    #: Requests completed inside the window.
    completed: int
    #: Windowed 95th-percentile response time (carried over from the
    #: previous window when nothing completed — an empty window during
    #: overload means *wedged*, not *healthy*).
    p95_s: float
    mean_s: float
    #: Open-loop arrivals offered / shed inside the window (0 for
    #: closed-loop runs, which cannot shed).
    offered: int
    shed: int
    shed_fraction: float
    in_flight: int
    session_budget: Optional[int]
    domains: Dict[str, DomainSignals] = field(default_factory=dict)

    @property
    def offered_rps(self) -> float:
        """Offered arrival rate over the window."""
        return self.offered / self.window_s

    @property
    def p95_ms(self) -> float:
        return self.p95_s * 1000.0


class SignalTap:
    """Windowed view over a run's cumulative telemetry counters."""

    def __init__(
        self,
        sim,
        stats,
        hypervisor,
        domain_names: Sequence[str],
        driver=None,
        window_s: float = 2.0,
        resolve: Optional[Callable[[str], object]] = None,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.hypervisor = hypervisor
        self.domain_names = tuple(domain_names)
        self.driver = driver
        self.window_s = float(window_s)
        #: Optional name → hypervisor lookup for fleets where a watched
        #: domain can move between servers mid-run (a forced
        #: evacuation); None pins every lookup to ``hypervisor``, the
        #: pre-fleet behaviour.
        self.resolve = resolve
        # Window response times arrive through a live sink rather than
        # a cursor into ``stats.response_times_s``: that reservoir is
        # capped (MAX_SAMPLES), and a cursor-based window would freeze
        # once a long run fills it — blinding the controller exactly
        # on the horizons elasticity experiments care about.
        self._window: list = []
        stats.add_window_sink(self._window)
        # Cursors into the (unbounded) cumulative counters.
        self._seen_offered = 0
        self._seen_shed = 0
        self._seen_ready = {name: 0.0 for name in self.domain_names}
        self._last_p95_s = 0.0
        self._last_mean_s = 0.0

    def sample(self) -> ControlSignals:
        """Compute the signals for the window ending now."""
        window = self._window
        completed = len(window)
        if completed:
            arr = np.asarray(window)
            self._last_p95_s = float(np.percentile(arr, 95.0))
            self._last_mean_s = float(arr.mean())
            # Drain in place: the sink reference registered with the
            # stats object must stay alive.
            window.clear()
        offered = shed = 0
        in_flight = 0
        budget = None
        driver = self.driver
        if driver is not None:
            offered = driver.arrivals_offered - self._seen_offered
            shed = driver.arrivals_shed - self._seen_shed
            self._seen_offered = driver.arrivals_offered
            self._seen_shed = driver.arrivals_shed
            in_flight = driver.active_session_count()
            budget = driver.session_budget
        domains: Dict[str, DomainSignals] = {}
        resolve = self.resolve
        for name in self.domain_names:
            hypervisor = (
                resolve(name) if resolve is not None else self.hypervisor
            )
            domain = hypervisor.domain(name)
            ready = hypervisor.cpu_ready_seconds(name)
            domains[name] = DomainSignals(
                demand_cores=domain.demand_cores(),
                speed_fraction=hypervisor.scheduler.speed_fraction(name),
                cap_cores=domain.cap_cores,
                online_vcpus=domain.online_vcpus,
                memory_mb=domain.memory_bytes / MB,
                mem_used_mb=hypervisor.vm_memory_used(domain) / MB,
                ready_delta_s=ready - self._seen_ready[name],
            )
            self._seen_ready[name] = ready
        return ControlSignals(
            time_s=self.sim.now,
            window_s=self.window_s,
            completed=completed,
            p95_s=self._last_p95_s,
            mean_s=self._last_mean_s,
            offered=offered,
            shed=shed,
            shed_fraction=(shed / offered) if offered else 0.0,
            in_flight=in_flight,
            session_budget=budget,
            domains=domains,
        )
