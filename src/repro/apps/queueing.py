"""Multi-worker FCFS queueing station.

Models an Apache worker pool or a MySQL thread pool: ``workers``
concurrent servers, FIFO queue in front.  The station does not know what
"service" means — the submitter passes a callable that, invoked at
service start, performs the accounting and returns the service duration.
That lets service speed reflect the scheduler allocation *at start time*
(the approximation documented in :mod:`repro.virt.scheduler`).

The queue length is observable (``backlog``); the RUBiS memory models
watch it to trigger the paper's backlog-induced RAM jumps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator

ServiceFn = Callable[[Any], float]
DoneFn = Callable[[Any], None]


@dataclass(slots=True)
class StationStats:
    """Aggregate behaviour counters for one station."""

    arrivals: int = 0
    completions: int = 0
    total_wait_s: float = 0.0
    total_service_s: float = 0.0
    peak_backlog: int = 0
    backlog_sum: float = 0.0
    _observations: int = field(default=0, repr=False)

    def observe_backlog(self, backlog: int) -> None:
        if backlog > self.peak_backlog:
            self.peak_backlog = backlog
        self.backlog_sum += backlog
        self._observations += 1

    @property
    def mean_wait_s(self) -> float:
        if self.completions == 0:
            return 0.0
        return self.total_wait_s / self.completions

    @property
    def mean_service_s(self) -> float:
        if self.completions == 0:
            return 0.0
        return self.total_service_s / self.completions

    @property
    def mean_backlog(self) -> float:
        if self._observations == 0:
            return 0.0
        return self.backlog_sum / self._observations


class QueueingStation:
    """FCFS station with ``workers`` parallel servers."""

    __slots__ = ("sim", "name", "workers", "on_start", "on_finish",
                 "_queue", "_busy", "stats", "_window_peak",
                 "_in_flight", "_next_token")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        workers: int,
        on_start: Optional[Callable[[], None]] = None,
        on_finish: Optional[Callable[[], None]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("a station needs at least one worker")
        self.sim = sim
        self.name = name
        self.workers = int(workers)
        self.on_start = on_start
        self.on_finish = on_finish
        self._queue: Deque[Tuple[Any, ServiceFn, DoneFn, float]] = deque()
        self._busy = 0
        self.stats = StationStats()
        self._window_peak = 0
        # In-service jobs by token: [job, done_fn, event, finish_time].
        # Tracked so a capacity change (the stop-and-copy pause of a
        # live migration) can re-scale remaining service mid-flight.
        self._in_flight: dict = {}
        self._next_token = 0

    @property
    def backlog(self) -> int:
        """Jobs waiting in queue (not counting those in service)."""
        return len(self._queue)

    @property
    def in_service(self) -> int:
        return self._busy

    @property
    def occupancy(self) -> int:
        """Waiting plus in-service jobs."""
        return self.backlog + self._busy

    def submit(self, job: Any, service_fn: ServiceFn, done_fn: DoneFn) -> None:
        """Enqueue ``job``; ``service_fn(job)`` runs at service start and
        returns the service duration; ``done_fn(job)`` runs at completion."""
        stats = self.stats
        stats.arrivals += 1
        queue = self._queue
        busy = self._busy
        if not queue and busy < self.workers:
            # Fast path (the common case away from saturation): the job
            # starts immediately, so the enqueue/dequeue round trip and
            # the zero wait-time accounting are skipped.  The observed
            # backlog of 1 matches the queued path, which counts the job
            # between its append and the dispatch pop.
            stats.observe_backlog(1)
            occupancy = busy + 1
            if occupancy > self._window_peak:
                self._window_peak = occupancy
            self._busy = occupancy
            if self.on_start is not None:
                self.on_start()
            duration = service_fn(job)
            if duration < 0:
                raise ConfigurationError(
                    f"negative service duration on station {self.name!r}"
                )
            stats.total_service_s += duration
            sim = self.sim
            token = self._next_token = self._next_token + 1
            self._in_flight[token] = [
                job, done_fn,
                sim.schedule(duration, self._complete, token),
                sim.now + duration,
            ]
            return
        queue.append((job, service_fn, done_fn, self.sim.now))
        backlog = len(queue)
        stats.observe_backlog(backlog)
        occupancy = backlog + busy
        if occupancy > self._window_peak:
            self._window_peak = occupancy
        self._dispatch()

    def take_window_peak(self) -> int:
        """Peak occupancy since the last call (then reset).

        Burst backlogs drain in milliseconds — far faster than the
        1-second memory-model tick — so level-triggered sampling would
        miss them; this edge-triggered window peak is what the memory
        models watch.
        """
        peak = self._window_peak
        self._window_peak = self.occupancy
        return peak

    def _dispatch(self) -> None:
        queue = self._queue
        busy = self._busy
        workers = self.workers
        if busy >= workers or not queue:
            return
        sim = self.sim
        stats = self.stats
        on_start = self.on_start
        # _busy is only ever touched from this loop and _complete, which
        # runs from a scheduled event, never re-entrantly — so the local
        # counter is written back once.
        while busy < workers and queue:
            job, service_fn, done_fn, enqueued_at = queue.popleft()
            busy += 1
            self._busy = busy
            if on_start is not None:
                on_start()
            stats.total_wait_s += sim.now - enqueued_at
            duration = service_fn(job)
            if duration < 0:
                raise ConfigurationError(
                    f"negative service duration on station {self.name!r}"
                )
            stats.total_service_s += duration
            token = self._next_token = self._next_token + 1
            self._in_flight[token] = [
                job, done_fn,
                sim.schedule(duration, self._complete, token),
                sim.now + duration,
            ]

    def rescale_in_flight(self, factor: float) -> int:
        """Multiply the *remaining* service of every in-flight job.

        The capacity-change hook for the engine's sample-speed-once
        approximation: when a domain's effective speed changes suddenly
        (the stop-and-copy pause of a live migration entering or
        lifting), the remaining portion of each in-service job is
        stretched (``factor > 1``) or shrunk (``< 1``) by rescheduling
        its completion; queued jobs are untouched (they sample the new
        speed at dispatch).  ``total_service_s`` follows the adjusted
        durations.  Returns the number of jobs re-scaled.
        """
        if factor <= 0:
            raise ConfigurationError(
                f"rescale factor must be positive on {self.name!r}"
            )
        if factor == 1.0 or not self._in_flight:
            return 0
        sim = self.sim
        now = sim.now
        stats = self.stats
        rescaled = 0
        for token, entry in self._in_flight.items():
            remaining = entry[3] - now
            if remaining <= 0.0:
                # Completing at this very timestamp: let it land.
                continue
            sim.cancel(entry[2])
            stretched = remaining * factor
            entry[2] = sim.schedule(stretched, self._complete, token)
            entry[3] = now + stretched
            stats.total_service_s += stretched - remaining
            rescaled += 1
        return rescaled

    def _complete(self, token: int) -> None:
        job, done_fn = self._in_flight.pop(token)[:2]
        self._busy -= 1
        self.stats.completions += 1
        if self.on_finish is not None:
            self.on_finish()
        # Dispatch queued work before running the completion continuation
        # so a long continuation chain cannot starve the queue.  At low
        # utilization the queue is almost always empty; skip the call.
        if self._queue:
            self._dispatch()
        done_fn(job)
