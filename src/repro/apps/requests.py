"""Request records and per-request resource demands."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

_request_ids = itertools.count(1)


@dataclass(slots=True)
class ResourceDemand:
    """Sampled resource demand of one request, in base units.

    The web-tier and db-tier demands are separated because the paper
    characterizes the tiers independently (Figures 1-8 all have per-tier
    panels).  All byte quantities are logical (guest-visible) sizes; the
    virtualization layer applies amplification on the physical path.
    """

    web_cycles: float = 0.0
    db_cycles: float = 0.0
    db_queries: int = 0
    db_disk_read_bytes: float = 0.0
    db_disk_write_bytes: float = 0.0
    web_disk_write_bytes: float = 0.0
    request_bytes: float = 0.0
    response_bytes: float = 0.0
    query_bytes: float = 0.0
    result_bytes: float = 0.0
    #: True when the request commits database writes (drives the commit
    #: accounting path: journal barriers, fsync, extra hypercalls).
    commit: bool = False

    def scaled(self, factor: float) -> "ResourceDemand":
        """A copy with every field multiplied by ``factor``."""
        return ResourceDemand(
            web_cycles=self.web_cycles * factor,
            db_cycles=self.db_cycles * factor,
            db_queries=self.db_queries,
            db_disk_read_bytes=self.db_disk_read_bytes * factor,
            db_disk_write_bytes=self.db_disk_write_bytes * factor,
            web_disk_write_bytes=self.web_disk_write_bytes * factor,
            request_bytes=self.request_bytes * factor,
            response_bytes=self.response_bytes * factor,
            query_bytes=self.query_bytes * factor,
            result_bytes=self.result_bytes * factor,
            commit=self.commit,
        )


@dataclass(slots=True)
class Request:
    """One client request travelling through the tiers."""

    session_id: int
    interaction: str
    demand: ResourceDemand
    created_at: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    web_started_at: Optional[float] = None
    db_started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: Continuation invoked with the request when the response reaches
    #: the client.  Carried on the request so the tier pipeline passes
    #: stable bound methods instead of allocating per-request closures.
    on_response: Optional[Callable[["Request"], None]] = None
    #: Span accumulator of a *sampled* request (a
    #: :class:`repro.obs.tracing._TraceBuilder`); None for unsampled
    #: requests and whenever tracing is off, so the request path only
    #: pays a truthiness check.
    trace: Optional[object] = None

    @property
    def response_time(self) -> Optional[float]:
        """End-to-end latency, or None while in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at
