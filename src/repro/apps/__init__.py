"""Application substrate (S4): requests, queueing stations, contexts.

The RUBiS tiers are built on three pieces kept application-agnostic:

* :class:`~repro.apps.requests.Request` / resource-demand records,
* :class:`~repro.apps.queueing.QueueingStation` — a multi-worker FCFS
  service station with backlog observability,
* execution contexts (:mod:`repro.apps.tier`) that route CPU, disk,
  network and memory operations either through a hypervisor domain
  (virtualized environment) or directly to a physical server (bare
  metal).  The tier code is identical in both environments, which is
  exactly the property the paper's comparison relies on.
"""

from repro.apps.requests import Request, ResourceDemand
from repro.apps.queueing import QueueingStation, StationStats
from repro.apps.tier import (
    BareMetalContext,
    ExecutionContext,
    OsActivityModel,
    VirtualizedContext,
)

__all__ = [
    "Request",
    "ResourceDemand",
    "QueueingStation",
    "StationStats",
    "ExecutionContext",
    "BareMetalContext",
    "VirtualizedContext",
    "OsActivityModel",
]
