"""Execution contexts: where a tier's resource operations actually land.

A tier (PHP or MySQL model) performs abstract operations — "burn N
cycles", "read K bytes from disk", "send B bytes to the client".  The
*context* decides what that means physically:

* :class:`VirtualizedContext` routes everything through a
  :class:`~repro.virt.hypervisor.Hypervisor` domain: cycles are charged
  to the VM's ledger, I/O goes through dom0's split drivers, the credit
  scheduler sets the CPU speed.
* :class:`BareMetalContext` charges a physical server directly, with a
  small host-OS activity model (:class:`OsActivityModel`) providing the
  background load a real sysstat would see.

Running identical tier code over the two contexts is the in-silico
analogue of the paper deploying the same RUBiS binaries on VMs and on
bare metal.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.errors import ConfigurationError
from repro.hardware.disk import DiskRequest
from repro.hardware.server import PhysicalServer
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.units import MB
from repro.virt.domain import Domain
from repro.virt.hypervisor import Hypervisor


class ExecutionContext:
    """Interface the tiers program against."""

    #: Ledger owner key; monitoring reads counters by this key.
    owner: str = ""

    # -- CPU ---------------------------------------------------------------
    def cpu_time(self, cycles: float) -> float:
        raise NotImplementedError

    def pure_cpu_time(self, cycles: float) -> float:
        """Service time on an uncontended dedicated core.

        The tracing layer's reference point: the gap between
        :meth:`cpu_time` and this is the virtualization slowdown
        (ready/steal/cap-throttle inflation) of one service.
        """
        raise NotImplementedError

    def charge_cpu(self, cycles: float) -> None:
        raise NotImplementedError

    def account_request(self, scale: float = 1.0) -> None:
        """Per-request kernel/hypervisor fixed cost hook."""
        raise NotImplementedError

    def account_commit(self) -> None:
        """Per-database-commit fixed cost hook (fsync/journal barrier)."""
        raise NotImplementedError

    # -- devices -------------------------------------------------------------
    def disk_read(self, size_bytes: float) -> float:
        raise NotImplementedError

    def disk_write(self, size_bytes: float) -> float:
        raise NotImplementedError

    def net_receive(self, size_bytes: float) -> float:
        raise NotImplementedError

    def net_transmit(self, size_bytes: float) -> float:
        raise NotImplementedError

    # -- memory ----------------------------------------------------------------
    def set_memory(self, used_bytes: float) -> None:
        raise NotImplementedError

    def memory_used(self) -> float:
        raise NotImplementedError

    # -- counters the samplers read ---------------------------------------------
    def cpu_cycles_total(self) -> float:
        raise NotImplementedError

    def disk_bytes_total(self) -> float:
        raise NotImplementedError

    def net_bytes_total(self) -> float:
        raise NotImplementedError

    # -- scheduling gauge ---------------------------------------------------------
    def worker_started(self) -> None:
        """A station worker began serving inside this context."""

    def worker_finished(self) -> None:
        """A station worker finished serving inside this context."""

    # -- station registry ----------------------------------------------------------
    def register_station(self, station) -> None:
        """Register a queueing station executing inside this context.

        The tiers register their stations so capacity-change actuators
        (the live-migration pause) can reach every in-flight job via
        :meth:`rescale_in_flight`.
        """
        stations = getattr(self, "stations", None)
        if stations is None:
            stations = []
            self.stations = stations
        stations.append(station)

    def rescale_in_flight(self, factor: float) -> int:
        """Re-scale remaining service of in-flight jobs on all stations."""
        rescaled = 0
        for station in getattr(self, "stations", ()):
            rescaled += station.rescale_in_flight(factor)
        return rescaled

    # -- lifecycle -----------------------------------------------------------------
    def shutdown(self) -> None:
        """Disarm periodic processes owned by this context (if any)."""


class VirtualizedContext(ExecutionContext):
    """Execution inside a guest domain under a hypervisor."""

    def __init__(self, hypervisor: Hypervisor, domain: Domain) -> None:
        self.domain = domain
        self.owner = domain.owner
        self._bind(hypervisor)

    def _bind(self, hypervisor: Hypervisor) -> None:
        self.hypervisor = hypervisor
        domain = self.domain
        # The request path crosses this adapter for every service start;
        # the fixed (hypervisor, domain) targets are prebound so each
        # crossing costs one frame instead of a delegation chain (the
        # methods below document the contracts they shadow).
        self.charge_cpu = partial(
            hypervisor.server.cpu.ledger.charge, domain.owner
        )
        self.account_request = partial(hypervisor.account_request, domain)
        speed_fraction = hypervisor.scheduler.speed_fraction
        service_time = hypervisor.server.cpu.service_time
        domain_name = domain.name

        if hypervisor.vcpu_contention:
            # Elasticity-experiment refinement: workers runnable beyond
            # the online VCPUs time-share them, so each runs at
            # ``online / workers`` of the scheduler-granted speed.
            # Sampled at service start like the scheduler fraction.
            def cpu_time(cycles: float) -> float:
                fraction = speed_fraction(domain_name)
                workers = domain.active_workers
                # A single worker can never exceed its VCPU (>= 1), so
                # the online count — a sum over the VCPU list — is only
                # computed when contention is possible at all.
                if workers > 1:
                    online = domain.online_vcpus
                    if workers > online:
                        fraction *= online / workers
                return service_time(cycles, fraction)

        else:

            def cpu_time(cycles: float) -> float:
                return service_time(cycles, speed_fraction(domain_name))

        self.cpu_time = cpu_time
        # Uncontended reference (speed fraction 1.0) for the tracing
        # layer; prebound so a traced service costs one extra call.
        self.pure_cpu_time = service_time
        sim = hypervisor.sim
        owner = domain.owner
        block = hypervisor.block_backend
        net = hypervisor.net_backend
        block_read, block_write = block.read, block.write
        net_rx, net_tx = net.receive, net.transmit

        def disk_read(size_bytes: float) -> float:
            return block_read(sim.now, owner, size_bytes)

        def disk_write(size_bytes: float) -> float:
            return block_write(sim.now, owner, size_bytes)

        def net_receive(size_bytes: float) -> float:
            return net_rx(sim.now, owner, size_bytes)

        def net_transmit(size_bytes: float) -> float:
            return net_tx(sim.now, owner, size_bytes)

        self.disk_read = disk_read
        self.disk_write = disk_write
        self.net_receive = net_receive
        self.net_transmit = net_transmit

    def rebind(self, hypervisor: Hypervisor) -> None:
        """Re-target the prebound fast paths at a new hypervisor.

        The last step of a live migration: the domain object has been
        attached to the destination hypervisor, and every subsequent
        CPU charge, I/O and memory update from the tier must land on
        the destination server's scheduler, backends and ledgers.
        In-flight services keep the *accounting* they opened against
        the source (their charges landed when service started); their
        remaining durations are handled separately by the migration's
        ``rescale`` hook through :meth:`rescale_in_flight`.
        """
        self._bind(hypervisor)

    def cpu_time(self, cycles: float) -> float:
        return self.hypervisor.cpu_time(self.domain, cycles)

    def pure_cpu_time(self, cycles: float) -> float:
        return self.hypervisor.server.cpu.service_time(cycles)

    def charge_cpu(self, cycles: float) -> None:
        self.hypervisor.charge_vm_cycles(self.domain, cycles)

    def account_request(self, scale: float = 1.0) -> None:
        self.hypervisor.account_request(self.domain, scale)

    def account_commit(self) -> None:
        self.hypervisor.account_commit(self.domain)

    def disk_read(self, size_bytes: float) -> float:
        return self.hypervisor.disk_read(self.domain, size_bytes)

    def disk_write(self, size_bytes: float) -> float:
        return self.hypervisor.disk_write(self.domain, size_bytes)

    def net_receive(self, size_bytes: float) -> float:
        return self.hypervisor.net_receive(self.domain, size_bytes)

    def net_transmit(self, size_bytes: float) -> float:
        return self.hypervisor.net_transmit(self.domain, size_bytes)

    def set_memory(self, used_bytes: float) -> None:
        self.hypervisor.set_vm_memory(self.domain, used_bytes)

    def memory_used(self) -> float:
        return self.hypervisor.vm_memory_used(self.domain)

    def cpu_cycles_total(self) -> float:
        return self.hypervisor.server.cpu.ledger.total(self.owner)

    def disk_bytes_total(self) -> float:
        return self.hypervisor.block_backend.vm_total_bytes(self.owner)

    def net_bytes_total(self) -> float:
        return self.hypervisor.net_backend.vm_total_bytes(self.owner)

    def worker_started(self) -> None:
        self.domain.worker_started()

    def worker_finished(self) -> None:
        self.domain.worker_finished()


@dataclass
class OsActivityModel:
    """Background activity of a bare-metal host OS.

    Keeps the non-virtualized sysstat series honest: a real host never
    shows zero cycles or zero disk traffic even when the application is
    idle (cron, journald, kernel threads).
    """

    base_cycles_per_s: float = 3.0e6
    syscall_cycles_per_request: float = 2_000.0
    #: Host cycles per database commit (direct fsync, no hypervisor hop).
    commit_cycles: float = 60_000.0
    log_bytes_per_s: float = 8_000.0
    os_base_memory_bytes: float = 450.0 * MB
    #: Host-visible disk bytes per logical byte (journal + metadata show
    #: up in the host's own sysstat on bare metal; in the virtualized
    #: environment they land in dom0 instead of the guest counters).
    disk_accounting_factor: float = 1.55
    #: Host-visible network bytes per logical byte (frame overheads).
    net_accounting_factor: float = 1.04

    def __post_init__(self) -> None:
        if self.disk_accounting_factor < 1.0 or self.net_accounting_factor < 1.0:
            raise ConfigurationError("accounting factors must be >= 1")
        for name in (
            "base_cycles_per_s",
            "syscall_cycles_per_request",
            "commit_cycles",
            "log_bytes_per_s",
            "os_base_memory_bytes",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


class BareMetalContext(ExecutionContext):
    """Execution directly on a physical server (the non-virt environment).

    Writes are *not* batched: each logical write hits the device
    individually, which is the mechanism behind the higher disk variance
    the paper reports for bare metal (finding Q4).
    """

    HOUSEKEEPING_INTERVAL_S = 1.0

    def __init__(
        self,
        sim: Simulator,
        server: PhysicalServer,
        owner: str,
        os_model: OsActivityModel = None,
    ) -> None:
        self.sim = sim
        self.server = server
        self.owner = owner
        self.os_model = os_model or OsActivityModel()
        # Same prebound fast path as VirtualizedContext.charge_cpu.
        self.charge_cpu = partial(server.cpu.ledger.charge, owner)
        self._housekeeping = PeriodicProcess(
            sim,
            self.HOUSEKEEPING_INTERVAL_S,
            self._run_housekeeping,
            name=f"os-housekeeping:{owner}",
        ).start()

    def cpu_time(self, cycles: float) -> float:
        return self.server.cpu.service_time(cycles)

    def pure_cpu_time(self, cycles: float) -> float:
        # No hypervisor: bare-metal service already runs uncontended.
        return self.server.cpu.service_time(cycles)

    def charge_cpu(self, cycles: float) -> None:
        self.server.cpu.charge(self.owner, cycles)

    def account_request(self, scale: float = 1.0) -> None:
        self.server.cpu.charge(
            self.owner, self.os_model.syscall_cycles_per_request * scale
        )

    def account_commit(self) -> None:
        self.server.cpu.charge(self.owner, self.os_model.commit_cycles)

    def disk_read(self, size_bytes: float) -> float:
        physical = size_bytes * self.os_model.disk_accounting_factor
        request = DiskRequest(self.owner, "read", physical)
        return self.server.disk.submit(self.sim.now, request)

    def disk_write(self, size_bytes: float) -> float:
        physical = size_bytes * self.os_model.disk_accounting_factor
        request = DiskRequest(self.owner, "write", physical)
        return self.server.disk.submit(self.sim.now, request)

    def net_receive(self, size_bytes: float) -> float:
        physical = size_bytes * self.os_model.net_accounting_factor
        return self.server.nic.receive(self.sim.now, self.owner, physical)

    def net_transmit(self, size_bytes: float) -> float:
        physical = size_bytes * self.os_model.net_accounting_factor
        return self.server.nic.transmit(self.sim.now, self.owner, physical)

    def set_memory(self, used_bytes: float) -> None:
        self.server.memory.set_usage(self.owner, used_bytes)

    def memory_used(self) -> float:
        return self.server.memory.usage(self.owner)

    def cpu_cycles_total(self) -> float:
        return self.server.cpu.ledger.total(self.owner)

    def disk_bytes_total(self) -> float:
        return self.server.disk.total_bytes(self.owner)

    def net_bytes_total(self) -> float:
        return self.server.nic.total_bytes(self.owner)

    def _run_housekeeping(self, tick_time: float) -> None:
        self.server.cpu.charge(
            self.owner,
            self.os_model.base_cycles_per_s * self.HOUSEKEEPING_INTERVAL_S,
        )
        log_bytes = self.os_model.log_bytes_per_s * self.HOUSEKEEPING_INTERVAL_S
        if log_bytes > 0:
            self.disk_write(log_bytes)

    def shutdown(self) -> None:
        self._housekeeping.stop()
