"""Command-line interface.

Four subcommands cover the library's headline workflows::

    python -m repro run --environment virtualized --composition browsing \
        --duration 120 --export-csv traces.csv
    python -m repro run --traffic poisson --rate 500 --duration 120
    python -m repro run --traffic trace:access.log --session-budget 2000
    python -m repro run --list
    python -m repro run --scenario consolidated_web_batch
    python -m repro run --scenario autoscaled_flash_crowd --controller pid
    python -m repro sweep --grid paper --workers 4
    python -m repro sweep --controllers static,threshold --table
    python -m repro compare --duration 240
    python -m repro table1

``run`` executes one scenario and prints the characterization report;
``--traffic`` swaps the closed-loop client population for an open-loop
arrival stream (``poisson``, ``mmpp``, ``bmodel`` or ``trace:<path>``
where the path may be CSV, NPZ or a Common/Combined Log Format access
log), ``--scale`` stress-multiplies horizon and clients, ``--columnar``
collects the full 518-metric registry into per-metric arrays
(exportable with ``--export-columnar``), ``--list`` prints the named
scenario catalogue and ``--scenario`` runs a catalogue entry (including
the consolidated multi-tenant runs and the autoscaled elasticity
experiments), ``--controller`` attaches an elastic-control policy
that resizes the web VMs mid-run, and ``--faults`` injects a
deterministic fault schedule (server crash, degraded NIC/disk,
cap theft, dom0 saturation, traffic anomalies).  ``sweep`` executes a
whole scenario grid across worker processes with deterministic
per-run seeds; ``--controllers`` grids over scaling policies,
``--faults`` grids over fault schedules, ``--table`` prints the
aggregate ratio table over the merged results and ``--diagnose``
turns a faulted sweep into a chaos sweep that prints the policy
ranking table.  ``diagnose`` runs one scenario observed and prints
the run manifest, detected SLO incidents and ranked root-cause
attribution (``repro run --diagnose`` appends the same report to a
normal run).  ``trace`` runs one scenario with deterministic request
sampling (``repro run --trace-sample`` works too) and prints the
latency-anatomy table, the p99-vs-median tail attribution and the
slowest sampled span trees; ``--export-chrome-trace`` writes
Chrome-``trace_event`` JSON for chrome://tracing / Perfetto.
``compare`` reproduces the paper's Section 4.1/4.2
comparison (the four ratio tables plus the Q1-Q5 findings);
``table1`` prints the metric catalogue sample.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.characterize import characterize_trace_set
from repro.analysis.report import (
    render_characterization_report,
    render_ratio_table,
)
from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.experiments.compare import compare_with_paper, qualitative_checks
from repro.experiments.runner import run_scenario, run_scenario_cached
from repro.experiments.scenarios import scenario, scenario_catalog
from repro.experiments.suite import (
    TENANT_MIXES,
    paper_matrix_suite,
    render_suite_ratio_table,
    run_suite,
    suite_grid,
)
from repro.experiments.tables import render_table1
from repro.monitoring.export import (
    write_annotations_jsonl,
    write_columnar_csv,
    write_columnar_npz,
    write_request_traces_chrome_json,
    write_request_traces_jsonl,
    write_trace_csv,
    write_trace_json,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Characterizing Workload of Web Applications "
            "on Virtualized Servers' (Wang et al., 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="print the named scenario catalogue and exit",
    )
    run_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run a catalogue entry by name (see --list); honours "
             "--duration/--seed/--clients and rejects the remaining "
             "shaping flags (--traffic/--scale/...)",
    )
    run_parser.add_argument(
        "--environment", default="virtualized",
        choices=("virtualized", "bare-metal"),
    )
    run_parser.add_argument("--composition", default="browsing")
    run_parser.add_argument("--duration", type=float, default=None,
                            help="simulated seconds (default 240)")
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument("--clients", type=int, default=None)
    run_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="stress multiplier on horizon and clients (default 1)",
    )
    run_parser.add_argument(
        "--traffic", default="closed", metavar="KIND",
        help="traffic driver: closed (default), poisson, mmpp, bmodel "
             "or trace:<path>",
    )
    run_parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="open-loop base request rate (default: clients/think_time)",
    )
    run_parser.add_argument(
        "--session-budget", type=int, default=None, metavar="N",
        help="open-loop concurrent-session cap (arrivals beyond it are "
             "shed and reported)",
    )
    run_parser.add_argument(
        "--engine", default="classic", choices=("classic", "batched"),
        help="request engine: 'classic' (event-per-hop, the bit-stable "
             "default) or 'batched' (array-native cohort engine; "
             "equivalent in distribution, not bitwise — see "
             "PERFORMANCE.md)",
    )
    run_parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="profile the run loop with cProfile and dump the pstats "
             "data to FILE (inspect with `python -m pstats FILE`)",
    )
    run_parser.add_argument(
        "--controller", default="none",
        choices=("none", "static", "threshold", "pid", "predictive"),
        help="elastic-control policy resizing the web VMs mid-run "
             "(static = apply the initial sizing, never act); composes "
             "with --scenario by swapping the catalogue entry's policy",
    )
    run_parser.add_argument(
        "--servers", type=int, default=1, metavar="N",
        help="physical servers in the fleet (>1 places VMs across "
             "servers through the placement engine)",
    )
    run_parser.add_argument(
        "--placement", default=None,
        choices=("firstfit", "bestfit", "balance", "priority"),
        help="placement policy assigning VMs to servers "
             "(default: firstfit; only meaningful with --servers > 1)",
    )
    run_parser.add_argument(
        "--faults", default=None, metavar="SCHEDULE",
        help="inject faults mid-run: '+'-joined "
             "kind@at[:duration[:magnitude]][/target] entries, e.g. "
             "crash@60 or cap_theft@40:30:0.1/web-vm "
             "(kinds: crash, degrade_disk, degrade_nic, cap_theft, "
             "dom0_saturate, bot_flood, flash_crowd)",
    )
    run_parser.add_argument(
        "--columnar", action="store_true",
        help="collect the full 518-metric registry as per-metric arrays",
    )
    run_parser.add_argument(
        "--export-columnar", default=None, metavar="PATH",
        help="write the columnar samples to PATH (.csv or .npz; "
             "requires --columnar)",
    )
    run_parser.add_argument("--export-csv", default=None, metavar="PATH")
    run_parser.add_argument("--export-json", default=None, metavar="PATH")
    run_parser.add_argument(
        "--no-report", action="store_true",
        help="skip the characterization report",
    )
    run_parser.add_argument(
        "--diagnose", action="store_true",
        help="observe the run (annotation stream + SLO probe) and "
             "print the run manifest, detected incidents and ranked "
             "root-cause attribution",
    )
    run_parser.add_argument(
        "--slo-ms", type=float, default=100.0, metavar="MS",
        help="p95 SLO threshold for incident detection (default 100)",
    )
    run_parser.add_argument(
        "--export-annotations", default=None, metavar="PATH",
        help="write the annotation stream as JSON Lines (implies "
             "observation)",
    )
    run_parser.add_argument(
        "--trace-sample", type=float, default=0.0, metavar="RATE",
        help="sample this fraction of requests into span trees "
             "(deterministic, RNG-free; 0 = off, the default); "
             "composes with --scenario and either engine",
    )
    run_parser.add_argument(
        "--export-traces", default=None, metavar="PATH",
        help="write the sampled request traces as JSON Lines "
             "(requires --trace-sample > 0)",
    )
    run_parser.add_argument(
        "--export-chrome-trace", default=None, metavar="PATH",
        help="write the sampled request traces as Chrome trace_event "
             "JSON for chrome://tracing / Perfetto (requires "
             "--trace-sample > 0)",
    )
    run_parser.add_argument(
        "--fleet", default=None, metavar="NAME",
        help="run a sharded fleet scenario instead of one testbed "
             "('list' prints the fleet catalogue); honours --seed and "
             "--shards and rejects the single-run shaping flags",
    )
    run_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker processes for --fleet (1 = inline; results are "
             "bit-identical across shard counts)",
    )
    run_parser.add_argument(
        "--quick-fleet", action="store_true",
        help="shrink the datacenter fleet for smoke runs (fewer pods, "
             "shorter horizon); only meaningful with --fleet",
    )

    sweep_parser = sub.add_parser(
        "sweep",
        help="run a scenario grid across worker processes",
    )
    sweep_parser.add_argument(
        "--grid", default=None, choices=("paper", "quick"),
        help="preset grid: 'paper' = the 4-run published matrix, "
             "'quick' = a 2-run CI smoke grid; omit to build the grid "
             "from the axis flags below",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes (1 = inline, no subprocesses)",
    )
    sweep_parser.add_argument("--duration", type=float, default=None)
    sweep_parser.add_argument("--seed", type=int, default=42)
    sweep_parser.add_argument("--clients", type=int, default=None)
    sweep_parser.add_argument(
        "--environments", default="virtualized",
        help="comma-separated grid axis (default: virtualized)",
    )
    sweep_parser.add_argument(
        "--compositions", default="browsing",
        help="comma-separated grid axis (default: browsing)",
    )
    sweep_parser.add_argument(
        "--traffics", default="closed",
        help="comma-separated traffic axis: closed, poisson, mmpp, "
             "bmodel or trace:<path> (default: closed)",
    )
    sweep_parser.add_argument(
        "--scales", default="1",
        help="comma-separated stress-scale axis (default: 1)",
    )
    sweep_parser.add_argument(
        "--tenant-mixes", default="none",
        help=f"comma-separated tenant-mix axis: "
             f"{sorted(TENANT_MIXES)} (default: none)",
    )
    sweep_parser.add_argument(
        "--controllers", default="none",
        help="comma-separated elastic-control axis: none, static, "
             "threshold, pid or predictive (default: none)",
    )
    sweep_parser.add_argument(
        "--servers", default="1",
        help="comma-separated fleet-size axis (default: 1)",
    )
    sweep_parser.add_argument(
        "--placement", default=None,
        choices=("firstfit", "bestfit", "balance", "priority"),
        help="placement policy for multi-server cells "
             "(default: firstfit)",
    )
    sweep_parser.add_argument(
        "--placements", default=None, metavar="POLICIES",
        help="comma-separated placement-policy axis for multi-server "
             "cells (firstfit, bestfit, balance, priority); mutually "
             "exclusive with --placement",
    )
    sweep_parser.add_argument(
        "--faults", default="none",
        help="comma-separated fault-schedule axis; each entry is a "
             "'+'-joined kind@at[:duration[:magnitude]][/target] "
             "schedule or 'none' for the fault-free cell "
             "(default: none)",
    )
    sweep_parser.add_argument(
        "--engines", default="classic",
        help="comma-separated request-engine axis: classic, batched "
             "(default: classic); composes with --grid presets",
    )
    sweep_parser.add_argument(
        "--figures", default=None, metavar="DIR",
        help="render the aggregate ratio table as figures into DIR "
             "(matplotlib PNGs, or text panels when matplotlib is "
             "unavailable)",
    )
    sweep_parser.add_argument(
        "--table", action="store_true",
        help="print the aggregate ratio table (every run vs. the "
             "first run) after the suite report",
    )
    sweep_parser.add_argument(
        "--diagnose", action="store_true",
        help="chaos sweep: run faulted cells observed, diagnose each "
             "and print the policy ranking table (recovery time, "
             "SLO-violation width, $/kilorequest, attribution "
             "precision@1)",
    )
    sweep_parser.add_argument(
        "--slo-ms", type=float, default=100.0, metavar="MS",
        help="p95 SLO threshold the diagnoses grade against "
             "(default 100)",
    )
    sweep_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the merged suite report as JSON",
    )

    diagnose_parser = sub.add_parser(
        "diagnose",
        help="run one scenario observed and print the diagnosis report",
    )
    diagnose_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="catalogue entry to diagnose (see `repro run --list`); "
             "omit to build the run from the flags below",
    )
    diagnose_parser.add_argument(
        "--environment", default="virtualized",
        choices=("virtualized", "bare-metal"),
    )
    diagnose_parser.add_argument("--composition", default="browsing")
    diagnose_parser.add_argument("--duration", type=float, default=None)
    diagnose_parser.add_argument("--seed", type=int, default=42)
    diagnose_parser.add_argument("--clients", type=int, default=None)
    diagnose_parser.add_argument(
        "--controller", default="none",
        choices=("none", "static", "threshold", "pid", "predictive"),
    )
    diagnose_parser.add_argument(
        "--servers", type=int, default=1, metavar="N",
    )
    diagnose_parser.add_argument(
        "--placement", default=None,
        choices=("firstfit", "bestfit", "balance", "priority"),
    )
    diagnose_parser.add_argument(
        "--faults", default=None, metavar="SCHEDULE",
        help="fault schedule to inject (same syntax as `repro run`)",
    )
    diagnose_parser.add_argument(
        "--slo-ms", type=float, default=100.0, metavar="MS",
        help="p95 SLO threshold for incident detection (default 100)",
    )
    diagnose_parser.add_argument(
        "--export-annotations", default=None, metavar="PATH",
        help="write the annotation stream as JSON Lines",
    )
    diagnose_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the manifest + diagnoses as JSON",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="run one scenario with request tracing and print the "
             "latency anatomy",
    )
    trace_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="catalogue entry to trace (see `repro run --list`); omit "
             "to build the run from the flags below",
    )
    trace_parser.add_argument(
        "--environment", default="virtualized",
        choices=("virtualized", "bare-metal"),
    )
    trace_parser.add_argument("--composition", default="browsing")
    trace_parser.add_argument("--duration", type=float, default=None)
    trace_parser.add_argument("--seed", type=int, default=42)
    trace_parser.add_argument("--clients", type=int, default=None)
    trace_parser.add_argument(
        "--engine", default="classic", choices=("classic", "batched"),
        help="request engine to trace (both produce the same span "
             "schema)",
    )
    trace_parser.add_argument(
        "--faults", default=None, metavar="SCHEDULE",
        help="fault schedule to inject (same syntax as `repro run`)",
    )
    trace_parser.add_argument(
        "--sample", type=float, default=0.05, metavar="RATE",
        help="request sampling rate (default 0.05)",
    )
    trace_parser.add_argument(
        "--tail", type=float, default=99.0, metavar="P",
        help="tail percentile attributed against the median "
             "(default 99)",
    )
    trace_parser.add_argument(
        "--slowest", type=int, default=3, metavar="N",
        help="print the N slowest sampled requests span by span "
             "(default 3)",
    )
    trace_parser.add_argument(
        "--export-traces", default=None, metavar="PATH",
        help="write the sampled request traces as JSON Lines",
    )
    trace_parser.add_argument(
        "--export-chrome-trace", default=None, metavar="PATH",
        help="write the sampled request traces as Chrome trace_event "
             "JSON",
    )

    compare_parser = sub.add_parser(
        "compare", help="reproduce the paper's cross-environment comparison"
    )
    compare_parser.add_argument("--duration", type=float, default=240.0)
    compare_parser.add_argument("--seed", type=int, default=42)

    sub.add_parser("table1", help="print the Table 1 metric sample")
    return parser


def _render_diagnosis(result, slo_ms: float) -> str:
    """Manifest + incidents + ranked causes for one observed run."""
    from repro.obs import (
        build_manifest,
        diagnose,
        grade_attribution,
        render_manifest,
    )

    diagnoses = diagnose(result, slo_ms=slo_ms)
    lines = [render_manifest(build_manifest(result)), ""]
    if not diagnoses:
        lines.append(
            f"no incidents: p95 stayed within the {slo_ms:g} ms SLO"
        )
    for entry in diagnoses:
        incident = entry.incident
        lines.append(
            f"incident [{incident.entity}] "
            f"{incident.start_s:.0f}-{incident.end_s:.0f}s: p95 peaked "
            f"{incident.peak_ms:.0f} ms over the {slo_ms:g} ms SLO "
            f"({incident.samples} samples, {incident.width_s:.0f}s in "
            f"violation)"
        )
        if not entry.causes:
            lines.append("  no candidate causes in the lookback window")
        for rank, cause in enumerate(entry.causes[:5], start=1):
            annotation = cause.annotation
            what = annotation.payload.get("fault") or annotation.kind
            target = (
                annotation.payload.get("target")
                or annotation.domain
                or annotation.server
            )
            lines.append(
                f"  #{rank} score {cause.score:.3f}  {what} "
                f"[{annotation.channel}] on {target or 'n/a'} at "
                f"t={annotation.time_s:.1f}s ({annotation.source})"
            )
            for evidence in cause.evidence:
                lines.append(f"      - {evidence}")
        for trace in entry.exemplars:
            slow = max(trace.spans, key=lambda s: s.duration_s)
            lines.append(
                f"  exemplar: session {trace.session_id} seq "
                f"{trace.seq} {trace.interaction!r} took "
                f"{trace.total_s * 1e3:.1f} ms "
                f"({slow.name} {slow.duration_s * 1e3:.1f} ms)"
            )
    if (result.control_reports or {}).get("faults"):
        grade = grade_attribution(result, diagnoses)
        lines.append(
            f"attribution vs schedule: "
            f"{grade['correct']}/{grade['faults']} correct "
            f"(precision@1 {grade['precision_at_1']:.2f})"
        )
    return "\n".join(lines)


def _render_trace_report(result, tail: float, slowest: int) -> str:
    """Latency anatomy + tail attribution + slowest span trees."""
    from repro.obs.tracing import (
        latency_anatomy,
        render_anatomy,
        render_tail_attribution,
        render_trace,
        slowest_traces,
        tail_attribution,
    )

    traces = result.request_traces
    if not traces:
        return "no requests sampled (rate too low for this run length?)"
    lines = [render_anatomy(latency_anatomy(traces, percentiles=(50.0, 95.0, tail)))]
    if len(traces) >= 10:
        lines.append("")
        lines.append(
            render_tail_attribution(
                tail_attribution(traces, tail_percentile=tail)
            )
        )
    for trace in slowest_traces(traces, slowest):
        lines.append("")
        lines.append(render_trace(trace))
    return "\n".join(lines)


def _cmd_fleet(args: argparse.Namespace) -> int:
    """``repro run --fleet``: the sharded fleet-of-fleets path."""
    from repro.shard import fleet_catalog, run_fleet

    conflicting = {
        "--scenario": args.scenario is not None,
        "--environment": args.environment != "virtualized",
        "--composition": args.composition != "browsing",
        "--duration": args.duration is not None,
        "--clients": args.clients is not None,
        "--scale": args.scale != 1.0,
        "--traffic": args.traffic != "closed",
        "--rate": args.rate is not None,
        "--session-budget": args.session_budget is not None,
        "--engine": args.engine != "classic",
        "--controller": args.controller != "none",
        "--servers": args.servers != 1,
        "--placement": args.placement is not None,
        "--faults": args.faults is not None,
        "--columnar": args.columnar,
        "--trace-sample": args.trace_sample > 0.0,
        "--diagnose": args.diagnose,
        "--profile": args.profile is not None,
        "--export-csv": args.export_csv is not None,
    }
    rejected = [flag for flag, given in conflicting.items() if given]
    if rejected:
        raise ConfigurationError(
            f"--fleet is incompatible with {', '.join(rejected)}; a "
            "fleet scenario defines its own pods, horizon and faults"
        )
    catalog = fleet_catalog(seed=args.seed, quick=args.quick_fleet)
    if args.fleet == "list":
        for name, fleet in catalog.items():
            print(
                f"{name:<24s} {len(fleet.pods)} pods / "
                f"{fleet.server_count()} servers / "
                f"{fleet.vm_count()} VMs  {fleet.description}"
            )
        return 0
    if args.fleet not in catalog:
        raise ConfigurationError(
            f"unknown fleet {args.fleet!r}; "
            "see `repro run --fleet list` for the catalogue"
        )
    fleet = catalog[args.fleet]
    shards = args.shards if args.shards is not None else 1
    print(
        f"running fleet {fleet.name}: {len(fleet.pods)} pods / "
        f"{fleet.server_count()} servers / {fleet.vm_count()} VMs on "
        f"{shards} shard(s), {fleet.duration_s:.0f}s simulated",
        file=sys.stderr,
    )
    result = run_fleet(fleet, shards=shards)
    print(result.render())
    if args.export_json:
        with open(args.export_json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        print(
            f"fleet report written to {args.export_json}",
            file=sys.stderr,
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.shards is not None and args.fleet is None:
        raise ConfigurationError("--shards requires --fleet")
    if args.quick_fleet and args.fleet is None:
        raise ConfigurationError("--quick-fleet requires --fleet")
    if args.fleet is not None:
        return _cmd_fleet(args)
    if args.list_scenarios:
        catalog = scenario_catalog(duration_s=args.duration, seed=args.seed)
        for name, spec in catalog.items():
            kind = "open-loop" if spec.open_loop else "closed-loop"
            if spec.consolidated:
                kind += (
                    " + " + ", ".join(t.name for t in spec.tenants)
                    + " tenant(s)"
                )
            if spec.controller is not None:
                kind += f" + {spec.controller.kind} controller"
            print(f"{name:<40s} {kind}")
        return 0
    if args.export_columnar and not args.columnar:
        raise ConfigurationError("--export-columnar requires --columnar")
    if (
        args.export_traces or args.export_chrome_trace
    ) and args.trace_sample <= 0.0:
        raise ConfigurationError(
            "trace exports require --trace-sample > 0"
        )
    if args.scenario is not None:
        # A catalogue entry fully describes its traffic and shaping, so
        # flags that would silently conflict with it are rejected
        # instead of dropped.
        conflicting = {
            "--environment": args.environment != "virtualized",
            "--composition": args.composition != "browsing",
            "--traffic": args.traffic != "closed",
            "--scale": args.scale != 1.0,
            "--rate": args.rate is not None,
            "--session-budget": args.session_budget is not None,
            "--servers": args.servers != 1,
            "--placement": args.placement is not None,
            "--faults": args.faults is not None,
        }
        rejected = [flag for flag, given in conflicting.items() if given]
        if rejected:
            raise ConfigurationError(
                f"--scenario is incompatible with {', '.join(rejected)}; "
                "the catalogue entry defines its own workload, traffic "
                "and shape"
            )
        catalog = scenario_catalog(
            duration_s=args.duration, seed=args.seed, clients=args.clients
        )
        if args.scenario not in catalog:
            raise ConfigurationError(
                f"unknown scenario {args.scenario!r}; "
                "see `repro run --list` for the catalogue"
            )
        spec = catalog[args.scenario]
        if args.controller != "none":
            # Swap (or attach) the policy while keeping the catalogue
            # entry's capacity bands and thresholds — and rename the
            # run to match, following the factories' convention, so a
            # PID run never reports under a "_static" label.
            from dataclasses import replace as _replace

            from repro.control.spec import ControllerSpec

            if spec.controller is not None:
                controller = _replace(spec.controller, kind=args.controller)
                name = spec.name
                if name.endswith("_static"):
                    name = name[: -len("_static")]
                if args.controller == "static":
                    name += "_static"
            else:
                controller = ControllerSpec.from_kind(args.controller)
                name = f"{spec.name}@{args.controller}"
            spec = _replace(spec, name=name, controller=controller)
    else:
        config = ExperimentConfig(
            environment=args.environment,
            composition=args.composition,
            duration_s=args.duration,
            seed=args.seed,
            clients=args.clients,
            scale=args.scale,
            traffic=args.traffic,
            rate_rps=args.rate,
            session_budget=args.session_budget,
            controller=(
                None if args.controller == "none" else args.controller
            ),
            servers=args.servers,
            placement=args.placement,
            faults=args.faults,
            engine=args.engine,
            trace_sample=args.trace_sample,
            collect_full_registry=args.columnar,
        )
        spec = config.to_scenario()
    if args.scenario is not None and args.engine != "classic":
        # The engine composes with catalogue entries: same workload,
        # same shape, array-native execution.
        from dataclasses import replace as _replace

        spec = _replace(
            spec, name=f"{spec.name}%{args.engine}", engine=args.engine
        )
    if args.scenario is not None and args.trace_sample > 0.0:
        # Tracing composes with catalogue entries too: it observes the
        # run without perturbing it, so the name stays unsuffixed.
        from dataclasses import replace as _replace

        spec = _replace(spec, trace_sample=args.trace_sample)
    if spec.open_loop:
        if spec.traffic.kind == "trace" and spec.traffic.rate_rps is None:
            # The replay rate comes from the trace file, not the mix.
            driver_label = (
                f"open-loop replay of {spec.traffic.trace_path}"
            )
        else:
            driver_label = (
                f"open-loop {spec.traffic.kind} @ "
                f"{spec.traffic.effective_rate_rps(spec.mix):.1f} arrivals/s"
            )
    else:
        driver_label = f"{spec.mix.clients} clients closed-loop"
    if spec.consolidated:
        driver_label += (
            " + co-resident " + ", ".join(t.name for t in spec.tenants)
        )
    if spec.controller is not None:
        driver_label += f" + {spec.controller.kind} controller"
    if spec.multi_server:
        driver_label += (
            f" on {spec.servers} servers ({spec.placement} placement)"
        )
    if spec.fleet is not None:
        driver_label += " + fleet controller"
    if spec.faulted:
        driver_label += f" + faults {spec.faults.as_cli_string()}"
    print(
        f"running {spec.name}: {driver_label}, "
        f"{spec.duration_s:.0f}s simulated",
        file=sys.stderr,
    )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    result = run_scenario(
        spec,
        collect_full_registry=args.columnar,
        columnar_rows=args.columnar,
        observe=args.diagnose or args.export_annotations is not None,
    )
    if profiler is not None:
        import pstats

        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler)
        print(
            f"profile written to {args.profile} "
            f"({stats.total_calls} calls, {stats.total_tt:.2f}s); "
            f"inspect with `python -m pstats {args.profile}`",
            file=sys.stderr,
        )
    print(
        f"completed {result.requests_completed} requests "
        f"(X={result.throughput_rps:.1f} req/s, mean response "
        f"{result.mean_response_time_s * 1000:.1f} ms)"
    )
    if result.traffic_report is not None:
        report = result.traffic_report
        duration = spec.duration_s
        print(
            f"open-loop traffic: {report['offered']} arrivals offered "
            f"({report['offered'] / duration:.1f}/s), "
            f"{report['admitted']} admitted, {report['shed']} shed "
            f"({report['shed_fraction']:.1%}); arrival trace sha256 "
            f"{result.arrival_trace.sha256()[:16]}"
        )
    if result.control_reports:
        for entity, report in result.control_reports.items():
            if report.get("kind") == "billing":
                bill = "; ".join(
                    f"{domain}: {caps['capacity_core_s']:.0f} core-s, "
                    f"{caps['memory_gb_s']:.0f} GB-s"
                    for domain, caps in sorted(report["domains"].items())
                )
                print(f"capacity bill: {bill}")
                continue
            if report.get("kind") == "faults":
                plan = "; ".join(
                    f"{entry['fault']}@{entry['inject_at_s']:g}"
                    + (
                        f"-{entry['clear_at_s']:g}"
                        if entry["clear_at_s"] is not None
                        else ""
                    )
                    + (f"/{entry['target']}" if entry["target"] else "")
                    for entry in report["schedule"]
                )
                print(
                    f"{entity} [faults]: {report['injected']} injected, "
                    f"{report['cleared']} cleared ({plan})"
                )
                continue
            if report.get("kind") == "obs":
                by_source = ", ".join(
                    f"{source} x{count}"
                    for source, count in sorted(report["by_source"].items())
                    if count
                ) or "no annotated events"
                print(
                    f"{entity} [obs]: {report['events']} annotations "
                    f"({by_source}) across "
                    f"{len(report['servers'])} server(s)"
                )
                continue
            by_kind = ", ".join(
                f"{kind} x{count}"
                for kind, count in sorted(
                    report["actions_by_kind"].items()
                )
            ) or "no actions"
            if report.get("kind") == "fleet":
                moves = "; ".join(
                    f"{m['domain']}: {m['source']}->{m['dest']} "
                    f"({m['bytes_total'] / 2**30:.2f} GiB, "
                    f"{m['downtime_s'] * 1000:.0f} ms down)"
                    for m in report["migrations"]
                ) or "no migrations"
                print(
                    f"{entity} [fleet]: {report['num_actions']} "
                    f"migration(s) ({by_kind}); {moves}"
                )
                if report.get("failed_servers"):
                    evacs = "; ".join(
                        f"{m['domain']}: {m['source']}->{m['dest']} "
                        f"({m['downtime_s'] * 1000:.0f} ms down)"
                        for m in report["evacuations"]
                    ) or "none completed"
                    print(
                        f"{entity} [fleet]: failed "
                        f"{', '.join(report['failed_servers'])}; "
                        f"forced evacuations: {evacs}"
                    )
                continue
            final = "; ".join(
                f"{domain}: {caps['cap_cores']:g} cores, "
                f"{caps['vcpus']} vcpu, {caps['memory_mb']:.0f} MB"
                for domain, caps in sorted(report["final"].items())
            )
            print(
                f"{entity} [{report['kind']}]: "
                f"{report['num_actions']} control actions ({by_kind}); "
                f"final capacity {final}"
            )
    if result.tenant_reports:
        for name, report in result.tenant_reports.items():
            print(
                f"tenant {name}: {report.get('jobs_completed', 0)}/"
                f"{report.get('jobs_submitted', 0)} jobs, "
                f"{report.get('tasks_completed', 0)} tasks completed"
            )
        ready = (result.interference or {}).get("cpu_ready_s", {})
        if ready:
            readable = ", ".join(
                f"{domain} {seconds:.2f}s"
                for domain, seconds in sorted(ready.items())
            )
            print(f"CPU ready time: {readable}")
    if not args.no_report:
        # Clamp the warm-up so very short runs keep enough samples.
        warmup_s = min(30.0, spec.duration_s / 4.0)
        print()
        print(render_characterization_report(
            characterize_trace_set(result.traces, warmup_s=warmup_s)
        ))
    if args.diagnose:
        print()
        print(_render_diagnosis(result, slo_ms=args.slo_ms))
    if args.export_annotations:
        write_annotations_jsonl(result.annotations, args.export_annotations)
        print(
            f"annotations written to {args.export_annotations}",
            file=sys.stderr,
        )
    if result.request_traces is not None:
        print()
        print(_render_trace_report(result, tail=99.0, slowest=0))
    if args.export_traces:
        write_request_traces_jsonl(result.request_traces, args.export_traces)
        print(
            f"request traces written to {args.export_traces}",
            file=sys.stderr,
        )
    if args.export_chrome_trace:
        write_request_traces_chrome_json(
            result.request_traces, args.export_chrome_trace
        )
        print(
            f"chrome trace written to {args.export_chrome_trace}",
            file=sys.stderr,
        )
    if args.export_csv:
        write_trace_csv(result.traces, args.export_csv)
        print(f"\ntraces written to {args.export_csv}", file=sys.stderr)
    if args.export_json:
        write_trace_json(result.traces, args.export_json)
        print(f"traces written to {args.export_json}", file=sys.stderr)
    if args.columnar and result.columnar is not None:
        print(
            f"columnar samples: {len(result.columnar)} ticks x "
            f"{len(result.columnar.columns)} columns",
            file=sys.stderr,
        )
    if args.export_columnar:
        if args.export_columnar.lower().endswith(".npz"):
            write_columnar_npz(result.columnar, args.export_columnar)
        else:
            write_columnar_csv(result.columnar, args.export_columnar)
        print(
            f"columnar samples written to {args.export_columnar}",
            file=sys.stderr,
        )
    return 0


def _split_axis(text: str) -> list:
    return [token.strip() for token in text.split(",") if token.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.grid is not None:
        # Presets define their own axes; reject flags that would
        # otherwise be silently dropped.
        overridden = {
            "--environments": args.environments != "virtualized",
            "--compositions": args.compositions != "browsing",
            "--traffics": args.traffics != "closed",
            "--scales": args.scales != "1",
            "--tenant-mixes": args.tenant_mixes != "none",
            "--controllers": args.controllers != "none",
            "--servers": args.servers != "1",
            "--placement": args.placement is not None,
            "--placements": args.placements is not None,
            "--faults": args.faults != "none",
        }
        rejected = [flag for flag, given in overridden.items() if given]
        if rejected:
            raise ConfigurationError(
                f"--grid {args.grid} is incompatible with "
                f"{', '.join(rejected)}; presets define their own axes "
                "(omit --grid to build a custom grid)"
            )
    engines = _split_axis(args.engines)
    if args.grid == "paper":
        runs = paper_matrix_suite(
            duration_s=args.duration, seed=args.seed, clients=args.clients,
            engines=engines,
        )
    elif args.grid == "quick":
        # The CI smoke grid: two short virtualized runs.
        runs = suite_grid(
            environments=("virtualized",),
            compositions=("browsing", "bidding"),
            duration_s=args.duration if args.duration is not None else 40.0,
            seed=args.seed,
            clients=args.clients if args.clients is not None else 150,
            engines=engines,
        )
    else:
        if args.placements is not None and args.placement is not None:
            raise ConfigurationError(
                "--placements and --placement are mutually exclusive; "
                "the axis grids over policies, the scalar fixes one"
            )
        placements = None
        if args.placements is not None:
            placements = _split_axis(args.placements)
            known = ("firstfit", "bestfit", "balance", "priority")
            for token in placements:
                if token not in known:
                    raise ConfigurationError(
                        f"unknown placement policy {token!r}; "
                        f"choose from {list(known)}"
                    )
        mixes = []
        for token in _split_axis(args.tenant_mixes):
            if token not in TENANT_MIXES:
                raise ConfigurationError(
                    f"unknown tenant mix {token!r}; "
                    f"choose from {sorted(TENANT_MIXES)}"
                )
            mixes.append(TENANT_MIXES[token])
        runs = suite_grid(
            environments=_split_axis(args.environments),
            compositions=_split_axis(args.compositions),
            traffics=[
                None if token == "closed" else token
                for token in _split_axis(args.traffics)
            ],
            scales=[float(token) for token in _split_axis(args.scales)],
            tenant_mixes=mixes,
            controllers=[
                None if token == "none" else token
                for token in _split_axis(args.controllers)
            ],
            servers=[int(token) for token in _split_axis(args.servers)],
            placement=args.placement,
            placements=placements,
            faults=[
                None if token == "none" else token
                for token in _split_axis(args.faults)
            ],
            engines=engines,
            duration_s=args.duration,
            seed=args.seed,
            clients=args.clients,
        )
    print(
        f"sweeping {len(runs)} runs on {args.workers} worker(s) ...",
        file=sys.stderr,
    )
    suite = run_suite(
        runs,
        workers=args.workers,
        diagnose=args.diagnose,
        slo_ms=args.slo_ms,
    )
    print(suite.render())
    if args.table:
        print()
        print(render_suite_ratio_table(suite))
    if args.diagnose:
        from repro.obs.ranking import render_policy_ranking_table

        print()
        print(render_policy_ranking_table(suite))
    if args.figures:
        from repro.experiments.figures import render_suite_figures

        paths = render_suite_figures(suite, args.figures)
        if args.diagnose:
            from repro.obs.ranking import write_ranking_figures

            paths = list(paths) + write_ranking_figures(suite, args.figures)
        for path in paths:
            print(f"figure written to {path}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(suite.to_dict(), handle, indent=2, sort_keys=True)
        print(f"suite report written to {args.json}", file=sys.stderr)
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        conflicting = {
            "--environment": args.environment != "virtualized",
            "--composition": args.composition != "browsing",
            "--controller": args.controller != "none",
            "--servers": args.servers != 1,
            "--placement": args.placement is not None,
            "--faults": args.faults is not None,
        }
        rejected = [flag for flag, given in conflicting.items() if given]
        if rejected:
            raise ConfigurationError(
                f"--scenario is incompatible with {', '.join(rejected)}; "
                "the catalogue entry defines its own workload and faults"
            )
        catalog = scenario_catalog(
            duration_s=args.duration, seed=args.seed, clients=args.clients
        )
        if args.scenario not in catalog:
            raise ConfigurationError(
                f"unknown scenario {args.scenario!r}; "
                "see `repro run --list` for the catalogue"
            )
        spec = catalog[args.scenario]
    else:
        config = ExperimentConfig(
            environment=args.environment,
            composition=args.composition,
            duration_s=args.duration,
            seed=args.seed,
            clients=args.clients,
            controller=(
                None if args.controller == "none" else args.controller
            ),
            servers=args.servers,
            placement=args.placement,
            faults=args.faults,
        )
        spec = config.to_scenario()
    print(
        f"diagnosing {spec.name}: {spec.duration_s:.0f}s simulated ...",
        file=sys.stderr,
    )
    result = run_scenario(spec, observe=True)
    print(_render_diagnosis(result, slo_ms=args.slo_ms))
    if args.export_annotations:
        write_annotations_jsonl(result.annotations, args.export_annotations)
        print(
            f"annotations written to {args.export_annotations}",
            file=sys.stderr,
        )
    if args.json:
        from repro.obs import build_manifest, diagnose, grade_attribution

        diagnoses = diagnose(result, slo_ms=args.slo_ms)
        document = {
            "slo_ms": args.slo_ms,
            "manifest": build_manifest(result),
            "diagnoses": [entry.to_dict() for entry in diagnoses],
        }
        if (result.control_reports or {}).get("faults"):
            document["grade"] = grade_attribution(result, diagnoses)
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"diagnosis written to {args.json}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from dataclasses import replace as _replace

    if args.sample <= 0.0 or args.sample > 1.0:
        raise ConfigurationError("--sample must be in (0, 1]")
    if args.scenario is not None:
        conflicting = {
            "--environment": args.environment != "virtualized",
            "--composition": args.composition != "browsing",
            "--faults": args.faults is not None,
        }
        rejected = [flag for flag, given in conflicting.items() if given]
        if rejected:
            raise ConfigurationError(
                f"--scenario is incompatible with {', '.join(rejected)}; "
                "the catalogue entry defines its own workload and faults"
            )
        catalog = scenario_catalog(
            duration_s=args.duration, seed=args.seed, clients=args.clients
        )
        if args.scenario not in catalog:
            raise ConfigurationError(
                f"unknown scenario {args.scenario!r}; "
                "see `repro run --list` for the catalogue"
            )
        spec = catalog[args.scenario]
        if args.engine != "classic":
            spec = _replace(
                spec, name=f"{spec.name}%{args.engine}", engine=args.engine
            )
    else:
        config = ExperimentConfig(
            environment=args.environment,
            composition=args.composition,
            duration_s=args.duration,
            seed=args.seed,
            clients=args.clients,
            faults=args.faults,
            engine=args.engine,
        )
        spec = config.to_scenario()
    spec = _replace(spec, trace_sample=args.sample)
    print(
        f"tracing {spec.name}: {spec.duration_s:.0f}s simulated at "
        f"sample rate {args.sample:g} ...",
        file=sys.stderr,
    )
    result = run_scenario(spec)
    traces = result.request_traces or []
    print(
        f"sampled {len(traces)} of {result.requests_completed} requests "
        f"({spec.engine} engine)"
    )
    print()
    print(_render_trace_report(result, tail=args.tail, slowest=args.slowest))
    if args.export_traces:
        write_request_traces_jsonl(traces, args.export_traces)
        print(
            f"request traces written to {args.export_traces}",
            file=sys.stderr,
        )
    if args.export_chrome_trace:
        write_request_traces_chrome_json(traces, args.export_chrome_trace)
        print(
            f"chrome trace written to {args.export_chrome_trace}",
            file=sys.stderr,
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    runs = {}
    for environment in ("virtualized", "bare-metal"):
        for composition in ("browsing", "bidding"):
            spec = scenario(
                environment,
                composition,
                duration_s=args.duration,
                seed=args.seed,
            )
            print(f"running {spec.name} ...", file=sys.stderr)
            runs[(environment, composition)] = run_scenario_cached(spec)
    for report in compare_with_paper(
        runs[("virtualized", "browsing")], runs[("bare-metal", "browsing")]
    ):
        print(render_ratio_table(report))
        print()
    checks = qualitative_checks(
        runs[("virtualized", "browsing")],
        runs[("virtualized", "bidding")],
        runs[("bare-metal", "browsing")],
        runs[("bare-metal", "bidding")],
    )
    for finding, passed in checks.as_dict().items():
        print(f"[{'PASS' if passed else 'FAIL'}] {finding}")
    return 0 if checks.all_pass() else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "table1":
        print(render_table1())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
