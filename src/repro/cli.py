"""Command-line interface.

Three subcommands cover the library's headline workflows::

    python -m repro run --environment virtualized --composition browsing \
        --duration 120 --export-csv traces.csv
    python -m repro compare --duration 240
    python -m repro table1

``run`` executes one scenario and prints the characterization report;
``compare`` reproduces the paper's Section 4.1/4.2 comparison (the four
ratio tables plus the Q1-Q5 findings); ``table1`` prints the metric
catalogue sample.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.characterize import characterize_trace_set
from repro.analysis.report import (
    render_characterization_report,
    render_ratio_table,
)
from repro.config import ExperimentConfig
from repro.experiments.compare import compare_with_paper, qualitative_checks
from repro.experiments.runner import run_scenario, run_scenario_cached
from repro.experiments.scenarios import scenario
from repro.experiments.tables import render_table1
from repro.monitoring.export import write_trace_csv, write_trace_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Characterizing Workload of Web Applications "
            "on Virtualized Servers' (Wang et al., 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument(
        "--environment", default="virtualized",
        choices=("virtualized", "bare-metal"),
    )
    run_parser.add_argument("--composition", default="browsing")
    run_parser.add_argument("--duration", type=float, default=None,
                            help="simulated seconds (default 240)")
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument("--clients", type=int, default=None)
    run_parser.add_argument("--export-csv", default=None, metavar="PATH")
    run_parser.add_argument("--export-json", default=None, metavar="PATH")
    run_parser.add_argument(
        "--no-report", action="store_true",
        help="skip the characterization report",
    )

    compare_parser = sub.add_parser(
        "compare", help="reproduce the paper's cross-environment comparison"
    )
    compare_parser.add_argument("--duration", type=float, default=240.0)
    compare_parser.add_argument("--seed", type=int, default=42)

    sub.add_parser("table1", help="print the Table 1 metric sample")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        environment=args.environment,
        composition=args.composition,
        duration_s=args.duration,
        seed=args.seed,
        clients=args.clients,
    )
    spec = config.to_scenario()
    print(
        f"running {spec.name}: {spec.mix.clients} clients, "
        f"{spec.duration_s:.0f}s simulated",
        file=sys.stderr,
    )
    result = run_scenario(spec)
    print(
        f"completed {result.requests_completed} requests "
        f"(X={result.throughput_rps:.1f} req/s, mean response "
        f"{result.mean_response_time_s * 1000:.1f} ms)"
    )
    if not args.no_report:
        # Clamp the warm-up so very short runs keep enough samples.
        warmup_s = min(30.0, spec.duration_s / 4.0)
        print()
        print(render_characterization_report(
            characterize_trace_set(result.traces, warmup_s=warmup_s)
        ))
    if args.export_csv:
        write_trace_csv(result.traces, args.export_csv)
        print(f"\ntraces written to {args.export_csv}", file=sys.stderr)
    if args.export_json:
        write_trace_json(result.traces, args.export_json)
        print(f"traces written to {args.export_json}", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    runs = {}
    for environment in ("virtualized", "bare-metal"):
        for composition in ("browsing", "bidding"):
            spec = scenario(
                environment,
                composition,
                duration_s=args.duration,
                seed=args.seed,
            )
            print(f"running {spec.name} ...", file=sys.stderr)
            runs[(environment, composition)] = run_scenario_cached(spec)
    for report in compare_with_paper(
        runs[("virtualized", "browsing")], runs[("bare-metal", "browsing")]
    ):
        print(render_ratio_table(report))
        print()
    checks = qualitative_checks(
        runs[("virtualized", "browsing")],
        runs[("virtualized", "bidding")],
        runs[("bare-metal", "browsing")],
        runs[("bare-metal", "bidding")],
    )
    for finding, passed in checks.as_dict().items():
        print(f"[{'PASS' if passed else 'FAIL'}] {finding}")
    return 0 if checks.all_pass() else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "table1":
        print(render_table1())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
