"""Command-line interface.

Three subcommands cover the library's headline workflows::

    python -m repro run --environment virtualized --composition browsing \
        --duration 120 --export-csv traces.csv
    python -m repro run --traffic poisson --rate 500 --duration 120
    python -m repro run --traffic trace:offered.csv --session-budget 2000
    python -m repro compare --duration 240
    python -m repro table1

``run`` executes one scenario and prints the characterization report;
``--traffic`` swaps the closed-loop client population for an open-loop
arrival stream (``poisson``, ``mmpp``, ``bmodel`` or ``trace:<path>``),
``--scale`` stress-multiplies horizon and clients, and ``--columnar``
collects the full 518-metric registry into per-metric arrays
(exportable with ``--export-columnar``).  ``compare`` reproduces the
paper's Section 4.1/4.2 comparison (the four ratio tables plus the
Q1-Q5 findings); ``table1`` prints the metric catalogue sample.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.characterize import characterize_trace_set
from repro.analysis.report import (
    render_characterization_report,
    render_ratio_table,
)
from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.experiments.compare import compare_with_paper, qualitative_checks
from repro.experiments.runner import run_scenario, run_scenario_cached
from repro.experiments.scenarios import scenario
from repro.experiments.tables import render_table1
from repro.monitoring.export import (
    write_columnar_csv,
    write_columnar_npz,
    write_trace_csv,
    write_trace_json,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Characterizing Workload of Web Applications "
            "on Virtualized Servers' (Wang et al., 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument(
        "--environment", default="virtualized",
        choices=("virtualized", "bare-metal"),
    )
    run_parser.add_argument("--composition", default="browsing")
    run_parser.add_argument("--duration", type=float, default=None,
                            help="simulated seconds (default 240)")
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument("--clients", type=int, default=None)
    run_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="stress multiplier on horizon and clients (default 1)",
    )
    run_parser.add_argument(
        "--traffic", default="closed", metavar="KIND",
        help="traffic driver: closed (default), poisson, mmpp, bmodel "
             "or trace:<path>",
    )
    run_parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="open-loop base request rate (default: clients/think_time)",
    )
    run_parser.add_argument(
        "--session-budget", type=int, default=None, metavar="N",
        help="open-loop concurrent-session cap (arrivals beyond it are "
             "shed and reported)",
    )
    run_parser.add_argument(
        "--columnar", action="store_true",
        help="collect the full 518-metric registry as per-metric arrays",
    )
    run_parser.add_argument(
        "--export-columnar", default=None, metavar="PATH",
        help="write the columnar samples to PATH (.csv or .npz; "
             "requires --columnar)",
    )
    run_parser.add_argument("--export-csv", default=None, metavar="PATH")
    run_parser.add_argument("--export-json", default=None, metavar="PATH")
    run_parser.add_argument(
        "--no-report", action="store_true",
        help="skip the characterization report",
    )

    compare_parser = sub.add_parser(
        "compare", help="reproduce the paper's cross-environment comparison"
    )
    compare_parser.add_argument("--duration", type=float, default=240.0)
    compare_parser.add_argument("--seed", type=int, default=42)

    sub.add_parser("table1", help="print the Table 1 metric sample")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.export_columnar and not args.columnar:
        raise ConfigurationError("--export-columnar requires --columnar")
    config = ExperimentConfig(
        environment=args.environment,
        composition=args.composition,
        duration_s=args.duration,
        seed=args.seed,
        clients=args.clients,
        scale=args.scale,
        traffic=args.traffic,
        rate_rps=args.rate,
        session_budget=args.session_budget,
        collect_full_registry=args.columnar,
    )
    spec = config.to_scenario()
    if spec.open_loop:
        if spec.traffic.kind == "trace" and spec.traffic.rate_rps is None:
            # The replay rate comes from the trace file, not the mix.
            driver_label = (
                f"open-loop replay of {spec.traffic.trace_path}"
            )
        else:
            driver_label = (
                f"open-loop {spec.traffic.kind} @ "
                f"{spec.traffic.effective_rate_rps(spec.mix):.1f} arrivals/s"
            )
    else:
        driver_label = f"{spec.mix.clients} clients closed-loop"
    print(
        f"running {spec.name}: {driver_label}, "
        f"{spec.duration_s:.0f}s simulated",
        file=sys.stderr,
    )
    result = run_scenario(
        spec,
        collect_full_registry=args.columnar,
        columnar_rows=args.columnar,
    )
    print(
        f"completed {result.requests_completed} requests "
        f"(X={result.throughput_rps:.1f} req/s, mean response "
        f"{result.mean_response_time_s * 1000:.1f} ms)"
    )
    if result.traffic_report is not None:
        report = result.traffic_report
        duration = spec.duration_s
        print(
            f"open-loop traffic: {report['offered']} arrivals offered "
            f"({report['offered'] / duration:.1f}/s), "
            f"{report['admitted']} admitted, {report['shed']} shed "
            f"({report['shed_fraction']:.1%}); arrival trace sha256 "
            f"{result.arrival_trace.sha256()[:16]}"
        )
    if not args.no_report:
        # Clamp the warm-up so very short runs keep enough samples.
        warmup_s = min(30.0, spec.duration_s / 4.0)
        print()
        print(render_characterization_report(
            characterize_trace_set(result.traces, warmup_s=warmup_s)
        ))
    if args.export_csv:
        write_trace_csv(result.traces, args.export_csv)
        print(f"\ntraces written to {args.export_csv}", file=sys.stderr)
    if args.export_json:
        write_trace_json(result.traces, args.export_json)
        print(f"traces written to {args.export_json}", file=sys.stderr)
    if args.columnar and result.columnar is not None:
        print(
            f"columnar samples: {len(result.columnar)} ticks x "
            f"{len(result.columnar.columns)} columns",
            file=sys.stderr,
        )
    if args.export_columnar:
        if args.export_columnar.lower().endswith(".npz"):
            write_columnar_npz(result.columnar, args.export_columnar)
        else:
            write_columnar_csv(result.columnar, args.export_columnar)
        print(
            f"columnar samples written to {args.export_columnar}",
            file=sys.stderr,
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    runs = {}
    for environment in ("virtualized", "bare-metal"):
        for composition in ("browsing", "bidding"):
            spec = scenario(
                environment,
                composition,
                duration_s=args.duration,
                seed=args.seed,
            )
            print(f"running {spec.name} ...", file=sys.stderr)
            runs[(environment, composition)] = run_scenario_cached(spec)
    for report in compare_with_paper(
        runs[("virtualized", "browsing")], runs[("bare-metal", "browsing")]
    ):
        print(render_ratio_table(report))
        print()
    checks = qualitative_checks(
        runs[("virtualized", "browsing")],
        runs[("virtualized", "bidding")],
        runs[("bare-metal", "browsing")],
        runs[("bare-metal", "bidding")],
    )
    for finding, passed in checks.as_dict().items():
        print(f"[{'PASS' if passed else 'FAIL'}] {finding}")
    return 0 if checks.all_pass() else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "table1":
        print(render_table1())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
