"""The MapReduce batch workload as a co-resident tenant.

Section 5 of the paper names MapReduce as the next workload to
characterize on the same virtualized servers.  This module finally runs
it *inside* the simulated testbed: the tenant's batch VM lives on the
shared hypervisor, map/reduce task CPU executes under the credit
scheduler (tasks raise the domain's worker gauge, so batch demand
contends with the web VMs), and task I/O flows through the same dom0
block/net backends — the interference channels the consolidation
scenarios measure.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.apps.tier import ExecutionContext
from repro.errors import ConfigurationError
from repro.mapreduce.engine import MapReduceCluster
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.workload import JobMix, grep_like_job, sort_like_job
from repro.monitoring.probes import ContextProbe, Probe
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.base import TenantSpec, Workload

#: Fraction of the VM reservation a warmed batch JVM/OS working set
#: occupies (reported by the tenant's memory probe).
BASE_MEMORY_FRACTION = 0.55

_TEMPLATES = {"sort": sort_like_job, "grep": grep_like_job}


class MapReduceWorkload(Workload):
    """A batch tenant: a job mix over worker contexts on shared hardware."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        spec: TenantSpec,
        contexts: Sequence[ExecutionContext],
        horizon_s: float,
    ) -> None:
        if spec.job not in _TEMPLATES:
            raise ConfigurationError(
                f"unknown job template {spec.job!r}; "
                f"known: {sorted(_TEMPLATES)}"
            )
        if horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        self.sim = sim
        self.streams = streams
        self.spec = spec
        self.name = spec.name
        self.contexts = list(contexts)
        self.horizon_s = float(horizon_s)
        template = _TEMPLATES[spec.job](
            input_mb=spec.input_mb, tasks=spec.tasks
        )
        self.cluster = MapReduceCluster(
            sim,
            streams,
            map_slots=spec.map_slots,
            reduce_slots=spec.reduce_slots,
            contexts=self.contexts,
            stream=f"{spec.stream_prefix}.mapreduce",
        )
        self.mix = JobMix(
            [template], arrival_rate_per_s=spec.arrival_rate_per_s
        )
        self.jobs: List[MapReduceJob] = []
        self._started = False

    # -- Workload interface ------------------------------------------------

    def probes(self) -> List[Probe]:
        """One probe per worker context, under the tenant namespace."""
        nodes = self.cluster.nodes  # aligned 1:1 with self.contexts
        if len(nodes) == 1:
            names = [self.name]
        else:
            names = [f"{self.name}-{i}" for i in range(len(nodes))]
        return [
            ContextProbe(
                entity,
                node.context,
                requests_fn=(
                    lambda node=node: float(node.tasks_completed)
                ),
            )
            for entity, node in zip(names, nodes)
        ]

    def start(self) -> None:
        """Warm the working set and schedule the job arrivals."""
        if self._started:
            raise ConfigurationError("workload already started")
        self._started = True
        for context in self.contexts:
            context.set_memory(
                BASE_MEMORY_FRACTION * self.spec.memory_gb * 1024 ** 3
            )
        self.jobs = self.mix.drive(
            self.sim,
            self.cluster,
            self.streams.stream(f"{self.spec.stream_prefix}.jobs"),
            self.horizon_s,
        )

    def shutdown(self) -> None:
        self.cluster.shutdown()

    def summary(self) -> dict:
        """Job/task progress counters plus completed-job makespans."""
        completed = [
            j for j in self.jobs if j.stats.finished_at is not None
        ]
        makespans = [j.stats.makespan_s for j in completed]
        return {
            "kind": "mapreduce",
            "job": self.spec.job,
            "jobs_submitted": len(self.jobs),
            "jobs_completed": len(completed),
            "tasks_completed": self.cluster.tasks_completed,
            "mean_makespan_s": (
                float(sum(makespans) / len(makespans)) if makespans else 0.0
            ),
        }
