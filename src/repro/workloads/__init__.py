"""Workloads: what tenants run inside the simulated testbed.

The :class:`~repro.workloads.base.Workload` protocol packages a
tenant's tiers, load driver, probes (under a per-tenant metric
namespace) and summary reporting.  Two implementations cover the
paper's two application classes:

* :class:`~repro.workloads.rubis.RubisWorkload` — the interactive
  RUBiS deployment with a closed- or open-loop traffic driver,
* :class:`~repro.workloads.mapreduce.MapReduceWorkload` — batch
  MapReduce jobs running inside a VM on the shared hypervisor.

:class:`~repro.workloads.base.TenantSpec` is the declarative,
serializable description of one extra tenant VM;
``build_tenant_workload`` turns a spec plus its VM contexts into the
live workload.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.workloads.ballast import BallastWorkload
from repro.workloads.base import (
    BALLAST,
    JOB_TEMPLATES,
    MAPREDUCE,
    RESERVED_ENTITIES,
    RUBIS,
    WORKLOAD_KINDS,
    TenantSpec,
    Workload,
)
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.rubis import RubisWorkload


def build_tenant_workload(
    sim,
    streams,
    spec: TenantSpec,
    contexts: Sequence,
    horizon_s: float,
) -> Workload:
    """Instantiate the workload a tenant spec describes."""
    if spec.workload == MAPREDUCE:
        return MapReduceWorkload(sim, streams, spec, contexts, horizon_s)
    if spec.workload == BALLAST:
        return BallastWorkload(sim, streams, spec, contexts, horizon_s)
    raise ConfigurationError(
        f"no tenant workload builder for kind {spec.workload!r}"
    )


__all__ = [
    "BALLAST",
    "JOB_TEMPLATES",
    "MAPREDUCE",
    "RESERVED_ENTITIES",
    "RUBIS",
    "WORKLOAD_KINDS",
    "BallastWorkload",
    "MapReduceWorkload",
    "RubisWorkload",
    "TenantSpec",
    "Workload",
    "build_tenant_workload",
]
