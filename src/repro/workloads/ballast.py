"""Ballast tenants: capacity reservations with no load driver.

A datacenter rack is mostly *occupancy*, not activity: the VMs that
matter to a placement decision are often idle reservations holding
cores and memory.  A :class:`BallastWorkload` models exactly that — a
tenant VM that books capacity in the placement engine, accrues a
capacity-second bill like every other domain, and can be capped,
ballooned or live-migrated, but schedules no events, draws no
randomness and exports no probes.

Ballast is what lets fleet scenarios reach 100+ servers / 1000+ VMs:
the simulated event count scales with the *active* tenants while the
placement, billing and optimization problems scale with the whole
fleet.  It is also the only species a *cross-fleet* evacuation ships
(see :mod:`repro.shard`): having no driver, its entire state is its
reservation, so it can leave one fleet's event loop and be re-created
in another's without carrying in-flight work.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.monitoring.probes import Probe
from repro.workloads.base import TenantSpec, Workload


class BallastWorkload(Workload):
    """A reservation-only tenant VM (no events, no probes)."""

    def __init__(
        self,
        sim,
        streams,
        spec: TenantSpec,
        contexts: Sequence,
        horizon_s: float,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.name = spec.name
        self.contexts = list(contexts)
        #: Set when a cross-fleet evacuation shipped this VM away
        #: (``"<fleet>/<server>"``); the summary records the move.
        self.evacuated_to: Optional[str] = None

    def probes(self) -> List[Probe]:
        # No probes: ballast must not widen the metric namespace (the
        # 518-metric registry stays identical with and without it).
        return []

    def start(self) -> None:
        # Nothing to arm — ballast's contribution is its reservation.
        pass

    def shutdown(self) -> None:
        pass

    def mark_evacuated(self, destination: str) -> None:
        """Record that this VM left the fleet (cross-fleet evacuation)."""
        self.evacuated_to = destination

    def summary(self) -> dict:
        return {
            "kind": "ballast",
            "vcpus": self.spec.vcpus,
            "memory_gb": self.spec.memory_gb,
            "evacuated_to": self.evacuated_to,
        }
