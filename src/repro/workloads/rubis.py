"""The RUBiS web workload as a :class:`~repro.workloads.base.Workload`.

This is the paper's interactive tenant: the two-tier RUBiS deployment
plus its traffic driver — the closed-loop client population by default,
or an :class:`~repro.traffic.driver.OpenLoopDriver` when the scenario
carries an open-loop traffic spec.  The wiring (stream names,
construction order, probe entities ``web``/``db``) is exactly the
pre-refactor experiment runner's, so single-tenant scenarios keep
bit-identical traces through the workload abstraction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.monitoring.probes import ContextProbe, Probe
from repro.rubis.batched import BatchedClosedDriver, BatchedOpenDriver
from repro.rubis.client import ClientPopulation
from repro.rubis.deployment import Deployment
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.rubis.workload import SessionType
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.driver import ArrivalMeter, OpenLoopDriver
from repro.traffic.spec import build_driver as build_traffic_driver
from repro.traffic.spec import build_process as build_traffic_process
from repro.workloads.base import Workload


def _metered_send(meter: ArrivalMeter, sim: Simulator, send_fn):
    """Wrap a deployment send function to count offered arrivals."""

    def metered(session, interaction, on_response):
        meter.record(sim.now)
        send_fn(session, interaction, on_response)

    return metered


class RubisWorkload(Workload):
    """RUBiS tiers plus their traffic driver, as one tenant."""

    name = "web"

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        scenario,
        deployment: Deployment,
        meter_arrivals: bool = False,
    ) -> None:
        self.sim = sim
        self.scenario = scenario
        self.deployment = deployment
        matrices = {
            SessionType.BROWSE: browsing_matrix(),
            SessionType.BID: bidding_matrix(),
        }
        traffic = scenario.traffic
        batched = getattr(scenario, "engine", "classic") == "batched"
        self.meter: Optional[ArrivalMeter] = None
        self.tracer = None
        trace_sample = float(getattr(scenario, "trace_sample", 0.0) or 0.0)
        if trace_sample > 0.0:
            # Deferred import: tracing lives in repro.obs, which is not
            # an import-time dependency of the workload layer.
            from repro.obs.tracing import RequestTracer

            self.tracer = RequestTracer(
                scenario.seed,
                trace_sample,
                "batched" if batched else "classic",
            )
        if traffic is not None and traffic.open_loop:
            if batched:
                process = build_traffic_process(
                    traffic,
                    scenario.mix,
                    streams.stream(f"{traffic.stream}.arrivals"),
                )
                self.population = BatchedOpenDriver(
                    sim,
                    scenario.mix,
                    deployment,
                    streams,
                    matrices,
                    process,
                    session_budget=traffic.session_budget,
                    requests_per_session=traffic.requests_per_session,
                    retry_max=traffic.retry_max,
                    retry_backoff_s=traffic.retry_backoff_s,
                    tracer=self.tracer,
                )
            else:
                self.population = build_traffic_driver(
                    traffic,
                    sim,
                    scenario.mix,
                    deployment.send,
                    streams,
                    matrices,
                )
            self.meter = self.population.meter
        elif batched:
            meter = ArrivalMeter() if meter_arrivals else None
            self.population = BatchedClosedDriver(
                sim,
                scenario.mix,
                deployment,
                streams,
                matrices,
                ramp_s=scenario.ramp_s,
                meter=meter,
                tracer=self.tracer,
            )
            self.meter = meter
        else:
            send_fn = deployment.send
            if meter_arrivals:
                self.meter = ArrivalMeter()
                send_fn = _metered_send(self.meter, sim, send_fn)
            self.population = ClientPopulation(
                sim,
                scenario.mix,
                send_fn,
                streams.stream("clients"),
                matrices,
                ramp_s=scenario.ramp_s,
            )
        deployment.population = self.population
        if self.tracer is not None and not batched:
            # Classic engines trace in-band: the deployment stamps a
            # builder onto each sampled request at send time.
            deployment.tracer = self.tracer

    # -- Workload interface ------------------------------------------------

    def probes(self) -> List[Probe]:
        deployment = self.deployment
        return [
            ContextProbe(
                "web",
                deployment.web_context,
                requests_fn=lambda: deployment.php_tier.requests_handled,
            ),
            ContextProbe(
                "db",
                deployment.db_context,
                requests_fn=lambda: (
                    deployment.mysql_tier.station.stats.completions
                ),
            ),
        ]

    def start(self) -> None:
        self.population.start()

    def shutdown(self) -> None:
        self.deployment.shutdown()

    @property
    def stats(self):
        return self.population.stats

    @property
    def open_loop(self) -> bool:
        return isinstance(
            self.population, (OpenLoopDriver, BatchedOpenDriver)
        )

    def summary(self) -> dict:
        stats = self.population.stats
        out = {
            "kind": "rubis",
            "requests_completed": stats.responses_received,
            "mean_response_time_s": stats.mean_response_time_s,
        }
        if self.open_loop:
            out.update(self.population.summary())
        return out
