"""The workload abstraction: what a tenant runs inside the testbed.

The paper characterizes *two* application classes on the same
virtualized servers — an interactive web application (RUBiS) and batch
big-data jobs (the Section 5 MapReduce future work).  A
:class:`Workload` packages everything one tenant contributes to an
experiment run:

* a *driver* (``start()``) that offers load once the simulation runs,
* *probes* under the tenant's own metric namespace (the probe entity
  is the tenant name, so traces and the 518-metric registry columns
  are per-tenant),
* a plain-data ``summary()`` for suite reports,
* ``shutdown()`` to disarm periodic processes at the horizon.

:class:`TenantSpec` is the declarative, hashable description of one
*extra* tenant VM (the web workload is described by the scenario
itself); the :class:`~repro.experiments.testbed.TestbedBuilder` turns a
scenario plus its tenant specs into a live multi-tenant testbed on one
hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.control.spec import ControllerSpec
from repro.errors import ConfigurationError
from repro.monitoring.probes import Probe

#: Workload kinds a TenantSpec may name.
RUBIS = "rubis"
MAPREDUCE = "mapreduce"
#: A capacity-reservation VM: holds CPU/memory bookings but offers no
#: load (see :mod:`repro.workloads.ballast`) — the fill that makes
#: datacenter-density fleets simulable, and the only species a
#: cross-fleet evacuation may ship (no in-flight driver state).
BALLAST = "ballast"
WORKLOAD_KINDS = (RUBIS, MAPREDUCE, BALLAST)

#: Probe entities owned by the web workload and the hypervisor; tenant
#: names must not collide with them.
RESERVED_ENTITIES = ("web", "db", "dom0")

#: MapReduce job templates a TenantSpec may name (see
#: :mod:`repro.mapreduce.workload`).
JOB_TEMPLATES = ("sort", "grep")


class Workload:
    """Interface every tenant workload implements.

    A workload is *attached* to the simulator and testbed at
    construction time (tiers built, domains wired); ``start()`` only
    arms its load driver, mirroring how the closed-loop client
    population separates construction from the first request.
    """

    #: Tenant name; doubles as the metric namespace of the probes.
    name: str = ""

    def probes(self) -> Sequence[Probe]:
        """Monitoring probes under this workload's namespace."""
        raise NotImplementedError

    def start(self) -> None:
        """Arm the load driver (clients, arrival stream, job mix)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Disarm periodic processes at the end of the run."""
        raise NotImplementedError

    def summary(self) -> dict:
        """Plain-data per-tenant report merged into suite results."""
        raise NotImplementedError


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one co-resident tenant VM.

    Hashable plain data so it can ride inside a scenario's cache key
    and serialize through :class:`~repro.config.ExperimentConfig`.
    The default is a shuffle-heavy batch VM sized like a noisy
    neighbour: eight VCPUs worth of map slots on the shared cores plus
    sort-scale I/O through the shared dom0 backends.

    Attributes:
        name: tenant name; the probe entity namespace (``batch``).
        workload: workload kind (currently ``mapreduce``; the web
            workload is described by the scenario itself).
        vcpus: VCPUs of the tenant VM (CPU demand ceiling).
        memory_gb: VM memory reservation in GB.
        weight: credit-scheduler weight (Xen default 256).
        cap_cores: hard CPU cap in cores (0 = uncapped).
        job: MapReduce job template (``sort`` or ``grep``).
        input_mb: input volume per job in MB.
        tasks: map-task count per job.
        arrival_rate_per_s: Poisson job-arrival intensity.
        map_slots / reduce_slots: concurrent task slots in the VM.
        controller: optional per-tenant elastic controller — the
            testbed attaches it to this tenant's own VM (the spec's
            ``domains`` field is replaced with ``<name>-vm``).  With
            ``invert=True`` it becomes a priority-aware throttle: the
            tenant is capped down while the web SLO degrades.
    """

    name: str = "batch"
    workload: str = MAPREDUCE
    vcpus: int = 8
    memory_gb: float = 4.0
    weight: float = 256.0
    cap_cores: float = 0.0
    job: str = "sort"
    input_mb: float = 256.0
    tasks: int = 16
    arrival_rate_per_s: float = 0.05
    map_slots: int = 8
    reduce_slots: int = 4
    controller: Optional[ControllerSpec] = None

    def __post_init__(self) -> None:
        if self.controller is not None and not isinstance(
            self.controller, ControllerSpec
        ):
            object.__setattr__(
                self, "controller", ControllerSpec.from_dict(self.controller)
            )
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.name in RESERVED_ENTITIES:
            raise ConfigurationError(
                f"tenant name {self.name!r} collides with a reserved "
                f"probe entity {RESERVED_ENTITIES}"
            )
        if self.workload not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.workload!r}; "
                f"choose from {WORKLOAD_KINDS}"
            )
        if self.workload == RUBIS:
            raise ConfigurationError(
                "rubis tenants are described by the scenario itself; "
                "TenantSpec currently models batch co-tenants"
            )
        if self.vcpus < 1:
            raise ConfigurationError("vcpus must be >= 1")
        if self.memory_gb <= 0:
            raise ConfigurationError("memory_gb must be positive")
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")
        if self.cap_cores < 0:
            raise ConfigurationError("cap_cores must be >= 0")
        if self.job not in JOB_TEMPLATES:
            raise ConfigurationError(
                f"unknown job template {self.job!r}; "
                f"choose from {JOB_TEMPLATES}"
            )
        if self.input_mb <= 0:
            raise ConfigurationError("input_mb must be positive")
        if self.tasks < 1:
            raise ConfigurationError("tasks must be >= 1")
        if self.arrival_rate_per_s <= 0:
            raise ConfigurationError("arrival_rate_per_s must be positive")
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ConfigurationError("slots must be >= 1")

    @property
    def stream_prefix(self) -> str:
        """Base name of the RNG streams this tenant draws from."""
        return f"tenant.{self.name}"

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        """Reconstruct from a plain dict (config deserialization)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"tenant spec must be an object, got {type(data).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown tenant spec keys: {sorted(unknown)}"
            )
        return cls(**data)
