"""Declarative traffic specifications.

A :class:`TrafficSpec` is the plain-data description of how load is
offered to a deployment — the traffic analogue of
:class:`~repro.experiments.scenarios.Scenario`.  It is a frozen,
hashable dataclass so it can ride inside a scenario's cache key, and it
round-trips through the CLI string syntax
(``closed`` / ``poisson`` / ``mmpp`` / ``bmodel`` / ``trace:<path>``)
that ``repro run --traffic`` accepts.

``build_driver`` turns a spec into a live
:class:`~repro.traffic.driver.OpenLoopDriver` wired to a deployment's
send function; the experiment runner calls it whenever a scenario
carries a non-closed spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rubis.client import SendFn
from repro.rubis.transitions import TransitionMatrix
from repro.rubis.workload import SessionType, WorkloadMix
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.arrivals import (
    ArrivalProcess,
    BModelProcess,
    MMPPProcess,
    ModulatedProcess,
    PoissonProcess,
)
from repro.traffic.driver import OpenLoopDriver
from repro.traffic.shapes import RateShape
from repro.traffic.trace import RateTrace, TraceReplayProcess
from repro.units import SAMPLE_PERIOD_S

CLOSED = "closed"
POISSON = "poisson"
MMPP = "mmpp"
BMODEL = "bmodel"
TRACE = "trace"
TRAFFIC_KINDS = (CLOSED, POISSON, MMPP, BMODEL, TRACE)

#: RNG stream the open-loop machinery draws from by default.  Distinct
#: from "clients" so adding open-loop runs never perturbs closed-loop
#: draws (the engine's A/B-ablation guarantee).
DEFAULT_STREAM = "traffic"


@dataclass(frozen=True)
class TrafficSpec:
    """How load is offered: the driver kind plus its knobs.

    ``rate_rps=None`` means "match the closed-loop long-run intensity"
    (``mix.clients / mix.think_time_s``), which makes open-vs-closed
    comparisons of the same scenario apples-to-apples by default.
    """

    kind: str = CLOSED
    rate_rps: Optional[float] = None
    shape: Optional[RateShape] = None
    trace_path: Optional[str] = None
    trace_column: Optional[str] = None
    session_budget: Optional[int] = None
    requests_per_session: int = 1
    #: Shed-arrival retry policy: a shed visit retries up to
    #: ``retry_max`` times with deterministic exponential backoff
    #: before abandoning (0 = the classic immediate-abandon semantics).
    retry_max: int = 0
    retry_backoff_s: float = 2.0
    #: MMPP defaults: a base regime and a burst regime at
    #: ``mmpp_burst_ratio`` times the base rate, alternating.
    mmpp_burst_ratio: float = 4.0
    mmpp_base_sojourn_s: float = 40.0
    mmpp_burst_sojourn_s: float = 10.0
    #: b-model cascade knobs (see BModelProcess).
    bmodel_bias: float = 0.7
    bmodel_window_s: float = 64.0
    bmodel_levels: int = 6
    #: Base name of the engine RNG streams the driver draws from.  Two
    #: independent streams are derived: ``<stream>.arrivals`` feeds the
    #: arrival process and ``<stream>.sessions`` the per-session draws,
    #: so admission decisions and session behaviour can never perturb
    #: the offered arrival times (the open-loop invariant).
    stream: str = DEFAULT_STREAM

    def __post_init__(self) -> None:
        if self.kind not in TRAFFIC_KINDS:
            raise ConfigurationError(
                f"unknown traffic kind {self.kind!r}; "
                f"choose from {TRAFFIC_KINDS}"
            )
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        if self.kind == TRACE and not self.trace_path:
            raise ConfigurationError("trace traffic needs trace_path")
        if self.kind != TRACE and self.trace_path:
            raise ConfigurationError(
                f"trace_path is only valid with kind={TRACE!r}"
            )
        if self.session_budget is not None and self.session_budget < 1:
            raise ConfigurationError("session_budget must be >= 1")
        if self.requests_per_session < 1:
            raise ConfigurationError("requests_per_session must be >= 1")
        if self.retry_max < 0:
            raise ConfigurationError("retry_max must be >= 0")
        if self.retry_backoff_s <= 0:
            raise ConfigurationError("retry_backoff_s must be positive")
        if self.mmpp_burst_ratio <= 0:
            raise ConfigurationError("mmpp_burst_ratio must be positive")
        if self.mmpp_base_sojourn_s <= 0 or self.mmpp_burst_sojourn_s <= 0:
            raise ConfigurationError("MMPP sojourns must be positive")

    @property
    def open_loop(self) -> bool:
        """True for every kind the OpenLoopDriver serves."""
        return self.kind != CLOSED

    def with_rate(self, rate_rps: float) -> "TrafficSpec":
        """Copy with an explicit base rate."""
        return replace(self, rate_rps=rate_rps)

    def effective_rate_rps(self, mix: WorkloadMix) -> float:
        """The base rate: explicit, or matched to the closed loop."""
        if self.rate_rps is not None:
            return self.rate_rps
        return mix.clients / mix.think_time_s

    # -- CLI syntax --------------------------------------------------------

    def as_cli_string(self) -> str:
        """The ``--traffic`` token this spec corresponds to."""
        if self.kind == TRACE:
            return f"{TRACE}:{self.trace_path}"
        return self.kind

    @classmethod
    def from_cli_string(
        cls,
        text: str,
        rate_rps: Optional[float] = None,
        session_budget: Optional[int] = None,
    ) -> "TrafficSpec":
        """Parse a ``--traffic`` token into a spec.

        Accepted forms: ``closed``, ``poisson``, ``mmpp``, ``bmodel``
        and ``trace:<path>``.
        """
        token = text.strip()
        if token.startswith(f"{TRACE}:"):
            path = token[len(TRACE) + 1 :].strip()
            if not path:
                raise ConfigurationError("trace:<path> needs a path")
            return cls(
                kind=TRACE,
                trace_path=path,
                rate_rps=rate_rps,
                session_budget=session_budget,
            )
        if token == TRACE:
            raise ConfigurationError(
                "trace traffic needs a path: use trace:<path>"
            )
        if token not in TRAFFIC_KINDS:
            raise ConfigurationError(
                f"unknown traffic {text!r}; choose from "
                f"{TRAFFIC_KINDS[:-1]} or trace:<path>"
            )
        return cls(
            kind=token, rate_rps=rate_rps, session_budget=session_budget
        )


def build_process(
    spec: TrafficSpec, mix: WorkloadMix, rng: np.random.Generator
) -> ArrivalProcess:
    """Construct the arrival process a spec describes.

    When the spec carries a shape, the stationary base is built at the
    envelope's peak rate and wrapped in thinning (see
    :class:`~repro.traffic.arrivals.ModulatedProcess`), so the
    *unshaped* base intensity equals ``effective_rate_rps``.
    """
    if not spec.open_loop:
        raise ConfigurationError("closed-loop specs have no arrival process")
    rate = spec.effective_rate_rps(mix)
    boost = spec.shape.max_factor() if spec.shape is not None else 1.0
    if spec.kind == POISSON:
        base: ArrivalProcess = PoissonProcess(rate * boost, rng)
    elif spec.kind == MMPP:
        # Pick the base-regime rate so the *time-averaged* rate over the
        # alternating base/burst cycle equals the requested rate.
        t_base = spec.mmpp_base_sojourn_s
        t_burst = spec.mmpp_burst_sojourn_s
        ratio = spec.mmpp_burst_ratio
        base_rate = (
            rate * boost * (t_base + t_burst)
            / (t_base + ratio * t_burst)
        )
        base = MMPPProcess(
            rates_rps=(base_rate, base_rate * ratio),
            mean_sojourn_s=(t_base, t_burst),
            rng=rng,
        )
    elif spec.kind == BMODEL:
        base = BModelProcess(
            rate * boost,
            rng,
            bias=spec.bmodel_bias,
            window_s=spec.bmodel_window_s,
            levels=spec.bmodel_levels,
        )
    elif spec.kind == TRACE:
        trace = RateTrace.from_file(spec.trace_path, spec.trace_column)
        if spec.rate_rps is not None:
            # Explicit rate rescales the trace to that mean intensity.
            mean = trace.mean_rate_rps()
            if mean <= 0:
                raise ConfigurationError(
                    f"trace {spec.trace_path!r} has zero mean rate; "
                    "cannot rescale"
                )
            trace = trace.scaled(spec.rate_rps / mean)
        if boost != 1.0:
            trace = trace.scaled(boost)
        base = TraceReplayProcess(trace, rng)
    else:  # pragma: no cover - guarded by __post_init__
        raise ConfigurationError(f"unhandled traffic kind {spec.kind!r}")
    if spec.shape is not None:
        return ModulatedProcess(base, spec.shape, rng)
    return base


def build_driver(
    spec: TrafficSpec,
    sim: Simulator,
    mix: WorkloadMix,
    send_fn: SendFn,
    streams: RandomStreams,
    matrices: Dict[SessionType, TransitionMatrix],
    meter_interval_s: float = SAMPLE_PERIOD_S,
) -> OpenLoopDriver:
    """Build the live open-loop driver a spec describes.

    The arrival process and the per-session behaviour draw from two
    independent named streams: the offered arrival times are therefore
    bit-identical across runs that differ only in session budget,
    session length, or anything else downstream of admission.
    """
    process = build_process(spec, mix, streams.stream(f"{spec.stream}.arrivals"))
    return OpenLoopDriver(
        sim,
        mix,
        send_fn,
        streams.stream(f"{spec.stream}.sessions"),
        matrices,
        process,
        session_budget=spec.session_budget,
        requests_per_session=spec.requests_per_session,
        meter_interval_s=meter_interval_s,
        retry_max=spec.retry_max,
        retry_backoff_s=spec.retry_backoff_s,
    )
