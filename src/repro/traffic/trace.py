"""Request-rate traces: ingestion, resampling, replay, fingerprinting.

A :class:`RateTrace` is a piecewise-constant request-rate function —
``rates_rps[i]`` req/s over ``[times_s[i], times_s[i] + interval_s)`` —
the lingua franca between the characterization side (a measured run's
arrival counts), the modeling side (synthetic traces from fitted
models, :mod:`repro.traffic.synthesis`), and the generation side
(:class:`TraceReplayProcess` replays any trace open-loop as a
piecewise-homogeneous Poisson stream).

Traces load from and save to CSV and NPZ.  Both readers also understand
the columnar-matrix exports of :mod:`repro.monitoring.export`
(``write_columnar_csv`` / ``write_columnar_npz``), so any recorded
metric column can be replayed as offered load.  ``sha256`` gives a
stable content fingerprint used by the determinism acceptance checks.
"""

from __future__ import annotations

import calendar
import csv
import hashlib
import re
from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.traffic.arrivals import _BatchedProcess
from repro.units import SAMPLE_PERIOD_S

#: Canonical column names of the native CSV/NPZ layout.
TIME_COLUMN = "time_s"
RATE_COLUMN = "rate_rps"

#: Common/Combined Log Format line: ``host ident user [ts] "req" status
#: size [...]``.  Only the prefix through the status/size is matched, so
#: Combined (referer + user agent) and custom suffixes all parse.
_CLF_LINE_RE = re.compile(
    r'^\S+ \S+ \S+ '
    r'\[(?P<day>\d{2})/(?P<mon>[A-Za-z]{3})/(?P<year>\d{4}):'
    r'(?P<hh>\d{2}):(?P<mm>\d{2}):(?P<ss>\d{2}) '
    r'(?P<tzsign>[+-])(?P<tzh>\d{2})(?P<tzm>\d{2})\] '
    r'"[^"]*" \d{3} (?:\d+|-)'
)

_CLF_MONTHS = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}


def _clf_epoch_s(match: "re.Match") -> float:
    """UTC epoch seconds of one matched CLF timestamp."""
    month = _CLF_MONTHS.get(match.group("mon").lower())
    if month is None:
        raise AnalysisError(
            f"unknown month {match.group('mon')!r} in access-log timestamp"
        )
    naive = calendar.timegm((
        int(match.group("year")),
        month,
        int(match.group("day")),
        int(match.group("hh")),
        int(match.group("mm")),
        int(match.group("ss")),
        0, 0, 0,
    ))
    offset = 3600 * int(match.group("tzh")) + 60 * int(match.group("tzm"))
    if match.group("tzsign") == "-":
        offset = -offset
    return float(naive - offset)


def looks_like_access_log(path: str, probe_lines: int = 5) -> bool:
    """Sniff whether a file's head parses as Common/Combined Log Format.

    Reads one bounded chunk (64 KB) so probing a large binary or
    otherwise newline-free file stays O(1) in time and memory.
    """
    try:
        with open(path, "r", errors="replace") as handle:
            head = handle.read(65536)
    except OSError:
        return False
    for line in head.splitlines():
        line = line.strip()
        if not line:
            continue
        if _CLF_LINE_RE.match(line):
            return True
        probe_lines -= 1
        if probe_lines <= 0:
            return False
    return False


class RateTrace:
    """A uniform-grid, piecewise-constant request-rate trace."""

    __slots__ = ("times_s", "rates_rps", "interval_s")

    def __init__(
        self,
        rates_rps: Sequence[float],
        interval_s: float,
        start_time_s: float = 0.0,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        # Always copy: the trace owns (and freezes) its rates buffer,
        # and must not freeze an array the caller keeps writing to.
        rates = np.array(rates_rps, dtype=float, copy=True)
        if rates.ndim != 1 or rates.size == 0:
            raise ConfigurationError("a rate trace needs >= 1 interval")
        if not np.isfinite(rates).all():
            raise AnalysisError("rate trace contains non-finite values")
        if (rates < 0).any():
            raise AnalysisError("rate trace contains negative rates")
        self.interval_s = float(interval_s)
        self.rates_rps = rates
        self.rates_rps.setflags(write=False)
        times = start_time_s + self.interval_s * np.arange(rates.size)
        times.setflags(write=False)
        self.times_s = times

    # -- basic properties ------------------------------------------------

    def __len__(self) -> int:
        return self.rates_rps.size

    @property
    def start_time_s(self) -> float:
        return float(self.times_s[0])

    @property
    def duration_s(self) -> float:
        return self.interval_s * len(self)

    @property
    def end_time_s(self) -> float:
        return self.start_time_s + self.duration_s

    def mean_rate_rps(self) -> float:
        """Time-averaged request rate."""
        return float(self.rates_rps.mean())

    def total_expected_arrivals(self) -> float:
        """Expected arrival count over the whole trace."""
        return float(self.rates_rps.sum() * self.interval_s)

    def rate_at(self, t: float) -> float:
        """Rate in effect at time ``t`` (0 outside the trace)."""
        index = int((t - self.start_time_s) // self.interval_s)
        if 0 <= index < len(self):
            return float(self.rates_rps[index])
        return 0.0

    # -- transforms -------------------------------------------------------

    def scaled(self, factor: float) -> "RateTrace":
        """A copy with every rate multiplied by ``factor``."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return RateTrace(
            self.rates_rps * factor, self.interval_s, self.start_time_s
        )

    def resample(self, interval_s: float) -> "RateTrace":
        """Volume-conserving resample onto a new uniform grid.

        The cumulative-arrivals curve is linearly interpolated at the
        new interval boundaries and differenced, so the expected total
        arrival count is preserved exactly (up to the trailing partial
        interval, which is padded to cover the full original span).
        """
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        old_bounds = self.start_time_s + self.interval_s * np.arange(
            len(self) + 1
        )
        cumulative = np.concatenate(
            ([0.0], np.cumsum(self.rates_rps * self.interval_s))
        )
        n_new = int(np.ceil(self.duration_s / interval_s))
        new_bounds = self.start_time_s + interval_s * np.arange(n_new + 1)
        new_cumulative = np.interp(new_bounds, old_bounds, cumulative)
        new_rates = np.diff(new_cumulative) / interval_s
        # Interpolation can leave tiny negative dust on zero intervals.
        np.clip(new_rates, 0.0, None, out=new_rates)
        return RateTrace(new_rates, interval_s, self.start_time_s)

    # -- fingerprinting ---------------------------------------------------

    def sha256(self) -> str:
        """Content hash over (interval, start, rates); grid-sensitive."""
        digest = hashlib.sha256()
        digest.update(np.float64(self.interval_s).tobytes())
        digest.update(np.float64(self.start_time_s).tobytes())
        digest.update(self.rates_rps.tobytes())
        return digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RateTrace):
            return NotImplemented
        return (
            self.interval_s == other.interval_s
            and self.start_time_s == other.start_time_s
            and np.array_equal(self.rates_rps, other.rates_rps)
        )

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_counts(
        cls,
        counts: Sequence[float],
        interval_s: float,
        start_time_s: float = 0.0,
    ) -> "RateTrace":
        """Per-interval arrival counts -> per-interval rates."""
        counts = np.asarray(counts, dtype=float)
        return cls(counts / float(interval_s), interval_s, start_time_s)

    # -- serialization ----------------------------------------------------

    def to_csv(self, path: str) -> None:
        """Write the native two-column CSV layout."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([TIME_COLUMN, RATE_COLUMN])
            for t, r in zip(self.times_s, self.rates_rps):
                # 12 significant digits so non-decimal intervals
                # (1/3 s, ...) survive the round trip through text.
                writer.writerow([f"{t:.12g}", f"{r:.9g}"])

    def to_npz(self, path: str) -> None:
        """Write the native NPZ layout (time_s + rate_rps arrays)."""
        np.savez_compressed(
            path,
            **{
                TIME_COLUMN: np.asarray(self.times_s),
                RATE_COLUMN: np.asarray(self.rates_rps),
            },
        )

    @classmethod
    def _from_grid(
        cls, times: np.ndarray, rates: np.ndarray, source: str
    ) -> "RateTrace":
        if times.size != rates.size or times.size == 0:
            raise AnalysisError(f"{source}: empty or misaligned trace")
        if times.size == 1:
            raise AnalysisError(
                f"{source}: need >= 2 samples to infer the interval"
            )
        gaps = np.diff(times)
        interval = float(np.median(gaps))
        if interval <= 0:
            raise AnalysisError(f"{source}: sample times must increase")
        # Permille slack absorbs text-format rounding of the sample
        # times while still rejecting genuinely non-uniform grids.
        if not np.allclose(gaps, interval, rtol=0.0, atol=1e-3 * interval):
            raise AnalysisError(
                f"{source}: trace is not on a uniform time grid"
            )
        return cls(rates, interval, start_time_s=float(times[0]))

    @classmethod
    def from_csv(cls, path: str, column: Optional[str] = None) -> "RateTrace":
        """Load from CSV: the native layout or any wide columnar export.

        ``column`` picks the rate column by header name; by default the
        canonical ``rate_rps`` column is used, falling back to the only
        non-time column when the file has exactly two columns.
        """
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise AnalysisError(f"{path}: empty CSV") from None
            rows = [row for row in reader if row]
        if TIME_COLUMN not in header:
            raise AnalysisError(f"{path}: no {TIME_COLUMN!r} column")
        wanted = column or RATE_COLUMN
        if wanted not in header:
            others = [name for name in header if name != TIME_COLUMN]
            if column is None and len(others) == 1:
                wanted = others[0]
            else:
                raise AnalysisError(
                    f"{path}: no column {wanted!r}; available: {others}"
                )
        t_index = header.index(TIME_COLUMN)
        r_index = header.index(wanted)
        times = np.array([float(row[t_index]) for row in rows])
        rates = np.array([float(row[r_index]) for row in rows])
        return cls._from_grid(times, rates, path)

    @classmethod
    def from_npz(cls, path: str, column: Optional[str] = None) -> "RateTrace":
        """Load from NPZ: the native layout or a columnar-matrix export."""
        with np.load(path, allow_pickle=False) as data:
            if "columns" in data and "matrix" in data:
                names = [str(name) for name in data["columns"]]
                matrix = np.asarray(data["matrix"], dtype=float)
                if TIME_COLUMN not in names:
                    raise AnalysisError(f"{path}: no {TIME_COLUMN!r} column")
                wanted = column or RATE_COLUMN
                if wanted not in names:
                    others = [n for n in names if n != TIME_COLUMN]
                    if column is None and len(others) == 1:
                        wanted = others[0]
                    else:
                        raise AnalysisError(
                            f"{path}: no column {wanted!r} in columnar NPZ"
                        )
                times = matrix[:, names.index(TIME_COLUMN)]
                rates = matrix[:, names.index(wanted)]
                return cls._from_grid(times, rates, path)
            if TIME_COLUMN in data:
                wanted = column or RATE_COLUMN
                if wanted not in data:
                    raise AnalysisError(f"{path}: no array {wanted!r}")
                return cls._from_grid(
                    np.asarray(data[TIME_COLUMN], dtype=float),
                    np.asarray(data[wanted], dtype=float),
                    path,
                )
        raise AnalysisError(f"{path}: unrecognized NPZ trace layout")

    @classmethod
    def from_access_log(
        cls,
        path: str,
        interval_s: float = SAMPLE_PERIOD_S,
        max_invalid_fraction: float = 0.05,
    ) -> "RateTrace":
        """Ingest an HTTP access log (Common/Combined Log Format).

        Request timestamps are binned into ``interval_s`` buckets and
        the counts become a rate trace starting at t=0 (times are
        re-based to the earliest request, so public traces — e.g.
        WorldCup98-style archives — replay on the simulation clock
        directly).  Lines that do not parse as CLF are skipped, but
        more than ``max_invalid_fraction`` of them fails the ingest:
        a mostly-unparseable file is the wrong format, not a noisy log.
        """
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        times = []
        invalid = 0
        with open(path, "r", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                match = _CLF_LINE_RE.match(line)
                if match is None:
                    invalid += 1
                    continue
                times.append(_clf_epoch_s(match))
        if not times:
            raise AnalysisError(
                f"{path}: no Common/Combined Log Format lines found"
            )
        total = len(times) + invalid
        if invalid > max_invalid_fraction * total:
            raise AnalysisError(
                f"{path}: {invalid}/{total} lines are not CLF; "
                "refusing to ingest a mostly-unparseable file"
            )
        stamps = np.asarray(times, dtype=float)
        stamps -= stamps.min()
        indices = (stamps // interval_s).astype(np.int64)
        counts = np.bincount(indices)
        return cls.from_counts(counts, interval_s)

    @classmethod
    def from_file(cls, path: str, column: Optional[str] = None) -> "RateTrace":
        """Dispatch on file extension, sniffing access logs.

        ``.csv`` / ``.npz`` load the native (or columnar-export)
        layouts; anything else — ``.log``, extension-less paths — is
        probed for Common/Combined Log Format and ingested with
        :meth:`from_access_log`, so ``--traffic trace:<access.log>``
        replays a real web server's offered load with no conversion
        step.
        """
        lowered = path.lower()
        if lowered.endswith(".csv"):
            return cls.from_csv(path, column)
        if lowered.endswith(".npz"):
            return cls.from_npz(path, column)
        if looks_like_access_log(path):
            return cls.from_access_log(path)
        raise ConfigurationError(
            f"cannot infer trace format of {path!r}; use .csv, .npz or "
            "a Common/Combined Log Format access log"
        )


class TraceReplayProcess(_BatchedProcess):
    """Open-loop replay of a :class:`RateTrace`.

    Each trace interval contributes a Poisson-distributed arrival count
    placed as uniform order statistics — an exact sample of the
    piecewise-homogeneous Poisson process with the trace's intensity.
    The process exhausts (returns None) at the end of the trace unless
    ``loop=True``, which tiles the trace forever.
    """

    def __init__(
        self,
        trace: RateTrace,
        rng: np.random.Generator,
        loop: bool = False,
    ) -> None:
        super().__init__(start_time_s=max(trace.start_time_s, 0.0))
        if loop and trace.total_expected_arrivals() == 0.0:
            raise ConfigurationError(
                "cannot loop an all-zero-rate trace: the replay would "
                "never produce an arrival"
            )
        self.trace = trace
        self.loop = bool(loop)
        self.rate_rps = trace.mean_rate_rps()
        self._rng = rng
        self._index = 0

    def _refill(self) -> Optional[np.ndarray]:
        trace = self.trace
        if self._index >= len(trace):
            if not self.loop:
                return None
            self._index = 0
        rate = float(trace.rates_rps[self._index])
        self._index += 1
        dt = trace.interval_s
        start = self._clock
        self._clock += dt
        if rate <= 0.0:
            return np.empty(0)
        count = int(self._rng.poisson(rate * dt))
        return start + np.sort(self._rng.uniform(0.0, dt, size=count))
