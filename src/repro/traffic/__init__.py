"""Open-loop, trace-driven traffic generation.

This package closes the characterize -> model -> regenerate loop the
paper motivates: arrival processes synthesize request streams at
intensities a closed-loop client pool structurally cannot reach
("millions of users" scenarios), shape schedules impose the diurnal /
ramp / step / flash-crowd dynamics the figures characterize, rate
traces move offered load between runs, models, and files, and the
:class:`OpenLoopDriver` feeds it all to a deployment with overload
shedding accounted for.

Layout:

* :mod:`repro.traffic.arrivals` — Poisson, MMPP, b-model processes,
  thinning modulation; batched, seed-deterministic sampling.
* :mod:`repro.traffic.shapes` — deterministic rate envelopes.
* :mod:`repro.traffic.trace` — :class:`RateTrace` CSV/NPZ ingestion,
  resampling, fingerprinting, and open-loop replay.
* :mod:`repro.traffic.synthesis` — rate traces from fitted
  :mod:`repro.analysis.models` objects.
* :mod:`repro.traffic.driver` — transient sessions per arrival with a
  session budget and shed counters.
* :mod:`repro.traffic.spec` — the declarative :class:`TrafficSpec`
  scenarios and the CLI consume.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    BModelProcess,
    MMPPProcess,
    ModulatedProcess,
    PoissonProcess,
    drain_process,
)
from repro.traffic.driver import ArrivalMeter, OpenLoopDriver, TransientSession
from repro.traffic.shapes import (
    CompositeShape,
    ConstantShape,
    DiurnalShape,
    FlashCrowdShape,
    RampShape,
    RateShape,
    StepShape,
)
from repro.traffic.spec import (
    TRAFFIC_KINDS,
    TrafficSpec,
    build_driver,
    build_process,
)
from repro.traffic.synthesis import (
    fit_rate_models,
    regime_means_match,
    synthesize_rate_trace,
)
from repro.traffic.trace import RateTrace, TraceReplayProcess

__all__ = [
    # arrivals
    "ArrivalProcess",
    "PoissonProcess",
    "MMPPProcess",
    "BModelProcess",
    "ModulatedProcess",
    "drain_process",
    # shapes
    "RateShape",
    "ConstantShape",
    "DiurnalShape",
    "RampShape",
    "StepShape",
    "FlashCrowdShape",
    "CompositeShape",
    # traces
    "RateTrace",
    "TraceReplayProcess",
    # synthesis
    "synthesize_rate_trace",
    "fit_rate_models",
    "regime_means_match",
    # driver + spec
    "ArrivalMeter",
    "OpenLoopDriver",
    "TransientSession",
    "TrafficSpec",
    "TRAFFIC_KINDS",
    "build_process",
    "build_driver",
]
