"""The open-loop driver: transient sessions spawned per arrival.

The closed-loop :class:`~repro.rubis.client.ClientPopulation`
self-throttles: when the servers saturate, every client is stuck
waiting on a response, so the offered load can never exceed
``clients / think_time``.  The :class:`OpenLoopDriver` removes that
feedback: an :class:`~repro.traffic.arrivals.ArrivalProcess` dictates
when requests arrive regardless of how the system is doing — the
standard operating mode for characterization-grade load generation.

Per arrival the driver spawns a *transient session* that walks the
RUBiS transition matrix for ``requests_per_session`` steps — with the
mix's exponential think time between steps, exactly like a closed-loop
visitor, except the visit is finite and visits arrive open-loop — and
then vanishes.  A ``session_budget`` caps concurrent in-flight
sessions (the MaxClients / worker-pool limit of a real front end);
arrivals beyond the cap are *shed* and counted — the overload signal
every open-loop generator must report, since an un-shed unbounded
backlog would otherwise grow without limit exactly when the
measurement is most interesting.

An :class:`ArrivalMeter` bins every offered arrival into fixed
intervals, so each run yields the
:class:`~repro.traffic.trace.RateTrace` that closes the
characterize -> model -> regenerate loop.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rubis.client import SendFn, SessionStats
from repro.rubis.transitions import TransitionMatrix
from repro.rubis.workload import SessionType, WorkloadMix
from repro.sim.engine import Simulator
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.trace import RateTrace
from repro.units import SAMPLE_PERIOD_S


class ArrivalMeter:
    """Fixed-interval arrival counter (the run's offered-load trace)."""

    def __init__(
        self, interval_s: float = SAMPLE_PERIOD_S, start_time_s: float = 0.0
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.start_time_s = float(start_time_s)
        self._counts = np.zeros(64, dtype=np.int64)
        self._n = 0
        self.total = 0

    def record(self, t: float) -> None:
        """Count one arrival at simulated time ``t``."""
        index = int((t - self.start_time_s) / self.interval_s)
        if index < 0:
            raise ConfigurationError(
                f"arrival at t={t} precedes meter start {self.start_time_s}"
            )
        if index >= len(self._counts):
            capacity = len(self._counts)
            while capacity <= index:
                capacity *= 2
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self._n] = self._counts[: self._n]
            self._counts = grown
        self._counts[index] += 1
        if index + 1 > self._n:
            self._n = index + 1
        self.total += 1

    def record_batch(self, times: np.ndarray) -> None:
        """Count a batch of arrivals in one pass (the batched engine's
        bulk path).  Equivalent to calling :meth:`record` per element."""
        times = np.asarray(times)
        if times.size == 0:
            return
        indices = (
            (times - self.start_time_s) / self.interval_s
        ).astype(np.int64)
        low = int(indices.min())
        if low < 0:
            raise ConfigurationError(
                f"arrival at t={times[int(indices.argmin())]} precedes "
                f"meter start {self.start_time_s}"
            )
        high = int(indices.max())
        if high >= len(self._counts):
            capacity = len(self._counts)
            while capacity <= high:
                capacity *= 2
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self._n] = self._counts[: self._n]
            self._counts = grown
        np.add.at(self._counts, indices, 1)
        if high + 1 > self._n:
            self._n = high + 1
        self.total += int(times.size)

    @property
    def counts(self) -> np.ndarray:
        """Per-interval arrival counts (read-only view)."""
        view = self._counts[: self._n]
        view.setflags(write=False)
        return view

    def to_rate_trace(self, horizon_s: Optional[float] = None) -> RateTrace:
        """The metered arrivals as a rate trace.

        ``horizon_s`` pads with explicit zero-rate intervals so an
        empty tail is visible rather than silently missing.  Recorded
        arrivals are never dropped: an arrival exactly at the horizon
        (``run_until`` executes boundary events) keeps its interval, so
        the trace total always equals :attr:`total`.
        """
        counts = self._counts[: self._n]
        if horizon_s is not None:
            n = int(np.ceil((horizon_s - self.start_time_s) / self.interval_s))
            if n < 1:
                raise ConfigurationError("horizon precedes the meter start")
            if n > counts.size:
                counts = np.concatenate(
                    [counts, np.zeros(n - counts.size, dtype=np.int64)]
                )
        if counts.size == 0:
            counts = np.zeros(1, dtype=np.int64)
        return RateTrace.from_counts(
            counts, self.interval_s, self.start_time_s
        )


class TransientSession:
    """One open-loop visitor: a short matrix walk, then gone."""

    __slots__ = ("driver", "session_id", "session_type", "state", "remaining")

    def __init__(
        self,
        driver: "OpenLoopDriver",
        session_id: int,
        session_type: SessionType,
        initial_state: str,
        remaining: int,
    ) -> None:
        self.driver = driver
        self.session_id = session_id
        self.session_type = session_type
        self.state = initial_state
        self.remaining = remaining

    def _send_next(self) -> None:
        driver = self.driver
        self.state = driver.matrices[self.session_type].next_state(
            driver.rng, self.state
        )
        self.remaining -= 1
        driver.stats.record_request(self.state)
        driver.send_fn(self, self.state, self._on_response)

    def _on_response(self, request) -> None:
        driver = self.driver
        request.completed_at = driver.sim.now
        driver.stats.record_response(request)
        if self.remaining > 0:
            think = float(
                driver.rng.exponential(driver.mix.think_time_s)
            )
            driver.sim.schedule(think, self._send_next)
        else:
            driver._session_done(self)


class OpenLoopDriver:
    """Spawns transient sessions from an arrival process, open-loop.

    Drop-in alternative to the closed-loop
    :class:`~repro.rubis.client.ClientPopulation` on the deployment
    side: it exposes the same ``stats`` object and the
    ``active_session_count()`` the memory models consume.
    """

    def __init__(
        self,
        sim: Simulator,
        mix: WorkloadMix,
        send_fn: SendFn,
        rng: np.random.Generator,
        matrices: Dict[SessionType, TransitionMatrix],
        process: ArrivalProcess,
        session_budget: Optional[int] = None,
        requests_per_session: int = 1,
        meter_interval_s: float = SAMPLE_PERIOD_S,
        retry_max: int = 0,
        retry_backoff_s: float = 2.0,
    ) -> None:
        if session_budget is not None and session_budget < 1:
            raise ConfigurationError("session_budget must be >= 1")
        if requests_per_session < 1:
            raise ConfigurationError("requests_per_session must be >= 1")
        if retry_max < 0:
            raise ConfigurationError("retry_max must be >= 0")
        if retry_backoff_s <= 0:
            raise ConfigurationError("retry_backoff_s must be positive")
        self.sim = sim
        self.mix = mix
        self.send_fn = send_fn
        self.rng = rng
        self.matrices = matrices
        self.process = process
        self.session_budget = session_budget
        self.requests_per_session = int(requests_per_session)
        #: Shed-arrival retry policy: a shed visit retries up to
        #: ``retry_max`` times with exponential backoff (``backoff *
        #: 2**attempt``) before abandoning.  ``retry_max=0`` (default)
        #: keeps the original semantics: every shed arrival abandons
        #: immediately.  The backoff is deterministic (no rng draw), so
        #: enabling retries never perturbs the offered arrival stream.
        self.retry_max = int(retry_max)
        self.retry_backoff_s = float(retry_backoff_s)
        self.stats = SessionStats()
        self.meter = ArrivalMeter(interval_s=meter_interval_s)
        self.arrivals_offered = 0
        self.arrivals_admitted = 0
        self.arrivals_shed = 0
        #: Retry attempts scheduled for shed arrivals.
        self.arrivals_retried = 0
        #: Arrivals that gave up: shed with no retries left.
        self.arrivals_abandoned = 0
        self.sessions_completed = 0
        self._in_flight = 0
        self._next_session_id = 0
        self._started = False

    # -- driver surface shared with ClientPopulation ---------------------

    def active_session_count(self) -> int:
        """Sessions currently in flight (the open-loop 'population')."""
        return self._in_flight

    def set_session_budget(self, session_budget: Optional[int]) -> None:
        """Resize the concurrent-session cap mid-run (control actuator).

        Raising the budget lets queued-up demand in, shrinking it only
        affects *future* admissions — in-flight sessions are never
        evicted, like lowering MaxClients on a live front end.
        """
        if session_budget is not None and session_budget < 1:
            raise ConfigurationError("session_budget must be >= 1")
        self.session_budget = session_budget

    @property
    def throughput_estimate(self) -> float:
        """Nominal offered arrivals/s of the configured process."""
        return self.process.rate_rps

    def start(self) -> None:
        """Arm the arrival stream (single-shot: raises on reuse)."""
        if self._started:
            raise ConfigurationError("driver already started")
        self._started = True
        self._schedule_next()

    # -- arrival handling --------------------------------------------------

    def _schedule_next(self) -> None:
        t = self.process.next_arrival()
        if t is None:
            return
        if t < self.sim.now:
            # Arrival processes are nondecreasing; tolerate float dust.
            t = self.sim.now
        self.sim.schedule_at(t, self._on_arrival)

    def _on_arrival(self) -> None:
        now = self.sim.now
        self.meter.record(now)
        self.arrivals_offered += 1
        budget = self.session_budget
        if budget is not None and self._in_flight >= budget:
            self.arrivals_shed += 1
            self._handle_shed(attempt=0)
        else:
            self._admit()
        self._schedule_next()

    def _admit(self) -> None:
        self.arrivals_admitted += 1
        self._in_flight += 1
        session_id = self._next_session_id
        self._next_session_id += 1
        session_type = self.mix.session_type(self.rng)
        session = TransientSession(
            self,
            session_id,
            session_type,
            self.matrices[session_type].initial_state,
            self.requests_per_session,
        )
        session._send_next()

    def _handle_shed(self, attempt: int) -> None:
        """A visit found the front end full; retry with backoff or give up."""
        if attempt < self.retry_max:
            self.arrivals_retried += 1
            delay = self.retry_backoff_s * (2.0 ** attempt)
            self.sim.schedule(delay, self._retry, attempt + 1)
        else:
            self.arrivals_abandoned += 1

    def _retry(self, attempt: int) -> None:
        budget = self.session_budget
        if budget is not None and self._in_flight >= budget:
            self._handle_shed(attempt)
        else:
            self._admit()

    def _session_done(self, session: TransientSession) -> None:
        self._in_flight -= 1
        self.sessions_completed += 1

    # -- reporting ----------------------------------------------------------

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered arrivals shed by the session budget."""
        if self.arrivals_offered == 0:
            return 0.0
        return self.arrivals_shed / self.arrivals_offered

    @property
    def abandonment_fraction(self) -> float:
        """Fraction of offered arrivals that gave up for good.

        Equals :attr:`shed_fraction` when retries are disabled; with
        retries it is the stricter user-visible failure rate (a shed
        visit that got in on retry is delayed, not lost).
        """
        if self.arrivals_offered == 0:
            return 0.0
        return self.arrivals_abandoned / self.arrivals_offered

    def summary(self) -> dict:
        """Plain-data overload/throughput report for one run.

        ``offered == admitted + shed`` holds without retries; with
        retries an arrival can appear in both ``shed`` (its first
        attempt) and ``admitted`` (a later retry), so ``abandoned``
        carries the loss accounting.
        """
        return {
            "offered": self.arrivals_offered,
            "admitted": self.arrivals_admitted,
            "shed": self.arrivals_shed,
            "shed_fraction": self.shed_fraction,
            "retried": self.arrivals_retried,
            "abandoned": self.arrivals_abandoned,
            "abandonment_fraction": self.abandonment_fraction,
            "sessions_completed": self.sessions_completed,
            "in_flight": self._in_flight,
            "session_budget": self.session_budget,
            "requests_per_session": self.requests_per_session,
            "nominal_rate_rps": self.process.rate_rps,
        }
