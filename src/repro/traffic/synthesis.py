"""Model-synthesized rate traces: close the characterize -> regenerate loop.

The paper's Section 5 motivates formal workload models;
:mod:`repro.analysis.models` fits them (AR(p), histogram marginal,
two-regime Markov).  This module is the missing consumer: it turns a
*fitted* model into a :class:`~repro.traffic.trace.RateTrace` that the
open-loop driver can replay, so a characterized run can be regenerated
at will — and re-characterized to validate the model (the round-trip
test in ``tests/traffic/test_synthesis_roundtrip.py``).

The documented round-trip tolerances (enforced by that test) are:

* mean rate of the replayed run within **10 %** of the source model's
  mean (Poisson sampling noise at >= 50 arrivals/interval is ~3 %),
* regime means of a re-fitted :class:`RegimeModel` within **25 %**,
* a re-fitted :class:`ARModel` stays stationary when the source was.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.analysis.models import ARModel, HistogramWorkloadModel, RegimeModel
from repro.errors import AnalysisError, ConfigurationError
from repro.traffic.trace import RateTrace

WorkloadModel = Union[ARModel, HistogramWorkloadModel, RegimeModel]


def synthesize_rate_trace(
    model: WorkloadModel,
    n_intervals: int,
    interval_s: float,
    rng: np.random.Generator,
    floor_rps: float = 0.0,
    start_time_s: float = 0.0,
) -> RateTrace:
    """Generate a synthetic request-rate trace from a fitted model.

    ``ARModel``/``RegimeModel`` use their temporal ``simulate``;
    ``HistogramWorkloadModel`` draws i.i.d. from its marginal.  Values
    below ``floor_rps`` are clipped — fitted Gaussian tails can dip
    negative, which is meaningless as an arrival rate.
    """
    if n_intervals < 1:
        raise ConfigurationError("n_intervals must be >= 1")
    if interval_s <= 0:
        raise ConfigurationError("interval_s must be positive")
    if floor_rps < 0:
        raise ConfigurationError("floor_rps must be non-negative")
    if isinstance(model, (ARModel, RegimeModel)):
        values = model.simulate(n_intervals, rng)
    elif isinstance(model, HistogramWorkloadModel):
        values = model.sample(n_intervals, rng)
    else:
        raise ConfigurationError(
            f"unsupported model type {type(model).__name__}; expected "
            "ARModel, RegimeModel or HistogramWorkloadModel"
        )
    values = np.clip(np.asarray(values, dtype=float), floor_rps, None)
    return RateTrace(values, interval_s, start_time_s)


def fit_rate_models(trace: RateTrace, ar_order: int = 2) -> dict:
    """Fit the three analysis models to one rate trace.

    Returns ``{"ar": ARModel, "histogram": ..., "regime": ...}`` —
    the bundle the round-trip validation compares before/after replay.
    Models that cannot fit the series (e.g. a constant trace has no AR
    structure) are reported as the raised exception instance instead of
    a model, so callers can degrade gracefully.
    """
    out = {}
    for name, model in (
        ("ar", ARModel(order=ar_order)),
        ("histogram", HistogramWorkloadModel()),
        ("regime", RegimeModel()),
    ):
        try:
            out[name] = model.fit(trace.rates_rps)
        except AnalysisError as exc:
            out[name] = exc
    return out


def regime_means_match(
    original: RegimeModel,
    refit: RegimeModel,
    tolerance: float = 0.25,
) -> bool:
    """True when both regime means agree within ``tolerance`` (relative).

    Regime labels are order-normalized (low/high) before comparison,
    and the relative error is taken against the original's regime
    *spread* floor so near-identical regimes don't blow up the ratio.
    """
    a = sorted(original.means)
    b = sorted(refit.means)
    scale = max(abs(a[0]), abs(a[1]), 1e-9)
    return all(
        abs(x - y) <= tolerance * max(abs(x), 0.1 * scale)
        for x, y in zip(a, b)
    )
