"""Open-loop arrival processes.

Each process is an iterator of absolute arrival times on the simulated
clock, drawing from one named engine RNG stream
(:class:`repro.sim.random.RandomStreams`), so identical seeds reproduce
identical arrival streams and distinct stream names are statistically
disjoint.  All processes batch their sampling — a refill draws hundreds
of arrivals in one vectorized numpy call — so the per-arrival cost is
amortized O(1) regardless of rate.

Three stationary families cover the workload-characterization
literature:

* :class:`PoissonProcess` — the memoryless baseline,
* :class:`MMPPProcess` — Markov-modulated Poisson, the standard model
  for regime-switching burstiness (and the generative twin of
  :class:`repro.analysis.models.RegimeModel`),
* :class:`BModelProcess` — the multiplicative-cascade b-model of Wang
  et al., producing self-similar, bursty-at-every-scale counts.

:class:`ModulatedProcess` layers any deterministic
:class:`~repro.traffic.shapes.RateShape` envelope on top of a base
process by Lewis-Shedler thinning: the base runs at the envelope's peak
rate and each arrival survives with probability ``factor(t) / max``.
For a Poisson base this is exact; for MMPP/b-model bases it rescales
the conditional intensity by the envelope, preserving burst structure.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.shapes import RateShape

#: Arrivals sampled per vectorized refill of the stationary processes.
_BATCH = 256


class ArrivalProcess:
    """Interface: a nondecreasing stream of absolute arrival times."""

    #: Nominal long-run arrivals/s of the process.
    rate_rps: float = 0.0

    def next_arrival(self) -> Optional[float]:
        """The next arrival time in seconds, or None when exhausted.

        Stationary processes never exhaust; trace replays do at the end
        of the trace.
        """
        raise NotImplementedError


class _BatchedProcess(ArrivalProcess):
    """Base class implementing the buffered-batch iteration protocol."""

    def __init__(self, start_time_s: float = 0.0) -> None:
        if start_time_s < 0:
            raise ConfigurationError("start_time_s must be non-negative")
        self._clock = float(start_time_s)
        self._buffer = np.empty(0)
        self._cursor = 0

    def _refill(self) -> Optional[np.ndarray]:
        """Produce the next batch of absolute times (None = exhausted).

        An empty array is a valid batch (an interval with no arrivals);
        the iterator keeps refilling until it gets a time or None.
        """
        raise NotImplementedError

    def next_arrival(self) -> Optional[float]:
        while self._cursor >= len(self._buffer):
            batch = self._refill()
            if batch is None:
                return None
            self._buffer = batch
            self._cursor = 0
        value = float(self._buffer[self._cursor])
        self._cursor += 1
        return value


class PoissonProcess(_BatchedProcess):
    """Stationary Poisson arrivals at ``rate_rps``."""

    def __init__(
        self,
        rate_rps: float,
        rng: np.random.Generator,
        start_time_s: float = 0.0,
    ) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        super().__init__(start_time_s)
        self.rate_rps = float(rate_rps)
        self._rng = rng

    def _refill(self) -> np.ndarray:
        gaps = self._rng.exponential(1.0 / self.rate_rps, size=_BATCH)
        times = self._clock + np.cumsum(gaps)
        self._clock = float(times[-1])
        return times


class MMPPProcess(_BatchedProcess):
    """Markov-modulated Poisson process over K rate regimes.

    The process sojourns in regime ``i`` for an exponential time with
    mean ``mean_sojourn_s[i]``, emitting Poisson arrivals at
    ``rates_rps[i]``, then switches regime according to the embedded
    ``transition`` matrix (default: cycle through the regimes).  One
    refill covers one sojourn: the arrival count is Poisson and the
    times are uniform order statistics within the sojourn — exact for a
    conditionally homogeneous segment, and fully vectorized.
    """

    def __init__(
        self,
        rates_rps: Sequence[float],
        mean_sojourn_s: Sequence[float],
        rng: np.random.Generator,
        transition: Optional[Sequence[Sequence[float]]] = None,
        initial_regime: int = 0,
        start_time_s: float = 0.0,
    ) -> None:
        rates = np.asarray(rates_rps, dtype=float)
        sojourns = np.asarray(mean_sojourn_s, dtype=float)
        if rates.ndim != 1 or rates.size < 2:
            raise ConfigurationError("MMPP needs >= 2 regimes")
        if rates.size != sojourns.size:
            raise ConfigurationError("rates and sojourns must align")
        if (rates < 0).any() or rates.max() <= 0:
            raise ConfigurationError("regime rates must be >= 0, one > 0")
        if (sojourns <= 0).any():
            raise ConfigurationError("mean sojourns must be positive")
        if not 0 <= initial_regime < rates.size:
            raise ConfigurationError("initial_regime out of range")
        super().__init__(start_time_s)
        k = rates.size
        if transition is None:
            matrix = np.zeros((k, k))
            for i in range(k):
                matrix[i, (i + 1) % k] = 1.0
        else:
            matrix = np.asarray(transition, dtype=float)
            if matrix.shape != (k, k) or (matrix < 0).any():
                raise ConfigurationError("transition must be a KxK matrix")
            row_sums = matrix.sum(axis=1)
            if not np.allclose(row_sums, 1.0):
                raise ConfigurationError("transition rows must sum to 1")
        self.rates = rates
        self.mean_sojourn_s = sojourns
        self.transition = matrix
        self._regime = int(initial_regime)
        self._rng = rng
        self.rate_rps = self._stationary_rate()

    def _stationary_rate(self) -> float:
        """Time-averaged rate: embedded stationary dist x sojourns.

        Solves ``pi P = pi`` with the normalization constraint directly
        (least squares), which is exact for periodic embedded chains —
        e.g. the default deterministic cycle — where power iteration
        would not converge.
        """
        k = self.rates.size
        system = np.vstack(
            [self.transition.T - np.eye(k), np.ones((1, k))]
        )
        target = np.zeros(k + 1)
        target[-1] = 1.0
        pi = np.linalg.lstsq(system, target, rcond=None)[0]
        pi = np.clip(pi, 0.0, None)
        pi /= pi.sum()
        weights = pi * self.mean_sojourn_s
        return float(np.dot(weights, self.rates) / weights.sum())

    @property
    def regime(self) -> int:
        """The regime generating the *next* sojourn (diagnostics)."""
        return self._regime

    def _refill(self) -> np.ndarray:
        rng = self._rng
        regime = self._regime
        sojourn = float(rng.exponential(self.mean_sojourn_s[regime]))
        count = int(rng.poisson(self.rates[regime] * sojourn))
        times = self._clock + np.sort(rng.uniform(0.0, sojourn, size=count))
        self._clock += sojourn
        self._regime = int(
            rng.choice(self.rates.size, p=self.transition[regime])
        )
        return times


class BModelProcess(_BatchedProcess):
    """Self-similar arrivals from a multiplicative b-model cascade.

    Each refill covers one ``window_s``-long window whose total expected
    volume ``rate * window`` is recursively split ``levels`` times: at
    every split a fraction ``bias`` goes to one half (chosen by a fair
    coin) and ``1 - bias`` to the other.  Leaf volumes become Poisson
    counts placed uniformly within their leaf interval.  ``bias = 0.5``
    degenerates to plain Poisson; values toward 1.0 give the
    bursty-at-every-timescale traffic of web traces.
    """

    def __init__(
        self,
        rate_rps: float,
        rng: np.random.Generator,
        bias: float = 0.7,
        window_s: float = 64.0,
        levels: int = 6,
        start_time_s: float = 0.0,
    ) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        if not 0.5 <= bias < 1.0:
            raise ConfigurationError("bias must be in [0.5, 1)")
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not 1 <= levels <= 20:
            raise ConfigurationError("levels must be in [1, 20]")
        super().__init__(start_time_s)
        self.rate_rps = float(rate_rps)
        self.bias = float(bias)
        self.window_s = float(window_s)
        self.levels = int(levels)
        self._rng = rng

    def _refill(self) -> np.ndarray:
        rng = self._rng
        volumes = np.array([self.rate_rps * self.window_s])
        for _ in range(self.levels):
            left = np.where(
                rng.random(volumes.size) < 0.5, self.bias, 1.0 - self.bias
            )
            volumes = np.column_stack(
                (volumes * left, volumes * (1.0 - left))
            ).ravel()
        counts = rng.poisson(volumes)
        total = int(counts.sum())
        leaf_s = self.window_s / volumes.size
        starts = self._clock + leaf_s * np.repeat(
            np.arange(volumes.size), counts
        )
        times = np.sort(starts + rng.uniform(0.0, leaf_s, size=total))
        self._clock += self.window_s
        return times


class ModulatedProcess(ArrivalProcess):
    """A base process thinned against a deterministic rate envelope.

    ``base`` must be constructed at ``target_rate * shape.max_factor()``
    (the :mod:`repro.traffic.spec` builders do this); each base arrival
    at time ``t`` then survives with probability
    ``shape.factor(t) / shape.max_factor()``.
    """

    def __init__(
        self,
        base: ArrivalProcess,
        shape: RateShape,
        rng: np.random.Generator,
    ) -> None:
        bound = shape.max_factor()
        if bound <= 0:
            raise ConfigurationError(
                "shape.max_factor() must be positive for thinning"
            )
        self.base = base
        self.shape = shape
        self._bound = float(bound)
        self._rng = rng
        #: Nominal unshaped rate (the base generates at peak rate).
        self.rate_rps = base.rate_rps / self._bound

    def next_arrival(self) -> Optional[float]:
        base_next = self.base.next_arrival
        factor = self.shape.factor
        bound = self._bound
        rng = self._rng
        while True:
            t = base_next()
            if t is None:
                return None
            if rng.random() * bound < factor(t):
                return t


def drain_process(
    process: ArrivalProcess, horizon_s: float, limit: int = 10_000_000
) -> np.ndarray:
    """All arrival times in ``[0, horizon_s]`` as an array (test helper).

    ``limit`` guards against misconfigured rates flooding memory.
    """
    out = []
    while len(out) < limit:
        t = process.next_arrival()
        if t is None or t > horizon_s:
            break
        out.append(t)
    return np.asarray(out)
