"""Shape schedules: piecewise-rate envelopes for open-loop traffic.

A shape is a deterministic time-varying multiplier on a base arrival
rate.  Shapes are what turn a stationary arrival process into the
workload dynamics the paper characterizes — diurnal-like drifts, load
ramps, step jumps, and flash crowds — without touching the process's
stochastic structure.  They compose multiplicatively
(:class:`CompositeShape`) and apply to *any* arrival process through
Lewis-Shedler thinning (see
:class:`repro.traffic.arrivals.ModulatedProcess`), which needs only the
pointwise ``factor(t)`` and a global upper bound ``max_factor()``.

All shapes are frozen dataclasses: hashable, comparable, and safe to
embed in a :class:`~repro.traffic.spec.TrafficSpec` (and therefore in a
scenario cache key).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


class RateShape:
    """Interface: a deterministic rate multiplier over simulated time."""

    def factor(self, t: float) -> float:
        """Multiplier at time ``t`` (>= 0)."""
        raise NotImplementedError

    def max_factor(self) -> float:
        """An upper bound on ``factor`` over all times (thinning envelope)."""
        raise NotImplementedError

    def mean_factor(self, horizon_s: float, samples: int = 512) -> float:
        """Trapezoidal estimate of the average factor over ``[0, horizon]``."""
        if horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        step = horizon_s / samples
        total = 0.5 * (self.factor(0.0) + self.factor(horizon_s))
        for i in range(1, samples):
            total += self.factor(i * step)
        return total / samples


@dataclass(frozen=True)
class ConstantShape(RateShape):
    """A flat multiplier (the identity envelope when ``value == 1``)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError("shape factor must be non-negative")

    def factor(self, t: float) -> float:
        return self.value

    def max_factor(self) -> float:
        return self.value


@dataclass(frozen=True)
class DiurnalShape(RateShape):
    """Sinusoidal day/night envelope: ``1 + amplitude * sin(...)``.

    ``period_s`` defaults to a compressed "day" rather than 86400 s so
    short simulated horizons still sweep full cycles.
    """

    period_s: float = 240.0
    amplitude: float = 0.5
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ConfigurationError("amplitude must be in [0, 1]")

    def factor(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.phase_s) / self.period_s
        return 1.0 + self.amplitude * math.sin(phase)

    def max_factor(self) -> float:
        return 1.0 + self.amplitude


@dataclass(frozen=True)
class RampShape(RateShape):
    """Linear ramp from ``start_factor`` to ``end_factor`` over a window.

    Flat at ``start_factor`` before the window and at ``end_factor``
    after it — the classic load-ramp profile of capacity tests.
    """

    t_start_s: float
    t_end_s: float
    start_factor: float = 1.0
    end_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.t_end_s <= self.t_start_s:
            raise ConfigurationError("ramp needs t_end_s > t_start_s")
        if self.start_factor < 0 or self.end_factor < 0:
            raise ConfigurationError("ramp factors must be non-negative")

    def factor(self, t: float) -> float:
        if t <= self.t_start_s:
            return self.start_factor
        if t >= self.t_end_s:
            return self.end_factor
        progress = (t - self.t_start_s) / (self.t_end_s - self.t_start_s)
        return self.start_factor + progress * (
            self.end_factor - self.start_factor
        )

    def max_factor(self) -> float:
        return max(self.start_factor, self.end_factor)


@dataclass(frozen=True)
class StepShape(RateShape):
    """Piecewise-constant steps: factor ``factors[i]`` from ``times_s[i]``.

    The factor is 1.0 before the first step — the profile of the
    figures' RAM step jumps translated to offered load.
    """

    times_s: Tuple[float, ...]
    factors: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.factors):
            raise ConfigurationError("times_s and factors must align")
        if not self.times_s:
            raise ConfigurationError("StepShape needs at least one step")
        if any(b <= a for a, b in zip(self.times_s, self.times_s[1:])):
            raise ConfigurationError("step times must strictly increase")
        if any(f < 0 for f in self.factors):
            raise ConfigurationError("step factors must be non-negative")

    def factor(self, t: float) -> float:
        index = bisect_right(self.times_s, t)
        if index == 0:
            return 1.0
        return self.factors[index - 1]

    def max_factor(self) -> float:
        return max(1.0, *self.factors)


@dataclass(frozen=True)
class FlashCrowdShape(RateShape):
    """A flash crowd: linear surge to ``magnitude``x, exponential decay.

    The factor is 1 until ``peak_time_s - rise_s``, climbs linearly to
    ``magnitude`` at ``peak_time_s``, then decays back toward 1 with
    time constant ``decay_s`` — the slashdot-effect profile from the
    web-workload literature.
    """

    peak_time_s: float
    magnitude: float = 8.0
    rise_s: float = 10.0
    decay_s: float = 30.0

    def __post_init__(self) -> None:
        if self.magnitude < 1.0:
            raise ConfigurationError("flash-crowd magnitude must be >= 1")
        if self.rise_s <= 0 or self.decay_s <= 0:
            raise ConfigurationError("rise_s and decay_s must be positive")
        if self.peak_time_s < 0:
            raise ConfigurationError("peak_time_s must be non-negative")

    def factor(self, t: float) -> float:
        surge = self.magnitude - 1.0
        onset = self.peak_time_s - self.rise_s
        if t <= onset:
            return 1.0
        if t <= self.peak_time_s:
            return 1.0 + surge * (t - onset) / self.rise_s
        return 1.0 + surge * math.exp(-(t - self.peak_time_s) / self.decay_s)

    def max_factor(self) -> float:
        return self.magnitude


@dataclass(frozen=True)
class CompositeShape(RateShape):
    """Product of component shapes (e.g. diurnal x flash crowd)."""

    shapes: Tuple[RateShape, ...]

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ConfigurationError("CompositeShape needs >= 1 component")

    def factor(self, t: float) -> float:
        out = 1.0
        for shape in self.shapes:
            out *= shape.factor(t)
        return out

    def max_factor(self) -> float:
        out = 1.0
        for shape in self.shapes:
            out *= shape.max_factor()
        return out
