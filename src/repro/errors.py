"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-classes partition the
failure domains: configuration, simulation, monitoring, and analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or the queue was corrupted."""


class CapacityError(SimulationError):
    """A hardware resource was asked for more than its capacity."""


class MonitoringError(ReproError):
    """A collector or metric registry operation failed."""


class UnknownMetricError(MonitoringError):
    """A metric name was looked up that is not in the registry."""


class AnalysisError(ReproError):
    """A characterization routine received unusable input."""


class InsufficientDataError(AnalysisError):
    """A statistic was requested from a series that is too short."""
