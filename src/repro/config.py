"""Declarative experiment configuration.

:class:`ExperimentConfig` is the serializable description of one run —
what the CLI and batch scripts consume, and what gets stored next to
exported traces so a result is always reproducible from its sidecar.
Round-trips through plain dicts (and therefore JSON).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple

from repro.control.spec import CONTROLLER_KINDS, ControllerSpec
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSchedule
from repro.experiments.scenarios import (
    ENGINES,
    ENVIRONMENTS,
    VIRTUALIZED,
    Scenario,
    default_duration_s,
    open_loop_scenario,
    scenario,
)
from repro.placement.spec import FleetSpec, validate_placement_policy
from repro.rubis.workload import PAPER_COMPOSITIONS
from repro.traffic.spec import TrafficSpec
from repro.workloads.base import TenantSpec


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment run, fully described by plain data."""

    environment: str = "virtualized"
    composition: str = "browsing"
    duration_s: Optional[float] = None
    seed: int = 42
    clients: Optional[int] = None
    #: Stress multiplier on horizon and clients (see ``scenario(scale=)``).
    scale: float = 1.0
    #: Traffic driver token: "closed" (default), "poisson", "mmpp",
    #: "bmodel" or "trace:<path>" — the CLI ``--traffic`` syntax.
    traffic: Optional[str] = None
    #: Base offered rate for open-loop traffic (req/s; default: matched
    #: to the closed-loop long-run rate).
    rate_rps: Optional[float] = None
    #: Concurrent-session cap for open-loop traffic (overload shedding).
    session_budget: Optional[int] = None
    #: Co-resident tenant VMs (consolidation); each entry is a
    #: :class:`~repro.workloads.base.TenantSpec` (or its dict form).
    tenants: Tuple[TenantSpec, ...] = ()
    #: Elastic-controller policy token: None/"none" (no controller) or
    #: "static"/"threshold"/"pid"/"predictive" — the CLI
    #: ``--controller`` syntax, expanded to a default-band
    #: :class:`~repro.control.spec.ControllerSpec`.
    controller: Optional[str] = None
    #: Physical servers in the fleet (>1 builds the multi-server
    #: testbed through the placement engine).
    servers: int = 1
    #: Placement policy token (``firstfit``/``bestfit``/``balance``/
    #: ``priority``); None keeps the scenario default (first-fit).
    placement: Optional[str] = None
    #: Fleet-controller spec (:class:`~repro.placement.spec.FleetSpec`
    #: or its dict form); requires ``servers > 1``.  None (the
    #: default) runs without a fleet controller.
    fleet: Optional[FleetSpec] = None
    #: Fault-schedule token: ``"+"``-joined
    #: ``kind@at[:duration[:magnitude]][/target]`` entries (the CLI
    #: ``--faults`` syntax, see :mod:`repro.faults.spec`); None or
    #: ``"none"`` runs fault-free.
    faults: Optional[str] = None
    #: Request-engine selector: ``"classic"`` (event-per-hop, the
    #: bit-stable default) or ``"batched"`` (array-native cohort
    #: engine; equivalent in distribution, not bitwise — see
    #: PERFORMANCE.md "Epoch 2").
    engine: str = "classic"
    #: Request-trace sampling rate in [0, 1]; 0 disables tracing (and
    #: keeps bit-identical traces — see :mod:`repro.obs.tracing`).
    trace_sample: float = 0.0
    collect_full_registry: bool = False
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Deserialized tenants arrive as plain dicts; normalize to the
        # hashable spec tuple so equality and round-trips hold.
        coerced = tuple(
            entry if isinstance(entry, TenantSpec) else TenantSpec.from_dict(entry)
            for entry in self.tenants
        )
        object.__setattr__(self, "tenants", coerced)
        if self.tenants and self.environment != VIRTUALIZED:
            raise ConfigurationError(
                "tenants require the virtualized environment"
            )
        if self.environment not in ENVIRONMENTS:
            raise ConfigurationError(
                f"unknown environment {self.environment!r}; "
                f"choose from {ENVIRONMENTS}"
            )
        if self.composition not in PAPER_COMPOSITIONS:
            raise ConfigurationError(
                f"unknown composition {self.composition!r}; known: "
                f"{sorted(PAPER_COMPOSITIONS)}"
            )
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.clients is not None and self.clients < 1:
            raise ConfigurationError("clients must be >= 1")
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        if self.controller not in (None, "none") + CONTROLLER_KINDS:
            raise ConfigurationError(
                f"unknown controller {self.controller!r}; choose from "
                f"{('none',) + CONTROLLER_KINDS}"
            )
        if (
            self.controller not in (None, "none")
            and self.environment != VIRTUALIZED
        ):
            raise ConfigurationError(
                "controllers require the virtualized environment"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigurationError(
                f"trace_sample {self.trace_sample} outside [0, 1]"
            )
        if self.servers < 1:
            raise ConfigurationError("servers must be >= 1")
        if self.servers > 1 and self.environment != VIRTUALIZED:
            raise ConfigurationError(
                "multi-server fleets require the virtualized environment"
            )
        if self.placement is not None:
            validate_placement_policy(self.placement)
        if self.fleet is not None and not isinstance(self.fleet, FleetSpec):
            object.__setattr__(self, "fleet", FleetSpec.from_dict(self.fleet))
        if self.fleet is not None:
            if self.servers < 2:
                raise ConfigurationError(
                    "a fleet controller needs servers >= 2"
                )
            if self.environment != VIRTUALIZED:
                raise ConfigurationError(
                    "fleet controllers require the virtualized environment"
                )
        # Parse the fault token eagerly so bad schedules fail at
        # construction, and reject faults outside the virtualized
        # environment (injectors actuate hypervisor state).
        if self.fault_schedule() is not None:
            if self.environment != VIRTUALIZED:
                raise ConfigurationError(
                    "fault injection requires the virtualized environment"
                )
        # Validate the traffic token eagerly so bad configs fail at
        # construction, not at run time.
        if self.traffic_spec() is None:
            # Closed loop: reject open-loop-only knobs instead of
            # silently running at a different offered load.
            if self.rate_rps is not None:
                raise ConfigurationError(
                    "rate_rps requires an open-loop --traffic kind "
                    "(poisson, mmpp, bmodel or trace:<path>)"
                )
            if self.session_budget is not None:
                raise ConfigurationError(
                    "session_budget requires an open-loop --traffic kind"
                )

    # -- scenario construction ------------------------------------------

    def fault_schedule(self):
        """The parsed :class:`~repro.faults.spec.FaultSchedule`, or None."""
        if self.faults is None or self.faults == "none":
            return None
        return FaultSchedule.from_cli_string(self.faults)

    def traffic_spec(self) -> Optional[TrafficSpec]:
        """The parsed traffic spec, or None for the closed loop."""
        if self.traffic is None:
            return None
        spec = TrafficSpec.from_cli_string(
            self.traffic,
            rate_rps=self.rate_rps,
            session_budget=self.session_budget,
        )
        return spec if spec.open_loop else None

    def to_scenario(self) -> Scenario:
        """The runnable scenario this configuration describes."""
        traffic = self.traffic_spec()
        if traffic is not None:
            spec = open_loop_scenario(
                self.environment,
                self.composition,
                duration_s=self.duration_s,
                seed=self.seed,
                clients=self.clients,
                scale=self.scale,
                traffic=traffic,
            )
        else:
            spec = scenario(
                self.environment,
                self.composition,
                duration_s=self.duration_s,
                seed=self.seed,
                clients=self.clients,
                scale=self.scale,
            )
        if self.tenants:
            names = "+".join(t.name for t in self.tenants)
            spec = replace(
                spec, name=f"{spec.name}+{names}", tenants=self.tenants
            )
        if self.controller not in (None, "none"):
            spec = replace(
                spec,
                name=f"{spec.name}@{self.controller}",
                controller=ControllerSpec.from_kind(self.controller),
            )
        if self.servers > 1:
            spec = replace(
                spec,
                name=f"{spec.name}/s{self.servers}",
                servers=self.servers,
                placement=self.placement or spec.placement,
            )
        elif self.placement is not None:
            spec = replace(spec, placement=self.placement)
        if self.fleet is not None:
            # The fleet spec is infrastructure, not workload shape, so
            # the name stays unsuffixed — the cache key still covers it.
            spec = replace(spec, fleet=self.fleet)
        schedule = self.fault_schedule()
        if schedule is not None:
            spec = replace(
                spec,
                name=f"{spec.name}!{schedule.as_cli_string()}",
                faults=schedule,
            )
        if self.engine != "classic":
            spec = replace(
                spec, name=f"{spec.name}%{self.engine}", engine=self.engine
            )
        if self.trace_sample > 0.0:
            # Tracing never changes the physics, so the name is kept
            # unsuffixed — but the cache key includes the rate.
            spec = replace(spec, trace_sample=self.trace_sample)
        return spec

    @property
    def effective_duration_s(self) -> float:
        if self.duration_s is not None:
            return self.duration_s
        return default_duration_s()

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        unknown = set(data) - {
            "environment",
            "composition",
            "duration_s",
            "seed",
            "clients",
            "scale",
            "traffic",
            "rate_rps",
            "session_budget",
            "tenants",
            "controller",
            "servers",
            "placement",
            "fleet",
            "faults",
            "engine",
            "trace_sample",
            "collect_full_registry",
            "metadata",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown configuration keys: {sorted(unknown)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("configuration JSON must be an object")
        return cls.from_dict(data)
