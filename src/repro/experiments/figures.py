"""Figure regeneration: the series behind Figures 1-8.

Each paper figure is a row of panels (one per measured entity), each
panel holding the browse and bid series of one resource.  ``figure``
extracts that structure from experiment results; ``render_figure``
prints it as aligned text with compact sparklines plus the summary
statistics the paper discusses — the closest faithful equivalent of the
plots in a terminal-only environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.monitoring.timeseries import TimeSeries
from repro.experiments.runner import ExperimentResult

#: (resource, axis label) per figure number, virtualized 1-4, bare 5-8.
FIGURE_DEFS: Dict[int, Tuple[str, str, str]] = {
    1: ("virtualized", "cpu_cycles", "virtualized CPU cycles / 2s"),
    2: ("virtualized", "mem_used_mb", "virtualized used memory (MB)"),
    3: ("virtualized", "disk_kb", "virtualized disk read+write (KB / 2s)"),
    4: ("virtualized", "net_kb", "virtualized net RX+TX (KB / 2s)"),
    5: ("bare-metal", "cpu_cycles", "physical CPU cycles / 2s"),
    6: ("bare-metal", "mem_used_mb", "physical used memory (MB)"),
    7: ("bare-metal", "disk_kb", "physical disk read+write (KB / 2s)"),
    8: ("bare-metal", "net_kb", "physical net RX+TX (KB / 2s)"),
}

#: Panel order matching the paper's layout.
_PANEL_TITLES = {
    "web": "Web+App.",
    "db": "Mysql",
    "dom0": "Domain0",
}

_SPARK_CHARS = " .:-=+*#%@"


@dataclass
class FigurePanel:
    """One panel: an entity's series for each workload."""

    entity: str
    title: str
    series: Dict[str, TimeSeries] = field(default_factory=dict)


@dataclass
class FigureData:
    """One regenerated figure."""

    number: int
    environment: str
    resource: str
    axis_label: str
    panels: List[FigurePanel] = field(default_factory=list)


def figure(
    number: int, results_by_workload: Dict[str, ExperimentResult]
) -> FigureData:
    """Extract figure ``number`` from run results.

    Args:
        number: 1-8, as in the paper.
        results_by_workload: e.g. ``{"browse": virt_browse_result,
            "bid": virt_bid_result}``; environments must match the
            figure's environment.
    """
    if number not in FIGURE_DEFS:
        raise AnalysisError(f"unknown figure number {number}")
    environment, resource, axis_label = FIGURE_DEFS[number]
    entities: List[str] = []
    for result in results_by_workload.values():
        if result.scenario.environment != environment:
            raise AnalysisError(
                f"figure {number} needs {environment} results, got "
                f"{result.scenario.environment}"
            )
        entities = result.traces.entities()
    ordered = [e for e in ("web", "db", "dom0") if e in entities]
    data = FigureData(
        number=number,
        environment=environment,
        resource=resource,
        axis_label=axis_label,
    )
    for entity in ordered:
        suffix = "(VM)" if environment == "virtualized" and entity != "dom0" \
            else "(PM)" if environment == "bare-metal" else ""
        panel = FigurePanel(
            entity=entity,
            title=f"{_PANEL_TITLES[entity]} {suffix}".strip(),
        )
        for workload, result in results_by_workload.items():
            panel.series[workload] = result.traces.get(entity, resource)
        data.panels.append(panel)
    return data


def _sparkline(values: np.ndarray, width: int = 60) -> str:
    if values.size == 0:
        return ""
    # Downsample to the target width by block means.
    blocks = np.array_split(values, min(width, values.size))
    means = np.array([b.mean() for b in blocks])
    low, high = float(means.min()), float(means.max())
    span = high - low
    if span <= 0:
        return _SPARK_CHARS[1] * len(means)
    indices = ((means - low) / span * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in indices)


def render_figure(data: FigureData, sparkline_width: int = 60) -> str:
    """Text rendering of one figure: stats plus sparklines per panel."""
    lines = [
        f"Figure {data.number} — {data.axis_label} "
        f"[{data.environment}]",
        "=" * 72,
    ]
    for panel in data.panels:
        lines.append(f"{panel.title}:")
        for workload in sorted(panel.series):
            series = panel.series[workload]
            values = series.values
            lines.append(
                f"  {workload:<7s} mean={values.mean():.4g} "
                f"min={values.min():.4g} max={values.max():.4g} "
                f"n={values.size}"
            )
            lines.append(
                f"          |{_sparkline(values, sparkline_width)}|"
            )
        lines.append("")
    return "\n".join(lines)


# -- suite-level figures over merged sweep results ---------------------------

#: Metric columns of the suite ratio table, with axis labels.
SUITE_FIGURE_METRICS = (
    ("throughput_rps", "throughput (req/s)"),
    ("mean_ms", "mean response time (ms)"),
    ("p95_ms", "p95 response time (ms)"),
    ("shed_fraction", "shed fraction"),
)


def _suite_figure_text(
    metric: str, label: str, rows: list, baseline_id: str,
    width: int = 48,
) -> str:
    """ASCII bar panel for one suite metric (matplotlib-free fallback)."""
    lines = [f"{label} — one bar per run (* = baseline)", "=" * 72]
    top = max((row[metric] for _, row in rows), default=0.0)
    for run_id, row in rows:
        value = row[metric]
        ratio = row[f"{metric}_ratio"]
        bar = "#" * (round(value / top * width) if top > 0 else 0)
        marker = "*" if run_id == baseline_id else " "
        ratio_text = f"{ratio:.2f}x" if ratio == ratio else "-"
        lines.append(
            f"{run_id:<44.44s}{marker} {value:>10.4g} ({ratio_text:>7s}) "
            f"|{bar}|"
        )
    return "\n".join(lines) + "\n"


def render_suite_figures(
    suite,
    out_dir: str,
    baseline_run_id: str = None,
) -> List[str]:
    """Render a sweep's aggregate ratio table as per-metric figures.

    One figure per metric of
    :func:`~repro.experiments.suite.suite_ratio_data` — a horizontal
    bar per run, annotated with the ratio against the baseline run.
    With matplotlib available each figure is a PNG; otherwise the same
    panels are written as aligned text (this library must degrade
    gracefully when plotting backends are absent).  Returns the paths
    written, in metric order.
    """
    import os

    from repro.experiments.suite import suite_ratio_data

    data = suite_ratio_data(suite, baseline_run_id)
    baseline_id = baseline_run_id or next(iter(suite.summaries))
    rows = list(data.items())
    os.makedirs(out_dir, exist_ok=True)
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
    paths: List[str] = []
    for metric, label in SUITE_FIGURE_METRICS:
        if plt is None:
            path = os.path.join(out_dir, f"suite_{metric}.txt")
            with open(path, "w") as handle:
                handle.write(
                    _suite_figure_text(metric, label, rows, baseline_id)
                )
            paths.append(path)
            continue
        run_ids = [run_id for run_id, _ in rows]
        values = [row[metric] for _, row in rows]
        ratios = [row[f"{metric}_ratio"] for _, row in rows]
        height = max(2.5, 0.5 * len(rows) + 1.2)
        fig, ax = plt.subplots(figsize=(9.0, height))
        positions = range(len(rows))
        ax.barh(
            list(positions), values,
            color=[
                "#4878cf" if run_id != baseline_id else "#6acc64"
                for run_id in run_ids
            ],
        )
        ax.set_yticks(list(positions))
        ax.set_yticklabels(run_ids, fontsize=8)
        ax.invert_yaxis()
        ax.set_xlabel(label)
        ax.set_title(f"{label} per run (baseline: {baseline_id})")
        for position, (value, ratio) in enumerate(zip(values, ratios)):
            ratio_text = f"{ratio:.2f}x" if ratio == ratio else "-"
            ax.annotate(
                f"{value:.3g} ({ratio_text})",
                (value, position),
                xytext=(4, 0),
                textcoords="offset points",
                va="center",
                fontsize=8,
            )
        fig.tight_layout()
        path = os.path.join(out_dir, f"suite_{metric}.png")
        fig.savefig(path, dpi=120)
        plt.close(fig)
        paths.append(path)
    return paths


def figure_series_rows(data: FigureData) -> List[dict]:
    """Row-wise dump (time, panel, workload, value) for CSV-style output."""
    rows = []
    for panel in data.panels:
        for workload, series in panel.series.items():
            for t, v in zip(series.times, series.values):
                rows.append(
                    {
                        "figure": data.number,
                        "panel": panel.title,
                        "workload": workload,
                        "time_s": float(t),
                        "value": float(v),
                    }
                )
    return rows
