"""Calibration: derive every simulator constant from the paper's numbers.

The philosophy: *no hand-tuned magic numbers inside the models*.  Every
absolute scale is computed here by inverting the demand expectation
under the browsing mix's stationary distribution (the paper's headline
workload), using the same formulas the samplers use
(:meth:`repro.rubis.demand.DemandSampler.expected_demand`), so the
calibration is exact in expectation by construction.

Derivation chain (all quantities per 2-second sample unless noted):

1. Closed-loop throughput: X = N/Z requests/s (N=1000 clients, Z=7 s
   think time; response time << Z so the correction is negligible).
2. Per-request targets: target_per_sample / (X * 2 s).
3. Linear inversion per scaling field, e.g.
   ``web_cycles_per_unit = web_cpu_per_request / E_pi[web_work]``.
4. Dom0 constants: every dom0 CPU contributor except the network-proxy
   cost is fixed from systems lore (base housekeeping, scheduler
   epochs, hypercalls, disk proxy, commit barriers); the net proxy
   cycles/byte is then *solved* so dom0's CPU hits the R2-derived
   target exactly in expectation.
5. Memory profile bases are solved from the level-process mean formula.

The virtualized and bare-metal environments get separate scalings; their
ratio *is* the virtualization cycle-accounting inflation the paper
measures (see DESIGN.md section 3 for the R2/R3/R4 consistency note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.apps.tier import OsActivityModel
from repro.errors import ConfigurationError
from repro.rubis.database import BufferPool, RubisDatabase
from repro.rubis.demand import DemandSampler, DemandScaling
from repro.rubis.deployment import DeploymentConfig
from repro.rubis.interactions import INTERACTIONS
from repro.rubis.memorymodel import MemoryProfile
from repro.rubis.transitions import TransitionMatrix, browsing_matrix
from repro.experiments.paper_values import (
    BARE_METAL_TARGETS,
    DOM0_TARGETS,
    PAPER_CLIENTS,
    PAPER_RUN_DURATION_S,
    PAPER_THINK_TIME_S,
    VIRTUALIZED_TARGETS,
    SeriesTargets,
)
from repro.units import KB, MB, SAMPLE_PERIOD_S
from repro.virt.hypervisor import DEFAULT_EPOCH_S
from repro.virt.overhead import OverheadModel

#: Closed-loop throughput (requests/s); response time << think time.
THROUGHPUT_RPS = PAPER_CLIENTS / PAPER_THINK_TIME_S
#: Requests per 2-second sample.
REQUESTS_PER_SAMPLE = THROUGHPUT_RPS * SAMPLE_PERIOD_S

#: Bare-metal accounting factors (journal/frame overhead visible to the
#: host's sysstat; in the virtualized environment these land in dom0).
BARE_DISK_ACCOUNTING = 1.55
BARE_NET_ACCOUNTING = 1.04


@dataclass
class CalibratedEnvironment:
    """Everything a deployment needs for one environment."""

    name: str
    deployment_config: DeploymentConfig
    overhead: Optional[OverheadModel] = None
    web_os_model: Optional[OsActivityModel] = None
    db_os_model: Optional[OsActivityModel] = None


#: Buffer-pool skew used everywhere (see DeploymentConfig for rationale).
POOL_HOT_FRACTION = 0.05
POOL_HOT_ACCESS = 0.99


def _expected_with(scaling: DemandScaling, matrix: TransitionMatrix,
                   database: RubisDatabase, buffer_pool_bytes: float):
    """Expected per-request demand under ``scaling`` (deterministic)."""
    pool = BufferPool(
        capacity_bytes=buffer_pool_bytes,
        database=database,
        hot_fraction=POOL_HOT_FRACTION,
        hot_access_probability=POOL_HOT_ACCESS,
    )
    sampler = DemandSampler(scaling, pool, np.random.default_rng(0))
    return sampler.expected_demand(matrix)


def _db_request_fraction(
    matrix: TransitionMatrix, pi: Optional[Dict[str, float]] = None
) -> float:
    """Stationary fraction of requests that reach the database tier."""
    if pi is None:
        pi = matrix.stationary_distribution()
    return sum(
        probability
        for state, probability in pi.items()
        if INTERACTIONS[state].db_queries > 0
    )


def _commit_fraction(
    matrix: TransitionMatrix, pi: Optional[Dict[str, float]] = None
) -> float:
    """Stationary fraction of requests that commit writes."""
    if pi is None:
        pi = matrix.stationary_distribution()
    return sum(
        probability
        for state, probability in pi.items()
        if INTERACTIONS[state].writes
    )


def _solve_scaling(
    targets: Dict[str, SeriesTargets],
    matrix: TransitionMatrix,
    database: RubisDatabase,
    buffer_pool_bytes: float,
    disk_accounting: float = 1.0,
    net_accounting: float = 1.0,
    cpu_overhead_per_sample: Dict[str, float] = None,
    os_log_kb_per_sample: float = 0.0,
) -> DemandScaling:
    """Invert the expectation to hit the per-tier targets.

    ``cpu_overhead_per_sample`` holds per-tier cycles that the context
    itself will add (bare-metal OS base + syscalls); they are subtracted
    before solving so the *measured* series hits the target.
    ``os_log_kb_per_sample`` is subtracted from the disk targets for the
    same reason.
    """
    cpu_overhead_per_sample = cpu_overhead_per_sample or {"web": 0.0, "db": 0.0}
    web_target = targets["web"]
    db_target = targets["db"]

    # Pass 1: unit scaling to learn the stationary profile expectations.
    base = DemandScaling(
        web_cycles_per_unit=1.0,
        db_cycles_per_unit=1.0,
        response_scale=1.0,
        db_net_scale=1.0,
        web_log_bytes_per_request=1.0,
        spill_bytes_per_row=1.0,
    )
    expected = _expected_with(base, matrix, database, buffer_pool_bytes)

    # CPU: cycles per request = (target - context overhead) / requests.
    web_cpu_per_request = (
        (web_target.cpu_cycles - cpu_overhead_per_sample["web"])
        / REQUESTS_PER_SAMPLE
    )
    db_cpu_per_request = (
        (db_target.cpu_cycles - cpu_overhead_per_sample["db"])
        / REQUESTS_PER_SAMPLE
    )
    if web_cpu_per_request <= 0 or db_cpu_per_request <= 0:
        raise ConfigurationError("CPU targets below context overhead")
    web_cycles_per_unit = web_cpu_per_request / expected.web_cycles
    db_cycles_per_unit = db_cpu_per_request / expected.db_cycles

    # Web disk: access log + session writes dominate the tier's traffic.
    web_disk_per_request = (
        (web_target.disk_kb / disk_accounting - os_log_kb_per_sample)
        * KB / REQUESTS_PER_SAMPLE
    )
    web_log_bytes_per_request = max(web_disk_per_request, 0.0)

    # DB network: scale query+result bytes to the db-tier net target.
    db_net_per_request = (
        db_target.net_kb / net_accounting * KB / REQUESTS_PER_SAMPLE
    )
    qr_expected = expected.query_bytes + expected.result_bytes
    db_net_scale = db_net_per_request / qr_expected

    # Web network: request + response + query + result.
    web_net_per_request = (
        web_target.net_kb / net_accounting * KB / REQUESTS_PER_SAMPLE
    )
    response_per_request = (
        web_net_per_request - expected.request_bytes - db_net_per_request
    )
    if response_per_request <= 0:
        raise ConfigurationError("web net target too small for the mix")
    response_scale = response_per_request / expected.response_bytes

    # DB disk: buffer-pool miss reads are fixed by the pool model; the
    # filesort spill absorbs the remainder of the target.
    db_disk_per_request = (
        (db_target.disk_kb / disk_accounting - os_log_kb_per_sample)
        * KB / REQUESTS_PER_SAMPLE
    )
    read_expected = expected.db_disk_read_bytes
    # Expected write bytes split: the rows_written part keeps the default
    # per-row cost; the spill coefficient absorbs the remaining budget.
    rows_written_part = 0.0
    spill_rows_part = 0.0
    pi = matrix.stationary_distribution()
    for state, probability in pi.items():
        ix = INTERACTIONS[state]
        rows_written_part += (
            probability * ix.rows_written * base.db_write_bytes_per_row
        )
        if ix.rows_touched >= base.spill_threshold_rows:
            spill_rows_part += probability * ix.rows_touched
    spill_budget = db_disk_per_request - read_expected - rows_written_part
    if spill_rows_part > 0:
        spill_bytes_per_row = max(spill_budget / spill_rows_part, 0.0)
    else:
        spill_bytes_per_row = 0.0

    return base.rescaled(
        web_cycles_per_unit=web_cycles_per_unit,
        db_cycles_per_unit=db_cycles_per_unit,
        response_scale=response_scale,
        db_net_scale=db_net_scale,
        web_log_bytes_per_request=web_log_bytes_per_request,
        spill_bytes_per_row=spill_bytes_per_row,
    )


def _memory_profile(
    target_mean_mb: float,
    per_session_kb: float,
    cache_growth_mb: float,
    cache_ramp_s: float,
    noise_mb: float,
    jump_mb: float,
    max_jumps: int,
    clients: int = PAPER_CLIENTS,
    run_duration_s: float = PAPER_RUN_DURATION_S,
    jump_allowance_mb: float = 0.0,
) -> MemoryProfile:
    """Solve the base level so the run-mean hits ``target_mean_mb``.

    Mean of the warm-up ramp over a run of length T with time constant
    tau: growth * (1 - tau/T * (1 - exp(-T/tau))).
    """
    tau, T = cache_ramp_s, run_duration_s
    ramp_mean = cache_growth_mb * (1.0 - tau / T * (1.0 - np.exp(-T / tau)))
    sessions_mb = clients * per_session_kb / 1024.0
    base = target_mean_mb - ramp_mean - sessions_mb - jump_allowance_mb
    if base <= 0:
        raise ConfigurationError(
            f"memory target {target_mean_mb} MB infeasible: base {base:.1f}"
        )
    return MemoryProfile(
        base_mb=base,
        per_session_kb=per_session_kb,
        cache_growth_mb=cache_growth_mb,
        cache_ramp_s=cache_ramp_s,
        noise_mb=noise_mb,
        jump_mb=jump_mb,
        max_jumps=max_jumps,
    )


def _solve_net_cycles_per_byte(
    overhead: OverheadModel,
    expected,
    db_fraction: float,
    commit_fraction: float,
) -> float:
    """Solve the dom0 net-proxy cost so dom0 CPU hits its target.

    Target (cycles/s) = base + epochs + hypercalls + commits
                        + disk_proxy + net_proxy
    with everything except net_proxy fixed; see the module docstring.
    """
    target_per_s = DOM0_TARGETS.cpu_cycles / SAMPLE_PERIOD_S
    epochs_per_s = (1.0 / DEFAULT_EPOCH_S) * (
        overhead.sched_cycles_per_epoch_per_domain * 2.5
    )
    hypercalls_per_s = (
        THROUGHPUT_RPS * (1.0 + db_fraction)
        * overhead.hypercall_cycles_per_request
    )
    commits_per_s = (
        THROUGHPUT_RPS * commit_fraction * overhead.commit_cycles
    )
    vm_disk_bytes_per_s = THROUGHPUT_RPS * (
        expected.db_disk_read_bytes
        + expected.db_disk_write_bytes
        + expected.web_disk_write_bytes
    )
    disk_proxy_per_s = (
        vm_disk_bytes_per_s
        * overhead.disk_amplification
        * overhead.disk_cycles_per_byte
    )
    vm_net_bytes_per_s = THROUGHPUT_RPS * (
        expected.request_bytes
        + expected.response_bytes
        + 2.0 * (expected.query_bytes + expected.result_bytes)
    )
    physical_net_bytes_per_s = vm_net_bytes_per_s * overhead.net_amplification
    remainder = target_per_s - (
        overhead.dom0_base_cycles_per_s
        + epochs_per_s
        + hypercalls_per_s
        + commits_per_s
        + disk_proxy_per_s
    )
    if remainder <= 0:
        raise ConfigurationError(
            "dom0 CPU target leaves no budget for the net proxy"
        )
    return remainder / physical_net_bytes_per_s


def calibrate_virtualized(
    database: Optional[RubisDatabase] = None,
    buffer_pool_bytes: float = 384 * MB,
) -> CalibratedEnvironment:
    """Calibrated configuration for the virtualized environment."""
    database = database or RubisDatabase()
    matrix = browsing_matrix()
    scaling = _solve_scaling(
        VIRTUALIZED_TARGETS, matrix, database, buffer_pool_bytes
    )
    expected = _expected_with(scaling, matrix, database, buffer_pool_bytes)

    overhead = OverheadModel(
        # Dom0 RAM: base solved from base = target - share * guest_used.
        dom0_base_memory_bytes=(
            DOM0_TARGETS.mem_used_mb
            - 0.70 * (VIRTUALIZED_TARGETS["web"].mem_used_mb
                      + VIRTUALIZED_TARGETS["db"].mem_used_mb)
        ) * MB,
        dom0_memory_per_vm_byte=0.70,
        # Dom0 disk: amplification solved so dom0 disk hits its target:
        # amp = (dom0_disk - dom0_logs) / vm_disk_aggregate.
        disk_amplification=(
            (DOM0_TARGETS.disk_kb
             - 15_000.0 / KB * SAMPLE_PERIOD_S)
            / (VIRTUALIZED_TARGETS["web"].disk_kb
               + VIRTUALIZED_TARGETS["db"].disk_kb)
        ),
        # Dom0 net: amplification solved the same way (R2 net = 0.98).
        net_amplification=(
            DOM0_TARGETS.net_kb
            / (VIRTUALIZED_TARGETS["web"].net_kb
               + VIRTUALIZED_TARGETS["db"].net_kb)
        ),
    )
    pi = matrix.stationary_distribution()
    net_cycles = _solve_net_cycles_per_byte(
        overhead,
        expected,
        db_fraction=_db_request_fraction(matrix, pi),
        commit_fraction=_commit_fraction(matrix, pi),
    )
    overhead = OverheadModel(
        dom0_base_memory_bytes=overhead.dom0_base_memory_bytes,
        dom0_memory_per_vm_byte=overhead.dom0_memory_per_vm_byte,
        disk_amplification=overhead.disk_amplification,
        net_amplification=overhead.net_amplification,
        net_cycles_per_byte=net_cycles,
    )

    web_memory = _memory_profile(
        target_mean_mb=VIRTUALIZED_TARGETS["web"].mem_used_mb,
        per_session_kb=60.0,
        cache_growth_mb=150.0,
        cache_ramp_s=300.0,
        noise_mb=6.0,
        jump_mb=110.0,
        max_jumps=3,
        jump_allowance_mb=80.0,
    )
    db_memory = _memory_profile(
        target_mean_mb=VIRTUALIZED_TARGETS["db"].mem_used_mb,
        per_session_kb=4.0,
        cache_growth_mb=60.0,
        cache_ramp_s=250.0,
        noise_mb=3.0,
        jump_mb=0.0,
        max_jumps=0,
    )
    config = DeploymentConfig(
        scaling=scaling,
        web_memory=web_memory,
        db_memory=db_memory,
        buffer_pool_bytes=buffer_pool_bytes,
        database=database,
    )
    return CalibratedEnvironment(
        name="virtualized", deployment_config=config, overhead=overhead
    )


def calibrate_bare_metal(
    database: Optional[RubisDatabase] = None,
    buffer_pool_bytes: float = 384 * MB,
) -> CalibratedEnvironment:
    """Calibrated configuration for the bare-metal environment."""
    database = database or RubisDatabase()
    matrix = browsing_matrix()
    web_os = OsActivityModel(
        disk_accounting_factor=BARE_DISK_ACCOUNTING,
        net_accounting_factor=BARE_NET_ACCOUNTING,
    )
    db_os = OsActivityModel(
        disk_accounting_factor=BARE_DISK_ACCOUNTING,
        net_accounting_factor=BARE_NET_ACCOUNTING,
    )
    db_fraction = _db_request_fraction(matrix)
    cpu_overhead = {
        "web": (
            web_os.base_cycles_per_s * SAMPLE_PERIOD_S
            + web_os.syscall_cycles_per_request * REQUESTS_PER_SAMPLE
        ),
        "db": (
            db_os.base_cycles_per_s * SAMPLE_PERIOD_S
            + db_os.syscall_cycles_per_request
            * REQUESTS_PER_SAMPLE * db_fraction
        ),
    }
    os_log_kb_per_sample = (
        web_os.log_bytes_per_s * SAMPLE_PERIOD_S / KB
    )
    scaling = _solve_scaling(
        BARE_METAL_TARGETS,
        matrix,
        database,
        buffer_pool_bytes,
        disk_accounting=BARE_DISK_ACCOUNTING,
        net_accounting=BARE_NET_ACCOUNTING,
        cpu_overhead_per_sample=cpu_overhead,
        os_log_kb_per_sample=os_log_kb_per_sample,
    )
    web_memory = _memory_profile(
        target_mean_mb=BARE_METAL_TARGETS["web"].mem_used_mb,
        per_session_kb=60.0,
        cache_growth_mb=150.0,
        cache_ramp_s=300.0,
        noise_mb=7.0,
        jump_mb=110.0,
        max_jumps=3,
        jump_allowance_mb=80.0,
    )
    db_memory = _memory_profile(
        target_mean_mb=BARE_METAL_TARGETS["db"].mem_used_mb,
        per_session_kb=4.0,
        cache_growth_mb=80.0,
        cache_ramp_s=250.0,
        noise_mb=4.0,
        jump_mb=0.0,
        max_jumps=0,
    )
    config = DeploymentConfig(
        scaling=scaling,
        web_memory=web_memory,
        db_memory=db_memory,
        buffer_pool_bytes=buffer_pool_bytes,
        database=database,
    )
    return CalibratedEnvironment(
        name="bare-metal",
        deployment_config=config,
        web_os_model=web_os,
        db_os_model=db_os,
    )
