"""Experiment scenarios: the paper's runs as declarative objects.

A scenario = (environment, workload mix, duration, seed).  The paper's
matrix is two environments x five compositions, profiled for ~20
minutes.  Full-length runs are expensive for CI, so the default duration
is 240 s (120 samples); set ``REPRO_FULL_DURATION=1`` to use the paper's
1200 s.

Burst windows (the RAM-jump driver, see
:mod:`repro.rubis.memorymodel`) are expressed as fractions of the run
duration so short runs exhibit the same qualitative pattern:

* virtualized browsing: jumps in the middle/late run (Figure 2 left),
* virtualized bidding: no jumps — smooth curve (Figure 2 middle),
* bare-metal bidding: jumps *early* (Figure 6, "the jumps happen
  earlier in time than those in the virtualized system"),
* bare-metal browsing: jumps mid-run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.control.spec import ControllerSpec
from repro.errors import ConfigurationError
from repro.faults.spec import FLASH_CROWD, CRASH, CAP_THEFT, FaultSchedule, FaultSpec
from repro.placement.spec import (
    FIRST_FIT,
    FleetSpec,
    validate_placement_policy,
)
from repro.rubis.workload import (
    PAPER_COMPOSITIONS,
    BurstSchedule,
    SessionType,
    WorkloadMix,
)
from repro.traffic.shapes import FlashCrowdShape, RateShape
from repro.traffic.spec import TrafficSpec
from repro.workloads.base import TenantSpec

VIRTUALIZED = "virtualized"
BARE_METAL = "bare-metal"
ENVIRONMENTS = (VIRTUALIZED, BARE_METAL)

CLASSIC_ENGINE = "classic"
BATCHED_ENGINE = "batched"
ENGINES = (CLASSIC_ENGINE, BATCHED_ENGINE)

#: CI-friendly default run length; the paper used ~1200 s.
SHORT_DURATION_S = 240.0
FULL_DURATION_S = 1200.0


def default_duration_s() -> float:
    """240 s by default; the paper's 1200 s with REPRO_FULL_DURATION=1."""
    if os.environ.get("REPRO_FULL_DURATION", "").strip() in ("1", "true", "yes"):
        return FULL_DURATION_S
    return SHORT_DURATION_S


@dataclass(frozen=True)
class Scenario:
    """One experiment run specification.

    ``traffic`` selects the traffic driver: None (or a closed-kind
    spec) keeps the paper's closed-loop client population; any
    open-loop :class:`~repro.traffic.spec.TrafficSpec` replaces it with
    an arrival-process-driven :class:`~repro.traffic.driver.
    OpenLoopDriver`.

    ``tenants`` adds co-resident VMs to the testbed: each
    :class:`~repro.workloads.base.TenantSpec` becomes one extra domain
    (e.g. a MapReduce batch VM) on the *same* hypervisor as the web
    tiers, sharing the credit scheduler and dom0 I/O backends.
    Consolidation requires the virtualized environment.

    ``scale`` records the stress multiplier the factory applied to
    horizon and clients, so two scenarios that differ only in how they
    were scaled never share a cache fingerprint.

    ``controller`` attaches an elastic controller
    (:class:`~repro.control.spec.ControllerSpec`) that observes live
    telemetry and resizes the web VMs mid-run (``kind="static"`` =
    same initial sizing, never resized — the autoscaling baseline).
    Controllers are a hypervisor feature, so they require the
    virtualized environment; a controller-bearing testbed also enables
    the hypervisor's intra-VM VCPU-contention refinement.
    """

    name: str
    environment: str
    mix: WorkloadMix
    duration_s: float
    seed: int = 42
    ramp_s: float = 10.0
    traffic: Optional[TrafficSpec] = None
    scale: float = 1.0
    tenants: Tuple[TenantSpec, ...] = ()
    controller: Optional[ControllerSpec] = None
    #: Physical servers in the fleet (1 = the paper's single host; >1
    #: builds a multi-server testbed through the placement engine).
    servers: int = 1
    #: Placement policy assigning VMs to servers (multi-server only).
    placement: str = FIRST_FIT
    #: Fleet controller spec: watches per-server signals and triggers
    #: rebalancing live migrations mid-run (requires ``servers >= 2``).
    fleet: Optional[FleetSpec] = None
    #: Deterministic fault schedule (:class:`~repro.faults.spec.
    #: FaultSchedule`): injected mid-run by a ``FaultController``
    #: riding the event loop.  None (the default) adds *nothing* to the
    #: run — fault-free scenarios keep bit-identical traces.
    faults: Optional[FaultSchedule] = None
    #: Request engine: ``"classic"`` (per-event lifecycles, the default,
    #: bit-identical to the pre-epoch-2 traces) or ``"batched"`` (array
    #: cohort lifecycles, equivalent in distribution; see
    #: :mod:`repro.rubis.batched`).
    engine: str = "classic"
    #: Request-trace sampling rate in [0, 1] (see
    #: :mod:`repro.obs.tracing`).  0 (the default) builds no tracing
    #: machinery and keeps bit-identical traces; a positive rate samples
    #: that fraction of requests deterministically (RNG-free, keyed on
    #: seed and request identity) on either engine.
    trace_sample: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigurationError(
                f"trace_sample {self.trace_sample} outside [0, 1]"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.environment not in ENVIRONMENTS:
            raise ConfigurationError(
                f"unknown environment {self.environment!r}; "
                f"choose from {ENVIRONMENTS}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if self.tenants:
            if self.environment != VIRTUALIZED:
                raise ConfigurationError(
                    "co-resident tenants require the virtualized "
                    "environment (consolidation is a hypervisor feature)"
                )
            names = [t.name for t in self.tenants]
            if len(set(names)) != len(names):
                raise ConfigurationError(
                    f"duplicate tenant names: {names}"
                )
        has_controller = self.controller is not None or any(
            t.controller is not None for t in self.tenants
        )
        if has_controller and self.environment != VIRTUALIZED:
            raise ConfigurationError(
                "elastic controllers require the virtualized environment "
                "(resizing is a hypervisor feature)"
            )
        if self.servers < 1:
            raise ConfigurationError("servers must be >= 1")
        validate_placement_policy(self.placement)
        if self.servers > 1 and self.environment != VIRTUALIZED:
            raise ConfigurationError(
                "multi-server fleets require the virtualized environment "
                "(placement is a hypervisor-layer feature)"
            )
        if self.fleet is not None and self.servers < 2:
            raise ConfigurationError(
                "a fleet controller needs at least two servers to "
                "migrate between"
            )
        if self.faults is not None:
            if self.environment != VIRTUALIZED:
                raise ConfigurationError(
                    "fault injection requires the virtualized environment "
                    "(injectors actuate hypervisor and fleet state)"
                )
            if any(f.kind == FLASH_CROWD for f in self.faults) and not (
                self.traffic is not None and self.traffic.open_loop
            ):
                raise ConfigurationError(
                    "a flash_crowd fault composes into an open-loop "
                    "traffic envelope; this scenario is closed-loop"
                )

    @property
    def controlled(self) -> bool:
        """True when any elastic controller runs in this scenario."""
        return self.controller is not None or any(
            t.controller is not None for t in self.tenants
        )

    @property
    def open_loop(self) -> bool:
        """True when an open-loop traffic spec drives this scenario."""
        return self.traffic is not None and self.traffic.open_loop

    @property
    def consolidated(self) -> bool:
        """True when co-resident tenant VMs share the hypervisor."""
        return bool(self.tenants)

    @property
    def multi_server(self) -> bool:
        """True when the testbed spans more than one physical server."""
        return self.servers > 1

    @property
    def cache_key(self) -> tuple:
        """Full behavioural fingerprint of the run this describes.

        Covers every field that changes the run's traces: the mix
        (including its burst schedules), the traffic spec, the scale
        knob and the tenant set — so memoized results can never be
        served across scenarios that would simulate differently.
        """
        bursts = tuple(
            sorted(
                (kind.value, sched.count, sched.window_s, sched.fraction)
                for kind, sched in self.mix.burst_schedules.items()
            )
        )
        return (
            self.name,
            self.environment,
            self.mix.name,
            self.mix.browse_fraction,
            self.mix.clients,
            self.mix.think_time_s,
            bursts,
            self.duration_s,
            self.seed,
            self.ramp_s,
            self.traffic,
            self.scale,
            self.tenants,
            self.controller,
            self.servers,
            self.placement,
            self.fleet,
            self.faults,
            self.engine,
            self.trace_sample,
        )

    @property
    def batched(self) -> bool:
        """True when the array-native request engine drives this run."""
        return self.engine == BATCHED_ENGINE

    @property
    def faulted(self) -> bool:
        """True when a fault schedule is injected into this scenario."""
        return self.faults is not None


def _burst_schedules(
    environment: str, duration_s: float
) -> Dict[str, Dict[SessionType, BurstSchedule]]:
    """Burst windows per (environment, composition name)."""
    T = duration_s
    virt_browse = BurstSchedule(count=2, window_s=(0.35 * T, 0.80 * T),
                                fraction=0.85)
    bare_browse = BurstSchedule(count=2, window_s=(0.30 * T, 0.70 * T),
                                fraction=0.85)
    bare_bid = BurstSchedule(count=2, window_s=(0.10 * T, 0.30 * T),
                             fraction=0.85)
    if environment == VIRTUALIZED:
        return {
            "browsing": {SessionType.BROWSE: virt_browse},
            "bidding": {},  # smooth bid RAM in the virtualized env (Q2)
            "blend": {SessionType.BROWSE: virt_browse},
        }
    return {
        "browsing": {SessionType.BROWSE: bare_browse},
        "bidding": {SessionType.BID: bare_bid},
        "blend": {
            SessionType.BROWSE: bare_browse,
            SessionType.BID: bare_bid,
        },
    }


def scenario(
    environment: str,
    composition: str,
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    scale: float = 1.0,
) -> Scenario:
    """Build a scenario for one of the paper's compositions.

    Args:
        environment: "virtualized" or "bare-metal".
        composition: a key of
            :data:`repro.rubis.workload.PAPER_COMPOSITIONS`.
        duration_s: run length (defaults to :func:`default_duration_s`).
        seed: root seed for all random streams.
        clients: override the 1000-client population (e.g. sweeps).
        scale: stress multiplier — stretches the horizon *and* the
            client population by this factor (million-event runs:
            ``scale=10`` is ~10x the events of the paper's setup).
            Applied after ``duration_s``/``clients`` overrides.
    """
    if composition not in PAPER_COMPOSITIONS:
        raise ConfigurationError(
            f"unknown composition {composition!r}; known: "
            f"{sorted(PAPER_COMPOSITIONS)}"
        )
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    duration = duration_s if duration_s is not None else default_duration_s()
    mix = PAPER_COMPOSITIONS[composition]
    if clients is not None:
        mix = WorkloadMix(
            name=mix.name,
            browse_fraction=mix.browse_fraction,
            think_time_s=mix.think_time_s,
            clients=clients,
        )
    if scale != 1.0:
        duration = duration * scale
        mix = WorkloadMix(
            name=mix.name,
            browse_fraction=mix.browse_fraction,
            think_time_s=mix.think_time_s,
            clients=max(1, round(mix.clients * scale)),
        )
    schedules = _burst_schedules(environment, duration)
    kind = composition if composition in ("browsing", "bidding") else "blend"
    mix = mix.with_bursts(schedules[kind])
    return Scenario(
        name=f"{environment}/{composition}",
        environment=environment,
        mix=mix,
        duration_s=duration,
        seed=seed,
        scale=scale,
    )


def open_loop_scenario(
    environment: str = VIRTUALIZED,
    composition: str = "browsing",
    kind: str = "poisson",
    rate_rps: float = None,
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    scale: float = 1.0,
    shape: Optional[RateShape] = None,
    session_budget: int = None,
    traffic: Optional[TrafficSpec] = None,
) -> Scenario:
    """An open-loop variant of one of the paper's scenarios.

    The workload *content* (composition, demands, environment) is the
    paper's; only the traffic driver changes: ``kind`` selects the
    arrival process (``poisson``, ``mmpp``, ``bmodel`` or
    ``trace:<path>`` — the CLI token syntax), ``rate_rps`` its base
    intensity (default: the closed-loop long-run rate, so open-vs-
    closed runs are directly comparable), ``shape`` an optional
    deterministic envelope, and ``session_budget`` the overload
    shedding cap.  Pass a full ``traffic`` spec to override everything.
    """
    base = scenario(
        environment,
        composition,
        duration_s=duration_s,
        seed=seed,
        clients=clients,
        scale=scale,
    )
    if traffic is None:
        parsed = TrafficSpec.from_cli_string(
            kind, rate_rps=rate_rps, session_budget=session_budget
        )
        traffic = replace(parsed, shape=shape)
    if not traffic.open_loop:
        raise ConfigurationError(
            "open_loop_scenario needs an open-loop traffic kind"
        )
    # Closed-loop burst waves synchronize *thinking* clients; they are
    # meaningless without a think loop, so the open-loop mix drops them
    # (the shape schedule is the open-loop burst mechanism).
    mix = base.mix.with_bursts({})
    return replace(
        base,
        name=f"{base.name}/open-{traffic.kind}",
        mix=mix,
        traffic=traffic,
    )


def flash_crowd_scenario(
    environment: str = VIRTUALIZED,
    composition: str = "browsing",
    rate_rps: float = None,
    magnitude: float = 20.0,
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    session_budget: int = 2000,
    requests_per_session: int = 5,
    kind: str = "poisson",
) -> Scenario:
    """An open-loop flash crowd: a ``magnitude``-times surge in visits.

    ``rate_rps`` is the baseline offered *request* rate (default: the
    closed-loop steady-state rate, ``clients / think_time``); arrivals
    are whole visits of ``requests_per_session`` think-separated
    requests, so the session-arrival rate is ``rate_rps /
    requests_per_session``.  The surge peaks at 40 % of the horizon
    after a rise of 8 % of the horizon and decays with a 25 %-of-
    horizon time constant — duration-relative like the closed-loop
    burst windows, so short CI runs and full-length runs show the same
    qualitative dynamics.  With the default magnitude the offered
    request rate averages >= 5x the closed-loop steady state over the
    horizon (~20x at the peak) — intensity a closed loop structurally
    cannot offer.  The ``session_budget`` is the front end's concurrent-
    visit cap (MaxClients): the surge piles up thinking sessions far
    beyond it, making overload shedding observable in the run report.
    """
    duration = duration_s if duration_s is not None else default_duration_s()
    shape = FlashCrowdShape(
        peak_time_s=0.40 * duration,
        magnitude=magnitude,
        rise_s=0.08 * duration,
        decay_s=0.25 * duration,
    )
    base = scenario(
        environment,
        composition,
        duration_s=duration,
        seed=seed,
        clients=clients,
    )
    request_rate = (
        rate_rps
        if rate_rps is not None
        else base.mix.clients / base.mix.think_time_s
    )
    traffic = TrafficSpec(
        kind=kind,
        rate_rps=request_rate / requests_per_session,
        shape=shape,
        session_budget=session_budget,
        requests_per_session=requests_per_session,
    )
    spec = open_loop_scenario(
        environment,
        composition,
        duration_s=duration,
        seed=seed,
        clients=clients,
        traffic=traffic,
    )
    return replace(spec, name=f"{environment}/{composition}/flash-crowd")


def consolidated_scenario(
    composition: str = "browsing",
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    scale: float = 1.0,
    tenants: Optional[Sequence[TenantSpec]] = None,
    name: Optional[str] = None,
) -> Scenario:
    """A multi-tenant run: the web workload plus co-resident batch VMs.

    The web tiers keep the paper's closed-loop setup; every tenant spec
    adds one more VM on the *same* hypervisor, so batch CPU demand
    contends in the credit scheduler and batch I/O shares the dom0
    split drivers — the co-location interference that motivates
    characterizing workloads on virtualized servers in the first place.
    """
    base = scenario(
        VIRTUALIZED,
        composition,
        duration_s=duration_s,
        seed=seed,
        clients=clients,
        scale=scale,
    )
    tenant_tuple = tuple(tenants) if tenants is not None else (TenantSpec(),)
    if not tenant_tuple:
        raise ConfigurationError(
            "consolidated_scenario needs at least one tenant"
        )
    label = name or (
        f"{base.name}+{'+'.join(t.name for t in tenant_tuple)}"
    )
    return replace(base, name=label, tenants=tenant_tuple)


def consolidated_web_batch_scenario(
    duration_s: float = None, seed: int = 42, clients: int = None
) -> Scenario:
    """The canonical consolidation run: browsing web VM + sort batch VM."""
    return consolidated_scenario(
        "browsing",
        duration_s=duration_s,
        seed=seed,
        clients=clients,
        name="consolidated_web_batch",
    )


def autoscaled_flash_crowd_scenario(
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    controller: str = "threshold",
    session_budget: int = None,
) -> Scenario:
    """The elasticity experiment: a flash crowd against a small web VM.

    The static provisioning is *rightsized for the calm load*: the web
    and db VMs start at a fractional-core CPU cap sized to ~1.2x the
    calm request rate (0.25 cores at the paper's 1000 clients, scaled
    with the client count) on one VCPU, with 1 GB of ballooned memory
    whose front-end session capacity (MaxClients) is
    ``session_budget`` concurrent visits.  Shed visits retry twice
    with exponential backoff before abandoning (the PR-2 follow-up
    semantics).

    When the flash crowd hits, the static sizing fails along both
    axes: the budget sheds most of the surge, and the visits it *does*
    admit exceed the capped CPU capacity, so latency collapses too.
    The ``controller`` policy (threshold / pid / predictive) grows the
    VMs out of both failure modes — CPU cap and VCPUs to 8x the calm
    sizing, memory to 3 GB with the session budget following at
    ``session_budget`` per GB — and shrinks them again after the
    surge.  ``controller="static"`` is the never-resized baseline
    every comparison runs against: same initial sizing, same seed,
    same offered arrival stream.
    """
    duration = duration_s if duration_s is not None else default_duration_s()
    base_clients = clients if clients is not None else 1000
    budget = session_budget
    if budget is None:
        budget = max(50, 2 * base_clients)
    base = flash_crowd_scenario(
        duration_s=duration,
        seed=seed,
        clients=clients,
        session_budget=budget,
    )
    traffic = replace(base.traffic, retry_max=2, retry_backoff_s=2.0)
    # Capacity bands scale with the client population so the
    # calm-load/surge-load geometry (and therefore the qualitative
    # static-vs-elastic outcome) is the same at CI scale and at the
    # paper's 1000 clients.
    load_scale = base_clients / 1000.0
    min_cap = 0.25 * load_scale
    max_cap = 2.0 * load_scale
    spec = ControllerSpec(
        kind=controller,
        domains=("web-vm", "db-vm"),
        min_cap_cores=min_cap,
        max_cap_cores=max_cap,
        step_cores=(max_cap - min_cap) / 7.0,
        min_vcpus=1,
        max_vcpus=2,
        balloon_min_mb=1024.0,
        balloon_max_mb=3072.0,
        balloon_step_mb=256.0,
        sessions_per_gb=float(budget),
        p95_high_ms=10.0,
        p95_low_ms=4.0,
        shed_high=0.02,
        p95_target_ms=6.0,
    )
    name = "autoscaled_flash_crowd"
    if controller == "static":
        name += "_static"
    return replace(
        base,
        name=name,
        traffic=traffic,
        controller=spec,
    )


def autoscaled_consolidated_scenario(
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    controller: str = "threshold",
) -> Scenario:
    """Elastic web VMs on a consolidated server (closed-loop clients).

    The canonical consolidation run (browsing web tiers + a sort batch
    VM on one hypervisor) with the web VMs starting at a fractional
    CPU cap.  Under co-tenant contention the capped tiers inflate the
    web p95 by an order of magnitude; the controller restores it by
    growing the caps (and boosting the credit-scheduler weight) while
    the SLO is violated, then releases capacity once calm.
    """
    base = consolidated_web_batch_scenario(
        duration_s=duration_s, seed=seed, clients=clients
    )
    # Batch jobs arrive every ~20 s and each burst inflates the capped
    # web tiers within seconds, so the policy scales up in one step and
    # holds capacity across bursts (long calm hysteresis) instead of
    # thrashing between them.
    spec = ControllerSpec(
        kind=controller,
        domains=("web-vm", "db-vm"),
        min_cap_cores=0.25,
        max_cap_cores=2.0,
        step_cores=0.25,
        min_vcpus=1,
        max_vcpus=2,
        weight_boost=1.0,
        p95_high_ms=50.0,
        p95_low_ms=10.0,
        up_step=1.0,
        down_step=0.1,
        calm_windows=15,
        p95_target_ms=40.0,
    )
    name = "autoscaled_consolidated"
    if controller == "static":
        name += "_static"
    return replace(base, name=name, controller=spec)


def fleet_consolidation_scenario(
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    servers: int = 2,
    placement: str = "priority",
) -> Scenario:
    """Fleet-level packing: the web pair plus two batch tenants on N servers.

    The canonical multi-server run: the placement engine builds one
    hypervisor per server and assigns the VMs by ``placement`` —
    ``priority`` (the default) spreads the latency-sensitive web pair
    away from the batch VMs, so the same workload that suffers
    order-of-magnitude p95 inflation when consolidated on one host
    runs interference-free on two.  Sweeping ``placement`` over
    firstfit/bestfit/balance/priority turns this into the packing-
    policy comparison the gray-box placement literature studies.
    """
    tenants = (
        TenantSpec(),
        TenantSpec(name="batch2", job="grep", input_mb=192.0, tasks=12),
    )
    base = consolidated_scenario(
        "browsing",
        duration_s=duration_s,
        seed=seed,
        clients=clients,
        tenants=tenants,
        name="fleet_consolidation",
    )
    return replace(base, servers=servers, placement=placement)


def migration_rebalance_scenario(
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    fleet: bool = True,
) -> Scenario:
    """Controller-driven live migration relieving co-location interference.

    Two servers, first-fit placement: the web pair *and* the batch
    tenant pack onto server 1 (the bin-packing outcome a consolidating
    cloud would produce), leaving server 2 idle.  The batch bursts
    inflate the web tier's p95 and CPU-ready time; the fleet
    controller watches exactly those signals and live-migrates the
    batch VM to server 2 — pre-copy traffic on both NICs, a
    stop-and-copy downtime, and an interference-free web tier
    afterwards.  ``fleet=False`` is the no-migration baseline: same
    placement, same seed, a watch-only controller
    (``FleetSpec(active=False)``) that records the same windowed
    signal series but never acts — so before/after comparisons read
    directly off aligned traces.
    """
    base = consolidated_scenario(
        "browsing",
        duration_s=duration_s,
        seed=seed,
        clients=clients,
        name="migration_rebalance" if fleet else "migration_rebalance_static",
    )
    # The batch tenant's ~20 s job cadence inflates web p95 within a
    # couple of windows; two hot windows (4 s) of either signal
    # trigger the one rebalancing migration this scenario needs.
    spec = FleetSpec(
        active=fleet,
        p95_high_ms=50.0,
        ready_high_s=0.02,
        hot_windows=2,
        cooldown_s=30.0,
        max_migrations=2,
    )
    return replace(
        base,
        servers=2,
        placement="firstfit",
        fleet=spec,
    )


def detect_and_evacuate_scenario(
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    crash_at_s: float = 60.0,
    fleet: bool = True,
) -> Scenario:
    """The canonical recovery drill: a server crash, detected and healed.

    Two servers, first-fit placement: the web pair *and* the batch
    tenant pack onto server 1, server 2 idles as the survivor.  At
    ``crash_at_s`` the fault scheduler collapses server 1's credit
    scheduler to a few percent of its cores (the crash model: the NIC
    stays up, so evacuation is possible — but every domain starves and
    CPU-ready time floods).  The fleet controller's failure detector
    (``fail_ready_s``) declares the server failed after two saturated
    windows and force-evacuates every guest — pinned web tiers
    included — to the survivor, serially over the migration wire.  Web
    p95 collapses at the crash and returns below the SLO once the web
    pair lands on server 2; :func:`repro.faults.scoring.score_run`
    reads detection/recovery times straight off the fleet's p95 series.

    ``fleet=False`` is the watch-only baseline: same crash, same seed,
    a passive fleet controller — the service never recovers, which is
    what gives the recovered run's billing delta its denominator.
    The voluntary-rebalance thresholds are set unreachably high and
    ``max_migrations=1``: the three forced evacuations exceeding that
    budget demonstrate that forced migrations are accounted outside it.
    """
    base = consolidated_scenario(
        "browsing",
        duration_s=duration_s,
        seed=seed,
        clients=clients,
        name="detect_and_evacuate" if fleet else "detect_and_evacuate_watch",
    )
    spec = FleetSpec(
        active=fleet,
        p95_high_ms=10_000.0,
        ready_high_s=1_000.0,
        hot_windows=2,
        cooldown_s=30.0,
        max_migrations=1,
        # Only a genuinely starved scheduler floods this much ready
        # time per window.  The survivor's post-evacuation drain
        # transient is structurally bounded near (guest vcpus + dom0
        # - cores) * window ≈ 4 core-s, so 6 keeps the healthy server
        # from being declared dead while it digests the backlog.
        fail_ready_s=6.0,
        fail_windows=2,
        # Evacuations run the wire at full line rate (1 Gbps) — a
        # recovery is not polite about guest bandwidth the way a
        # voluntary rebalance is.
        migration_bandwidth_bps=125e6,
    )
    # A 1 % residual: the scheduler is dark for real — demand exceeds
    # the remnant immediately, so ready time floods within a window or
    # two and throughput collapses until the evacuation lands.
    faults = FaultSchedule(
        (FaultSpec(kind=CRASH, at_s=crash_at_s, magnitude=0.01),)
    )
    return replace(
        base,
        servers=2,
        placement="firstfit",
        fleet=spec,
        faults=faults,
    )


def noisy_neighbor_theft_scenario(
    duration_s: float = None,
    seed: int = 42,
    clients: int = None,
    controller: str = "threshold",
    theft_at_s: float = 40.0,
) -> Scenario:
    """Cap theft on a consolidated server, healed by the elastic loop.

    The autoscaled consolidation run with a ``cap_theft`` fault: at
    ``theft_at_s`` a noisy neighbor steals the web VM's credit-
    scheduler cap down to 0.25 cores (permanently — the thief never
    gives it back).  An active controller re-actuates its level-mapped
    cap on the next decision tick, so the theft shows up as a one-to-
    two-window p95 spike; the ``static`` baseline never re-actuates,
    so the stolen cap — and the SLO violation — persist to the horizon.
    """
    base = autoscaled_consolidated_scenario(
        duration_s=duration_s, seed=seed, clients=clients,
        controller=controller,
    )
    # Steal down to 0.1 cores — *below* the controllers' 0.25-core
    # floor, so the static baseline (which never re-actuates) is left
    # genuinely under-provisioned, not just reset to its own minimum.
    faults = FaultSchedule(
        (
            FaultSpec(
                kind=CAP_THEFT,
                at_s=theft_at_s,
                target="web-vm",
                magnitude=0.1,
            ),
        )
    )
    name = "noisy_neighbor_theft"
    if controller == "static":
        name += "_static"
    return replace(base, name=name, faults=faults)


def flash_crowd_window(spec: Scenario) -> Tuple[float, float]:
    """The surge interval of a flash-crowd scenario, ``(start, end)``.

    From one rise before the peak to one decay constant after it —
    the window the autoscaling comparisons score p95 over.
    """
    shape = spec.traffic.shape if spec.traffic is not None else None
    if shape is None or not hasattr(shape, "peak_time_s"):
        raise ConfigurationError(
            f"scenario {spec.name!r} has no flash-crowd shape"
        )
    return (
        shape.peak_time_s - shape.rise_s,
        shape.peak_time_s + shape.decay_s,
    )


def paper_scenarios(duration_s: float = None, seed: int = 42) -> Dict[str, Scenario]:
    """The paper's full run matrix.

    Virtualized: all five compositions (Section 4.1 tested five and
    published browsing/bidding).  Bare metal: browsing and bidding
    (Section 4.2).
    """
    out = {}
    for composition in PAPER_COMPOSITIONS:
        out[f"virtualized/{composition}"] = scenario(
            VIRTUALIZED, composition, duration_s, seed
        )
    for composition in ("browsing", "bidding"):
        out[f"bare-metal/{composition}"] = scenario(
            BARE_METAL, composition, duration_s, seed
        )
    return out


def scenario_catalog(
    duration_s: float = None, seed: int = 42, clients: int = None
) -> Dict[str, Scenario]:
    """Every named scenario the CLI can run (``repro run --list``).

    The paper's seven-run matrix plus the extensions: the consolidated
    multi-tenant runs and the open-loop flash crowd.  ``clients``
    overrides the 1000-client population of every entry.
    """
    out = {}
    for name, spec in paper_scenarios(duration_s, seed).items():
        if clients is not None:
            environment, composition = name.split("/", 1)
            spec = scenario(
                environment, composition, duration_s, seed, clients=clients
            )
        out[name] = spec
    out["consolidated_web_batch"] = consolidated_web_batch_scenario(
        duration_s, seed, clients=clients
    )
    out["consolidated_bidding_batch"] = consolidated_scenario(
        "bidding",
        duration_s=duration_s,
        seed=seed,
        clients=clients,
        name="consolidated_bidding_batch",
    )
    flash = flash_crowd_scenario(
        duration_s=duration_s, seed=seed, clients=clients
    )
    out[flash.name] = flash
    for kind in ("threshold", "static"):
        auto_flash = autoscaled_flash_crowd_scenario(
            duration_s=duration_s, seed=seed, clients=clients,
            controller=kind,
        )
        out[auto_flash.name] = auto_flash
        auto_cons = autoscaled_consolidated_scenario(
            duration_s=duration_s, seed=seed, clients=clients,
            controller=kind,
        )
        out[auto_cons.name] = auto_cons
    out["fleet_consolidation"] = fleet_consolidation_scenario(
        duration_s=duration_s, seed=seed, clients=clients
    )
    for with_fleet in (True, False):
        rebalance = migration_rebalance_scenario(
            duration_s=duration_s, seed=seed, clients=clients,
            fleet=with_fleet,
        )
        out[rebalance.name] = rebalance
        drill = detect_and_evacuate_scenario(
            duration_s=duration_s, seed=seed, clients=clients,
            fleet=with_fleet,
        )
        out[drill.name] = drill
    for kind in ("threshold", "static"):
        theft = noisy_neighbor_theft_scenario(
            duration_s=duration_s, seed=seed, clients=clients,
            controller=kind,
        )
        out[theft.name] = theft
    return out
