"""Table regeneration: Table 1 and the ratio tables.

The paper's Table 1 is "a sample of performance metrics used to
characterize workload": metric name, collector, and description drawn
from the 518-metric catalogue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.monitoring.registry import (
    MetricRegistry,
    PERF_METRIC_COUNT,
    SYSSTAT_METRIC_COUNT,
    TOTAL_METRIC_COUNT,
    build_registry,
    table1_sample,
)


def table1_rows(
    registry: Optional[MetricRegistry] = None,
) -> List[Tuple[str, str, str, str]]:
    """(metric, source, unit, description) rows of the Table 1 sample."""
    return [
        (metric.name, metric.source.value, metric.unit, metric.description)
        for metric in table1_sample(registry)
    ]


def render_table1(registry: Optional[MetricRegistry] = None) -> str:
    """Text rendering of Table 1 plus the catalogue counts."""
    registry = registry or build_registry()
    rows = table1_rows(registry)
    name_width = max(len(r[0]) for r in rows)
    source_width = max(len(r[1]) for r in rows)
    lines = [
        "Table 1 — sample of performance metrics used to characterize "
        "workload",
        "=" * 72,
        f"{'metric':<{name_width}s}  {'collector':<{source_width}s}  "
        f"{'unit':<10s} description",
        "-" * 72,
    ]
    for name, source, unit, description in rows:
        lines.append(
            f"{name:<{name_width}s}  {source:<{source_width}s}  "
            f"{unit:<10s} {description}"
        )
    counts = registry.counts_by_source()
    lines.append("-" * 72)
    lines.append(
        f"catalogue: {counts['sysstat-hypervisor']} hypervisor sysstat + "
        f"{counts['sysstat-vm']} VM sysstat + {counts['perf']} perf = "
        f"{len(registry)} metrics "
        f"(paper: {SYSSTAT_METRIC_COUNT}+{SYSSTAT_METRIC_COUNT}+"
        f"{PERF_METRIC_COUNT}={TOTAL_METRIC_COUNT})"
    )
    return "\n".join(lines)
