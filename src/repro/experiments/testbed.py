"""Testbed assembly: from a declarative scenario to live workloads.

The :class:`TestbedBuilder` is the consolidation layer between the
scenario vocabulary and the simulated hardware:

* a **single-tenant** scenario (no ``tenants``) assembles exactly the
  paper's testbed — the calibrated
  :class:`~repro.rubis.deployment.VirtualizedDeployment` or
  :class:`~repro.rubis.deployment.BareMetalDeployment` with its private
  server(s) — via the same construction path the pre-refactor runner
  used, so existing scenarios keep bit-identical traces;
* a **multi-tenant** scenario builds one shared
  :class:`~repro.virt.hypervisor.Hypervisor` first, attaches the web
  VMs to it, then creates one extra domain per
  :class:`~repro.workloads.base.TenantSpec` and wires the tenant's
  workload (e.g. MapReduce) into that VM's
  :class:`~repro.apps.tier.VirtualizedContext`.  All tenants share the
  physical cores through the credit scheduler and the dom0 block/net
  backends — the two interference channels the consolidation scenarios
  measure.

The resulting :class:`Testbed` owns workload lifecycles and the probe
set (web/db, dom0, one namespace per tenant) the trace recorder
samples.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.apps.tier import VirtualizedContext
from repro.control.controller import ElasticController
from repro.errors import ConfigurationError
from repro.faults.controller import FaultController, PlannedFault
from repro.faults.injectors import build_injector
from repro.faults.spec import CAP_THEFT, FLASH_CROWD, FaultSpec
from repro.hardware.cluster import Cluster
from repro.monitoring.probes import Dom0Probe, Probe
from repro.obs.recorder import ObsRecorder
from repro.placement.engine import PlacementEngine
from repro.placement.fleet import FleetController
from repro.placement.spec import VmRequest
from repro.traffic.shapes import CompositeShape, FlashCrowdShape
from repro.rubis.deployment import (
    DEFAULT_VM_MEMORY_BYTES,
    DEFAULT_VM_VCPUS,
    BareMetalDeployment,
    Deployment,
    VirtualizedDeployment,
)
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import GB
from repro.virt.hypervisor import Hypervisor
from repro.workloads import Workload, build_tenant_workload
from repro.workloads.rubis import RubisWorkload
from repro.experiments.calibration import (
    CalibratedEnvironment,
    calibrate_bare_metal,
    calibrate_virtualized,
)
from repro.experiments.scenarios import BARE_METAL, VIRTUALIZED, Scenario

_calibration_cache: Dict[str, CalibratedEnvironment] = {}

#: Envelope geometry of a ``flash_crowd`` fault: the surge peaks one
#: rise after the resolved injection time and decays with this time
#: constant — absolute seconds (an *anomaly*, unlike the duration-
#: relative scheduled flash-crowd scenarios).
FLASH_FAULT_RISE_S = 10.0
FLASH_FAULT_DECAY_S = 30.0


def calibrated_environment(environment: str) -> CalibratedEnvironment:
    """Memoized calibration for one environment (pure derivation)."""
    if environment not in _calibration_cache:
        if environment == VIRTUALIZED:
            _calibration_cache[environment] = calibrate_virtualized()
        elif environment == BARE_METAL:
            _calibration_cache[environment] = calibrate_bare_metal()
        else:
            raise ConfigurationError(f"unknown environment {environment!r}")
    return _calibration_cache[environment]


def build_deployment(
    sim: Simulator,
    streams: RandomStreams,
    environment: str,
    vcpu_contention: bool = False,
) -> Deployment:
    """Construct the calibrated single-tenant deployment."""
    calibrated = calibrated_environment(environment)
    if environment == VIRTUALIZED:
        return VirtualizedDeployment(
            sim,
            streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
            vcpu_contention=vcpu_contention,
        )
    return BareMetalDeployment(
        sim,
        streams,
        config=calibrated.deployment_config,
        web_os_model=calibrated.web_os_model,
        db_os_model=calibrated.db_os_model,
    )


class Testbed:
    """A live testbed: the web workload plus any co-resident tenants."""

    def __init__(
        self,
        scenario: Scenario,
        web: RubisWorkload,
        tenants: List[Workload],
        hypervisor: Optional[Hypervisor],
        controllers: Optional[List[ElasticController]] = None,
        engine: Optional[PlacementEngine] = None,
        observer: Optional[ObsRecorder] = None,
    ) -> None:
        self.scenario = scenario
        self.web = web
        self.tenants = tenants
        self.hypervisor = hypervisor
        self.controllers = list(controllers or [])
        #: Placement engine of a multi-server testbed (None on the
        #: single-hypervisor paths, which stay bit-identical).
        self.engine = engine
        #: Observation recorder of an ``observe=True`` build (also in
        #: ``controllers``, so it starts/stops/merges like the rest).
        self.observer = observer

    @property
    def deployment(self) -> Deployment:
        return self.web.deployment

    def probes(self) -> List[Probe]:
        """Web/db first, then dom0, then one namespace per tenant.

        Multi-server fleets append one more dom0 probe per *extra*
        server (entity ``dom0.<server>``); the web server's dom0 keeps
        the plain ``dom0`` entity, so single-server trace layouts are
        untouched.
        """
        probes = self.web.probes()
        if self.hypervisor is not None:
            probes.append(Dom0Probe(self.hypervisor))
        for tenant in self.tenants:
            probes.extend(tenant.probes())
        if self.engine is not None:
            for name, hypervisor in self.engine.hypervisors.items():
                if hypervisor is self.hypervisor:
                    continue
                probes.append(Dom0Probe(hypervisor, entity=f"dom0.{name}"))
        return probes

    def start(self) -> None:
        # Controllers first: the initial (level-0) capacity must be in
        # place before any workload driver schedules its first event.
        for controller in self.controllers:
            controller.start()
        self.web.start()
        for tenant in self.tenants:
            tenant.start()

    def shutdown(self) -> None:
        for controller in self.controllers:
            controller.stop()
        for tenant in self.tenants:
            tenant.shutdown()
        self.web.shutdown()
        if self.engine is not None:
            # The web deployment stopped its own hypervisor above;
            # stop() is idempotent, so sweeping the whole fleet is safe.
            self.engine.shutdown()

    def tenant_reports(self) -> Optional[Dict[str, dict]]:
        """Per-tenant summaries, or None for single-tenant runs."""
        if not self.tenants:
            return None
        return {tenant.name: tenant.summary() for tenant in self.tenants}

    def interference_report(self) -> Optional[dict]:
        """Consolidation signals: per-domain CPU ready (steal) time.

        Fleets also report the per-server breakdown; a migrated
        domain's ready time sums across every server it lived on.
        """
        if self.hypervisor is None:
            return None
        if self.engine is None:
            return {"cpu_ready_s": self.hypervisor.cpu_ready_report()}
        merged: Dict[str, float] = {}
        per_server: Dict[str, Dict[str, float]] = {}
        for name, hypervisor in self.engine.hypervisors.items():
            report = hypervisor.cpu_ready_report()
            per_server[name] = report
            for domain, ready_s in report.items():
                merged[domain] = merged.get(domain, 0.0) + ready_s
        return {"cpu_ready_s": merged, "per_server": per_server}

    def billing_report(self) -> dict:
        """Fleet-wide capacity bill: ``{domain: {core-s, GB-s}}``.

        Summed across hypervisors, so a migrated domain is billed on
        every server it occupied — exactly what a per-tenant invoice
        would show.
        """
        hypervisors = (
            list(self.engine.hypervisors.values())
            if self.engine is not None
            else ([self.hypervisor] if self.hypervisor is not None else [])
        )
        merged: Dict[str, Dict[str, float]] = {}
        for hypervisor in hypervisors:
            for domain, bill in hypervisor.billing_report().items():
                into = merged.setdefault(
                    domain, {"capacity_core_s": 0.0, "memory_gb_s": 0.0}
                )
                into["capacity_core_s"] += bill["capacity_core_s"]
                into["memory_gb_s"] += bill["memory_gb_s"]
        return {"kind": "billing", "domains": merged}

    def control_reports(self) -> Optional[Dict[str, dict]]:
        """Per-controller action summaries, or None when uncontrolled.

        Controlled runs — and every multi-server run, controllers or
        not — also carry the fleet-wide capacity bill under the
        ``billing`` key: the $-side input :mod:`repro.planning.cost`
        scores against the SLA side.
        """
        if not self.controllers and self.engine is None:
            return None
        reports = {
            controller.entity: controller.report()
            for controller in self.controllers
        }
        reports["billing"] = self.billing_report()
        return reports


class TestbedBuilder:
    """Assembles N-tenant testbeds from declarative scenarios."""

    def __init__(self, sim: Simulator, streams: RandomStreams) -> None:
        self.sim = sim
        self.streams = streams

    def build(
        self,
        scenario: Scenario,
        meter_arrivals: bool = False,
        observe: bool = False,
    ) -> Testbed:
        """Build the testbed a scenario describes (single- or multi-tenant)."""
        if scenario.tenants and scenario.environment != VIRTUALIZED:
            raise ConfigurationError(
                "multi-tenant testbeds require the virtualized environment"
            )
        original = scenario
        resolved_faults = ()
        if scenario.faults is not None:
            # Resolve the schedule once (seed-derived jitter) and fold
            # any flash-crowd faults into the open-loop traffic
            # envelope — the surge must exist before the arrival
            # process is built, so it is declarative, not actuated.
            resolved_faults = scenario.faults.resolve(scenario.seed)
            scenario = self._compose_flash_crowds(scenario, resolved_faults)
        engine = None
        if scenario.multi_server:
            deployment, hypervisor, engine = self._build_fleet(scenario)
        elif scenario.tenants:
            deployment, hypervisor = self._build_shared_server(scenario)
        else:
            deployment = build_deployment(
                self.sim,
                self.streams,
                scenario.environment,
                vcpu_contention=scenario.controlled,
            )
            hypervisor = getattr(deployment, "hypervisor", None)
        web = RubisWorkload(
            self.sim,
            self.streams,
            scenario,
            deployment,
            meter_arrivals=meter_arrivals,
        )
        tenants: List[Workload] = []
        tenant_contexts: Dict[str, VirtualizedContext] = {}
        for spec in scenario.tenants:
            vm_name = f"{spec.name}-vm"
            host = (
                engine.hypervisor_for(vm_name)
                if engine is not None
                else hypervisor
            )
            domain = host.create_domain(
                vm_name,
                vcpu_count=spec.vcpus,
                memory_bytes=spec.memory_gb * GB,
                weight=spec.weight,
                cap_cores=spec.cap_cores,
            )
            context = VirtualizedContext(host, domain)
            tenant_contexts[vm_name] = context
            tenants.append(
                build_tenant_workload(
                    self.sim,
                    self.streams,
                    spec,
                    [context],
                    horizon_s=scenario.duration_s,
                )
            )
        controllers = self._build_controllers(
            scenario, web, hypervisor, engine
        )
        if scenario.fleet is not None:
            # Tenants with their own elastic controller are pinned:
            # the controller's tap resolves the domain on the
            # build-time hypervisor every tick, so migrating such a VM
            # would strand the controller (fleet-driven *resizing* of
            # migrated tenants is a ROADMAP follow-up).
            pinned = {
                f"{spec.name}-vm"
                for spec in scenario.tenants
                if spec.controller is not None
            }
            # Forced evacuation may move *any* guest — the web pair
            # included — so the fleet controller gets a rebind for
            # every domain, plus the in-flight rescale hook that makes
            # the stop-and-copy pause physically stall service.
            evacuable = {
                "web-vm": deployment.web_context.rebind,
                "db-vm": deployment.db_context.rebind,
            }
            rescalers = {
                "web-vm": deployment.web_context.rescale_in_flight,
                "db-vm": deployment.db_context.rescale_in_flight,
            }
            for name, context in tenant_contexts.items():
                evacuable[name] = context.rebind
                rescalers[name] = context.rescale_in_flight
            controllers.append(
                FleetController(
                    self.sim,
                    scenario.fleet,
                    engine,
                    web.stats,
                    movable={
                        name: context.rebind
                        for name, context in tenant_contexts.items()
                        if name not in pinned
                    },
                    driver=web.population if web.open_loop else None,
                    evacuable=evacuable,
                    rescalers=rescalers,
                )
            )
        if resolved_faults:
            controllers.append(
                self._build_fault_controller(
                    resolved_faults, deployment, hypervisor, engine
                )
            )
        observer = None
        if observe:
            # Hook every hypervisor in the testbed; bare metal has
            # none, but the recorder's SLO probe still applies.
            if engine is not None:
                hypervisors = dict(engine.hypervisors)
            elif hypervisor is not None:
                hypervisors = {hypervisor.server.name: hypervisor}
            else:
                hypervisors = {}
            observer = ObsRecorder(
                self.sim,
                web.stats,
                hypervisors,
                driver=web.population if web.open_loop else None,
            )
            controllers.append(observer)
        return Testbed(
            original,
            web,
            tenants,
            hypervisor,
            controllers,
            engine=engine,
            observer=observer,
        )

    def _compose_flash_crowds(self, scenario, resolved_faults):
        """Fold flash-crowd faults into the open-loop rate envelope."""
        crowds = [
            fault
            for fault in resolved_faults
            if fault.spec.kind == FLASH_CROWD
        ]
        if not crowds:
            return scenario
        traffic = scenario.traffic  # open-loop, per Scenario validation
        shapes = [traffic.shape] if traffic.shape is not None else []
        for fault in crowds:
            shapes.append(
                FlashCrowdShape(
                    peak_time_s=fault.inject_at_s + FLASH_FAULT_RISE_S,
                    magnitude=fault.spec.effective_magnitude,
                    rise_s=FLASH_FAULT_RISE_S,
                    decay_s=FLASH_FAULT_DECAY_S,
                )
            )
        shape = (
            shapes[0] if len(shapes) == 1 else CompositeShape(tuple(shapes))
        )
        return replace(scenario, traffic=replace(traffic, shape=shape))

    def _fault_hypervisor(
        self,
        spec: FaultSpec,
        hypervisor: Optional[Hypervisor],
        engine: Optional[PlacementEngine],
    ) -> Hypervisor:
        """Resolve which hypervisor a fault actuates.

        Server-target kinds accept a server name (``cloud-2``), a VM
        name (fault lands on its host) or nothing (the web server).
        ``cap_theft`` targets the victim *domain*'s host.
        """
        if engine is None:
            return hypervisor
        if spec.server_target:
            target = spec.target
            if target and target in engine.hypervisors:
                return engine.hypervisors[target]
            return engine.hypervisor_for(target or "web-vm")
        if spec.kind == CAP_THEFT:
            return engine.hypervisor_for(spec.target or "web-vm")
        return hypervisor

    def _build_fault_controller(
        self,
        resolved_faults,
        deployment,
        hypervisor: Optional[Hypervisor],
        engine: Optional[PlacementEngine],
    ) -> FaultController:
        """Plan every resolved fault against its target and injector."""
        plan = []
        for fault in resolved_faults:
            target_hv = self._fault_hypervisor(fault.spec, hypervisor, engine)
            injector = build_injector(
                fault.spec, target_hv, deployment, self.streams.stream
            )
            plan.append(PlannedFault(fault, injector, target_hv))
        return FaultController(self.sim, plan)

    def _build_controllers(
        self,
        scenario: Scenario,
        web: RubisWorkload,
        hypervisor: Optional[Hypervisor],
        engine: Optional[PlacementEngine] = None,
    ) -> List[ElasticController]:
        """The scenario's elastic controllers, wired to live telemetry.

        The scenario-level controller resizes the web VMs; per-tenant
        controllers (``TenantSpec.controller``) are retargeted at the
        tenant's own VM.  All of them observe the web workload's
        latency/shed signals — the testbed-level SLO is what drives
        resizing, including the priority-aware (``invert=True``)
        throttling of antagonist tenants.
        """
        controllers: List[ElasticController] = []
        driver = web.population if web.open_loop else None
        if scenario.controller is not None:
            controllers.append(
                ElasticController(
                    self.sim,
                    scenario.controller,
                    hypervisor,
                    web.stats,
                    driver=driver,
                )
            )
        for spec in scenario.tenants:
            if spec.controller is None:
                continue
            vm_name = f"{spec.name}-vm"
            host = (
                engine.hypervisor_for(vm_name)
                if engine is not None
                else hypervisor
            )
            controllers.append(
                ElasticController(
                    self.sim,
                    spec.controller.for_domain(vm_name),
                    host,
                    web.stats,
                    driver=driver,
                    entity=f"control.{spec.name}",
                )
            )
        return controllers

    def _build_fleet(self, scenario: Scenario):
        """N physical servers, VMs assigned by the placement policy.

        The web pair is one affinity group (the tiers talk over the
        software bridge) and is pinned (not movable); tenant VMs are
        movable batch requests.  Placement happens *before* any domain
        is created, so the engine's assignment decides which hypervisor
        each VM materializes on.
        """
        calibrated = calibrated_environment(VIRTUALIZED)
        engine = PlacementEngine(
            self.sim,
            scenario.servers,
            policy=scenario.placement,
            overhead=calibrated.overhead,
            vcpu_contention=scenario.controlled,
        )
        requests = [
            VmRequest(
                name,
                vcpus=DEFAULT_VM_VCPUS,
                memory_bytes=DEFAULT_VM_MEMORY_BYTES,
                priority=1,
                group="web",
                movable=False,
            )
            for name in ("web-vm", "db-vm")
        ]
        for spec in scenario.tenants:
            requests.append(
                VmRequest(
                    f"{spec.name}-vm",
                    vcpus=spec.vcpus,
                    memory_bytes=spec.memory_gb * GB,
                    priority=0,
                    movable=True,
                )
            )
        engine.place(requests)
        hypervisor = engine.hypervisor_for("web-vm")
        deployment = VirtualizedDeployment(
            self.sim,
            self.streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
            hypervisor=hypervisor,
            cluster=engine.cluster,
        )
        return deployment, hypervisor, engine

    def _build_shared_server(self, scenario: Scenario):
        """One physical server whose hypervisor hosts every tenant."""
        calibrated = calibrated_environment(VIRTUALIZED)
        cluster = Cluster()
        server = cluster.add_server("cloud-1")
        hypervisor = Hypervisor(
            self.sim,
            server,
            calibrated.overhead,
            vcpu_contention=scenario.controlled,
        )
        deployment = VirtualizedDeployment(
            self.sim,
            self.streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
            hypervisor=hypervisor,
            cluster=cluster,
        )
        return deployment, hypervisor


def build_testbed(
    sim: Simulator,
    streams: RandomStreams,
    scenario: Scenario,
    meter_arrivals: bool = False,
    observe: bool = False,
) -> Testbed:
    """Convenience wrapper over :class:`TestbedBuilder`."""
    return TestbedBuilder(sim, streams).build(
        scenario, meter_arrivals=meter_arrivals, observe=observe
    )
