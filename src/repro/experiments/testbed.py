"""Testbed assembly: from a declarative scenario to live workloads.

The :class:`TestbedBuilder` is the consolidation layer between the
scenario vocabulary and the simulated hardware:

* a **single-tenant** scenario (no ``tenants``) assembles exactly the
  paper's testbed — the calibrated
  :class:`~repro.rubis.deployment.VirtualizedDeployment` or
  :class:`~repro.rubis.deployment.BareMetalDeployment` with its private
  server(s) — via the same construction path the pre-refactor runner
  used, so existing scenarios keep bit-identical traces;
* a **multi-tenant** scenario builds one shared
  :class:`~repro.virt.hypervisor.Hypervisor` first, attaches the web
  VMs to it, then creates one extra domain per
  :class:`~repro.workloads.base.TenantSpec` and wires the tenant's
  workload (e.g. MapReduce) into that VM's
  :class:`~repro.apps.tier.VirtualizedContext`.  All tenants share the
  physical cores through the credit scheduler and the dom0 block/net
  backends — the two interference channels the consolidation scenarios
  measure.

The resulting :class:`Testbed` owns workload lifecycles and the probe
set (web/db, dom0, one namespace per tenant) the trace recorder
samples.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.apps.tier import VirtualizedContext
from repro.control.controller import ElasticController
from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.monitoring.probes import Dom0Probe, Probe
from repro.rubis.deployment import (
    BareMetalDeployment,
    Deployment,
    VirtualizedDeployment,
)
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import GB
from repro.virt.hypervisor import Hypervisor
from repro.workloads import Workload, build_tenant_workload
from repro.workloads.rubis import RubisWorkload
from repro.experiments.calibration import (
    CalibratedEnvironment,
    calibrate_bare_metal,
    calibrate_virtualized,
)
from repro.experiments.scenarios import BARE_METAL, VIRTUALIZED, Scenario

_calibration_cache: Dict[str, CalibratedEnvironment] = {}


def calibrated_environment(environment: str) -> CalibratedEnvironment:
    """Memoized calibration for one environment (pure derivation)."""
    if environment not in _calibration_cache:
        if environment == VIRTUALIZED:
            _calibration_cache[environment] = calibrate_virtualized()
        elif environment == BARE_METAL:
            _calibration_cache[environment] = calibrate_bare_metal()
        else:
            raise ConfigurationError(f"unknown environment {environment!r}")
    return _calibration_cache[environment]


def build_deployment(
    sim: Simulator,
    streams: RandomStreams,
    environment: str,
    vcpu_contention: bool = False,
) -> Deployment:
    """Construct the calibrated single-tenant deployment."""
    calibrated = calibrated_environment(environment)
    if environment == VIRTUALIZED:
        return VirtualizedDeployment(
            sim,
            streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
            vcpu_contention=vcpu_contention,
        )
    return BareMetalDeployment(
        sim,
        streams,
        config=calibrated.deployment_config,
        web_os_model=calibrated.web_os_model,
        db_os_model=calibrated.db_os_model,
    )


class Testbed:
    """A live testbed: the web workload plus any co-resident tenants."""

    def __init__(
        self,
        scenario: Scenario,
        web: RubisWorkload,
        tenants: List[Workload],
        hypervisor: Optional[Hypervisor],
        controllers: Optional[List[ElasticController]] = None,
    ) -> None:
        self.scenario = scenario
        self.web = web
        self.tenants = tenants
        self.hypervisor = hypervisor
        self.controllers = list(controllers or [])

    @property
    def deployment(self) -> Deployment:
        return self.web.deployment

    def probes(self) -> List[Probe]:
        """Web/db first, then dom0, then one namespace per tenant."""
        probes = self.web.probes()
        if self.hypervisor is not None:
            probes.append(Dom0Probe(self.hypervisor))
        for tenant in self.tenants:
            probes.extend(tenant.probes())
        return probes

    def start(self) -> None:
        # Controllers first: the initial (level-0) capacity must be in
        # place before any workload driver schedules its first event.
        for controller in self.controllers:
            controller.start()
        self.web.start()
        for tenant in self.tenants:
            tenant.start()

    def shutdown(self) -> None:
        for controller in self.controllers:
            controller.stop()
        for tenant in self.tenants:
            tenant.shutdown()
        self.web.shutdown()

    def tenant_reports(self) -> Optional[Dict[str, dict]]:
        """Per-tenant summaries, or None for single-tenant runs."""
        if not self.tenants:
            return None
        return {tenant.name: tenant.summary() for tenant in self.tenants}

    def interference_report(self) -> Optional[dict]:
        """Consolidation signals: per-domain CPU ready (steal) time."""
        if self.hypervisor is None:
            return None
        return {"cpu_ready_s": self.hypervisor.cpu_ready_report()}

    def control_reports(self) -> Optional[Dict[str, dict]]:
        """Per-controller action summaries, or None when uncontrolled."""
        if not self.controllers:
            return None
        return {
            controller.entity: controller.report()
            for controller in self.controllers
        }


class TestbedBuilder:
    """Assembles N-tenant testbeds from declarative scenarios."""

    def __init__(self, sim: Simulator, streams: RandomStreams) -> None:
        self.sim = sim
        self.streams = streams

    def build(
        self, scenario: Scenario, meter_arrivals: bool = False
    ) -> Testbed:
        """Build the testbed a scenario describes (single- or multi-tenant)."""
        if scenario.tenants and scenario.environment != VIRTUALIZED:
            raise ConfigurationError(
                "multi-tenant testbeds require the virtualized environment"
            )
        if scenario.tenants:
            deployment, hypervisor = self._build_shared_server(scenario)
        else:
            deployment = build_deployment(
                self.sim,
                self.streams,
                scenario.environment,
                vcpu_contention=scenario.controlled,
            )
            hypervisor = getattr(deployment, "hypervisor", None)
        web = RubisWorkload(
            self.sim,
            self.streams,
            scenario,
            deployment,
            meter_arrivals=meter_arrivals,
        )
        tenants: List[Workload] = []
        for spec in scenario.tenants:
            domain = hypervisor.create_domain(
                f"{spec.name}-vm",
                vcpu_count=spec.vcpus,
                memory_bytes=spec.memory_gb * GB,
                weight=spec.weight,
                cap_cores=spec.cap_cores,
            )
            context = VirtualizedContext(hypervisor, domain)
            tenants.append(
                build_tenant_workload(
                    self.sim,
                    self.streams,
                    spec,
                    [context],
                    horizon_s=scenario.duration_s,
                )
            )
        controllers = self._build_controllers(scenario, web, hypervisor)
        return Testbed(scenario, web, tenants, hypervisor, controllers)

    def _build_controllers(
        self,
        scenario: Scenario,
        web: RubisWorkload,
        hypervisor: Optional[Hypervisor],
    ) -> List[ElasticController]:
        """The scenario's elastic controllers, wired to live telemetry.

        The scenario-level controller resizes the web VMs; per-tenant
        controllers (``TenantSpec.controller``) are retargeted at the
        tenant's own VM.  All of them observe the web workload's
        latency/shed signals — the testbed-level SLO is what drives
        resizing, including the priority-aware (``invert=True``)
        throttling of antagonist tenants.
        """
        controllers: List[ElasticController] = []
        driver = web.population if web.open_loop else None
        if scenario.controller is not None:
            controllers.append(
                ElasticController(
                    self.sim,
                    scenario.controller,
                    hypervisor,
                    web.stats,
                    driver=driver,
                )
            )
        for spec in scenario.tenants:
            if spec.controller is None:
                continue
            controllers.append(
                ElasticController(
                    self.sim,
                    spec.controller.for_domain(f"{spec.name}-vm"),
                    hypervisor,
                    web.stats,
                    driver=driver,
                    entity=f"control.{spec.name}",
                )
            )
        return controllers

    def _build_shared_server(self, scenario: Scenario):
        """One physical server whose hypervisor hosts every tenant."""
        calibrated = calibrated_environment(VIRTUALIZED)
        cluster = Cluster()
        server = cluster.add_server("cloud-1")
        hypervisor = Hypervisor(
            self.sim,
            server,
            calibrated.overhead,
            vcpu_contention=scenario.controlled,
        )
        deployment = VirtualizedDeployment(
            self.sim,
            self.streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
            hypervisor=hypervisor,
            cluster=cluster,
        )
        return deployment, hypervisor


def build_testbed(
    sim: Simulator,
    streams: RandomStreams,
    scenario: Scenario,
    meter_arrivals: bool = False,
) -> Testbed:
    """Convenience wrapper over :class:`TestbedBuilder`."""
    return TestbedBuilder(sim, streams).build(
        scenario, meter_arrivals=meter_arrivals
    )
