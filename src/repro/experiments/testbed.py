"""Testbed assembly: from a declarative scenario to live workloads.

The :class:`TestbedBuilder` is the consolidation layer between the
scenario vocabulary and the simulated hardware:

* a **single-tenant** scenario (no ``tenants``) assembles exactly the
  paper's testbed — the calibrated
  :class:`~repro.rubis.deployment.VirtualizedDeployment` or
  :class:`~repro.rubis.deployment.BareMetalDeployment` with its private
  server(s) — via the same construction path the pre-refactor runner
  used, so existing scenarios keep bit-identical traces;
* a **multi-tenant** scenario builds one shared
  :class:`~repro.virt.hypervisor.Hypervisor` first, attaches the web
  VMs to it, then creates one extra domain per
  :class:`~repro.workloads.base.TenantSpec` and wires the tenant's
  workload (e.g. MapReduce) into that VM's
  :class:`~repro.apps.tier.VirtualizedContext`.  All tenants share the
  physical cores through the credit scheduler and the dom0 block/net
  backends — the two interference channels the consolidation scenarios
  measure.

The resulting :class:`Testbed` owns workload lifecycles and the probe
set (web/db, dom0, one namespace per tenant) the trace recorder
samples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.tier import VirtualizedContext
from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.monitoring.probes import Dom0Probe, Probe
from repro.rubis.deployment import (
    BareMetalDeployment,
    Deployment,
    VirtualizedDeployment,
)
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import GB
from repro.virt.hypervisor import Hypervisor
from repro.workloads import Workload, build_tenant_workload
from repro.workloads.rubis import RubisWorkload
from repro.experiments.calibration import (
    CalibratedEnvironment,
    calibrate_bare_metal,
    calibrate_virtualized,
)
from repro.experiments.scenarios import BARE_METAL, VIRTUALIZED, Scenario

_calibration_cache: Dict[str, CalibratedEnvironment] = {}


def calibrated_environment(environment: str) -> CalibratedEnvironment:
    """Memoized calibration for one environment (pure derivation)."""
    if environment not in _calibration_cache:
        if environment == VIRTUALIZED:
            _calibration_cache[environment] = calibrate_virtualized()
        elif environment == BARE_METAL:
            _calibration_cache[environment] = calibrate_bare_metal()
        else:
            raise ConfigurationError(f"unknown environment {environment!r}")
    return _calibration_cache[environment]


def build_deployment(
    sim: Simulator, streams: RandomStreams, environment: str
) -> Deployment:
    """Construct the calibrated single-tenant deployment."""
    calibrated = calibrated_environment(environment)
    if environment == VIRTUALIZED:
        return VirtualizedDeployment(
            sim,
            streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
        )
    return BareMetalDeployment(
        sim,
        streams,
        config=calibrated.deployment_config,
        web_os_model=calibrated.web_os_model,
        db_os_model=calibrated.db_os_model,
    )


class Testbed:
    """A live testbed: the web workload plus any co-resident tenants."""

    def __init__(
        self,
        scenario: Scenario,
        web: RubisWorkload,
        tenants: List[Workload],
        hypervisor: Optional[Hypervisor],
    ) -> None:
        self.scenario = scenario
        self.web = web
        self.tenants = tenants
        self.hypervisor = hypervisor

    @property
    def deployment(self) -> Deployment:
        return self.web.deployment

    def probes(self) -> List[Probe]:
        """Web/db first, then dom0, then one namespace per tenant."""
        probes = self.web.probes()
        if self.hypervisor is not None:
            probes.append(Dom0Probe(self.hypervisor))
        for tenant in self.tenants:
            probes.extend(tenant.probes())
        return probes

    def start(self) -> None:
        self.web.start()
        for tenant in self.tenants:
            tenant.start()

    def shutdown(self) -> None:
        for tenant in self.tenants:
            tenant.shutdown()
        self.web.shutdown()

    def tenant_reports(self) -> Optional[Dict[str, dict]]:
        """Per-tenant summaries, or None for single-tenant runs."""
        if not self.tenants:
            return None
        return {tenant.name: tenant.summary() for tenant in self.tenants}

    def interference_report(self) -> Optional[dict]:
        """Consolidation signals: per-domain CPU ready (steal) time."""
        if self.hypervisor is None:
            return None
        return {"cpu_ready_s": self.hypervisor.cpu_ready_report()}


class TestbedBuilder:
    """Assembles N-tenant testbeds from declarative scenarios."""

    def __init__(self, sim: Simulator, streams: RandomStreams) -> None:
        self.sim = sim
        self.streams = streams

    def build(
        self, scenario: Scenario, meter_arrivals: bool = False
    ) -> Testbed:
        """Build the testbed a scenario describes (single- or multi-tenant)."""
        if scenario.tenants and scenario.environment != VIRTUALIZED:
            raise ConfigurationError(
                "multi-tenant testbeds require the virtualized environment"
            )
        if scenario.tenants:
            deployment, hypervisor = self._build_shared_server(scenario)
        else:
            deployment = build_deployment(
                self.sim, self.streams, scenario.environment
            )
            hypervisor = getattr(deployment, "hypervisor", None)
        web = RubisWorkload(
            self.sim,
            self.streams,
            scenario,
            deployment,
            meter_arrivals=meter_arrivals,
        )
        tenants: List[Workload] = []
        for spec in scenario.tenants:
            domain = hypervisor.create_domain(
                f"{spec.name}-vm",
                vcpu_count=spec.vcpus,
                memory_bytes=spec.memory_gb * GB,
                weight=spec.weight,
                cap_cores=spec.cap_cores,
            )
            context = VirtualizedContext(hypervisor, domain)
            tenants.append(
                build_tenant_workload(
                    self.sim,
                    self.streams,
                    spec,
                    [context],
                    horizon_s=scenario.duration_s,
                )
            )
        return Testbed(scenario, web, tenants, hypervisor)

    def _build_shared_server(self, scenario: Scenario):
        """One physical server whose hypervisor hosts every tenant."""
        calibrated = calibrated_environment(VIRTUALIZED)
        cluster = Cluster()
        server = cluster.add_server("cloud-1")
        hypervisor = Hypervisor(self.sim, server, calibrated.overhead)
        deployment = VirtualizedDeployment(
            self.sim,
            self.streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
            hypervisor=hypervisor,
            cluster=cluster,
        )
        return deployment, hypervisor


def build_testbed(
    sim: Simulator,
    streams: RandomStreams,
    scenario: Scenario,
    meter_arrivals: bool = False,
) -> Testbed:
    """Convenience wrapper over :class:`TestbedBuilder`."""
    return TestbedBuilder(sim, streams).build(
        scenario, meter_arrivals=meter_arrivals
    )
