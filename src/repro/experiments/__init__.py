"""Experiment harness (S9): scenarios, calibration, runners, figures.

Maps every table/figure of the paper to a regeneration function:

* :mod:`~repro.experiments.paper_values` — the published numbers,
* :mod:`~repro.experiments.calibration` — derives every simulator
  constant from those numbers (documented, invertible math),
* :mod:`~repro.experiments.scenarios` — the five request compositions
  on both environments,
* :mod:`~repro.experiments.runner` — runs a scenario end to end,
* :mod:`~repro.experiments.figures` / :mod:`~repro.experiments.tables`
  — regenerate Figures 1-8 and Table 1,
* :mod:`~repro.experiments.compare` — measured-vs-paper reports.
"""

from repro.experiments.paper_values import (
    PAPER_R1,
    PAPER_R2,
    PAPER_R3,
    PAPER_R4,
    SeriesTargets,
    VIRTUALIZED_TARGETS,
    BARE_METAL_TARGETS,
    DOM0_TARGETS,
)
from repro.experiments.calibration import (
    CalibratedEnvironment,
    calibrate_bare_metal,
    calibrate_virtualized,
)
from repro.experiments.scenarios import (
    Scenario,
    autoscaled_consolidated_scenario,
    autoscaled_flash_crowd_scenario,
    consolidated_scenario,
    consolidated_web_batch_scenario,
    default_duration_s,
    flash_crowd_scenario,
    flash_crowd_window,
    fleet_consolidation_scenario,
    migration_rebalance_scenario,
    open_loop_scenario,
    paper_scenarios,
    scenario,
    scenario_catalog,
)
from repro.experiments.testbed import (
    Testbed,
    TestbedBuilder,
    build_deployment,
    build_testbed,
    calibrated_environment,
)
from repro.experiments.runner import ExperimentResult, run_scenario, run_scenario_cached
from repro.experiments.suite import (
    RunSummary,
    SuiteResult,
    SuiteRun,
    derive_run_seed,
    execute_run,
    interference_checks,
    paper_matrix_suite,
    render_suite_ratio_table,
    run_suite,
    suite_grid,
    suite_ratio_data,
)
from repro.experiments.figures import (
    FigurePanel,
    FigureData,
    figure,
    render_figure,
    render_suite_figures,
)
from repro.experiments.tables import render_table1, table1_rows
from repro.experiments.compare import (
    QualitativeChecks,
    compare_with_paper,
    qualitative_checks,
)

__all__ = [
    "PAPER_R1",
    "PAPER_R2",
    "PAPER_R3",
    "PAPER_R4",
    "SeriesTargets",
    "VIRTUALIZED_TARGETS",
    "BARE_METAL_TARGETS",
    "DOM0_TARGETS",
    "CalibratedEnvironment",
    "calibrate_virtualized",
    "calibrate_bare_metal",
    "Scenario",
    "scenario",
    "open_loop_scenario",
    "flash_crowd_scenario",
    "flash_crowd_window",
    "autoscaled_flash_crowd_scenario",
    "autoscaled_consolidated_scenario",
    "consolidated_scenario",
    "consolidated_web_batch_scenario",
    "fleet_consolidation_scenario",
    "migration_rebalance_scenario",
    "paper_scenarios",
    "scenario_catalog",
    "default_duration_s",
    "Testbed",
    "TestbedBuilder",
    "build_deployment",
    "build_testbed",
    "calibrated_environment",
    "ExperimentResult",
    "run_scenario",
    "run_scenario_cached",
    "SuiteRun",
    "RunSummary",
    "SuiteResult",
    "suite_grid",
    "paper_matrix_suite",
    "run_suite",
    "execute_run",
    "derive_run_seed",
    "interference_checks",
    "suite_ratio_data",
    "render_suite_ratio_table",
    "FigurePanel",
    "FigureData",
    "figure",
    "render_figure",
    "render_suite_figures",
    "render_table1",
    "table1_rows",
    "QualitativeChecks",
    "qualitative_checks",
    "compare_with_paper",
]
