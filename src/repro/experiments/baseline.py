"""Engine baselines: fingerprints and cross-engine equivalence metrics.

The batched engine (PERFORMANCE.md "Epoch 2") is a deliberate RNG
epoch: its traces are equivalent to the classic engine in distribution,
not bitwise.  That bargain only holds if three properties stay pinned:

1. **Classic bit-stability** — the classic engine's traces at a given
   seed never move (the epoch-1 guarantee every earlier baseline test
   relies on).
2. **Batched self-determinism** — the batched engine is just as
   reproducible run-to-run and process-to-process at a given seed.
3. **Cross-engine equivalence** — at matched seeds the two engines
   agree in distribution: two-sample KS on response times, relative
   error on throughput/utilization/ready aggregates, and per-figure
   series-mean ratios.

This module holds the pieces shared between ``scripts/rebaseline.py``
(which pins 1 and 2 into ``tests/baselines/engine_fingerprints.json``)
and ``tests/integration/test_engine_equivalence.py`` (which enforces
all three).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import replace
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from repro.experiments.scenarios import (
    ENGINES,
    Scenario,
    open_loop_scenario,
    scenario,
)
from repro.traffic.spec import TrafficSpec

#: Settings of the pinned baseline cells.  Short enough that the full
#: two-engine sweep stays test-suite friendly, long enough (30 sampling
#: periods, tens of thousands of requests in the closed cells) that the
#: distributional comparisons have teeth.
BASELINE_DURATION_S = 60.0
BASELINE_SEED = 7
BASELINE_OPEN_RATE_RPS = 120.0

#: Where the pinned fingerprints live, relative to the repo root.
FINGERPRINT_PATH = Path("tests") / "baselines" / "engine_fingerprints.json"


def matrix_cells() -> Tuple[Tuple[str, str], ...]:
    """The paper's 2 (environment) x 2 (mix) closed-loop run matrix."""
    return (
        ("virtualized", "browsing"),
        ("virtualized", "bidding"),
        ("bare-metal", "browsing"),
        ("bare-metal", "bidding"),
    )


def baseline_scenarios(engine: str = "classic") -> Dict[str, Scenario]:
    """The pinned cells — the closed matrix plus one open-loop cell."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    cells: Dict[str, Scenario] = {}
    for environment, composition in matrix_cells():
        spec = scenario(
            environment,
            composition,
            duration_s=BASELINE_DURATION_S,
            seed=BASELINE_SEED,
        )
        cells[f"{environment}/{composition}"] = _with_engine(spec, engine)
    traffic = TrafficSpec.from_cli_string(
        "poisson", rate_rps=BASELINE_OPEN_RATE_RPS
    )
    open_spec = open_loop_scenario(
        "virtualized",
        "browsing",
        duration_s=BASELINE_DURATION_S,
        seed=BASELINE_SEED,
        traffic=traffic,
    )
    cells["virtualized/browsing/poisson"] = _with_engine(open_spec, engine)
    return cells


def _with_engine(spec: Scenario, engine: str) -> Scenario:
    if engine == "classic":
        return spec
    return replace(spec, name=f"{spec.name}%{engine}", engine=engine)


def result_fingerprint(result) -> str:
    """A short stable digest of everything a run produced.

    Hashes every trace series (times and values, exact IEEE doubles),
    the completed-request count and the response-time samples, so any
    bitwise drift in a pinned engine shows up as a fingerprint change.
    """
    digest = hashlib.sha256()
    for key in sorted(result.traces.keys()):
        series = result.traces.get(*key)
        digest.update(repr(key).encode())
        digest.update(np.ascontiguousarray(series.times, dtype=float).tobytes())
        digest.update(np.ascontiguousarray(series.values, dtype=float).tobytes())
    digest.update(str(result.requests_completed).encode())
    samples = np.asarray(result.client_stats.response_times_s, dtype=float)
    digest.update(str(samples.size).encode())
    digest.update(samples.tobytes())
    return digest.hexdigest()[:16]


def fingerprint_engine(engine: str) -> Dict[str, str]:
    """Run every baseline cell under ``engine`` and fingerprint it."""
    from repro.experiments.runner import run_scenario

    return {
        cell: result_fingerprint(run_scenario(spec))
        for cell, spec in baseline_scenarios(engine).items()
    }


def load_fingerprints(root: Path) -> dict:
    """The pinned fingerprint document under repo root ``root``."""
    return json.loads((root / FINGERPRINT_PATH).read_text())


# -- distributional comparison primitives --------------------------------


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic, hand-rolled.

    ``sup_x |F_a(x) - F_b(x)|`` over the pooled sample points — no scipy
    in the image, and the exact statistic is three vectorized lines.
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("KS needs non-empty samples")
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_threshold(n: int, m: int, alpha: float = 1e-3) -> float:
    """Large-sample KS rejection threshold at level ``alpha``.

    ``c(alpha) * sqrt((n+m)/(n*m))`` with
    ``c(alpha) = sqrt(-ln(alpha/2)/2)`` — the classical asymptotic
    critical value.  The harness compares fixed seeds, so the test is
    deterministic; the level just documents how far apart the empirical
    CDFs are allowed to sit.
    """
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c * math.sqrt((n + m) / (n * m))


def relative_error(a: float, b: float) -> float:
    """``|a-b|`` over the larger magnitude (0 when both are ~zero)."""
    scale = max(abs(a), abs(b))
    if scale < 1e-12:
        return 0.0
    return abs(a - b) / scale


def series_mean_ratio(result_a, result_b, entity: str, resource: str) -> float:
    """Ratio of one figure series' mean between two runs (b over a)."""
    mean_a = float(np.asarray(result_a.traces.get(entity, resource).values).mean())
    mean_b = float(np.asarray(result_b.traces.get(entity, resource).values).mean())
    if abs(mean_a) < 1e-12 and abs(mean_b) < 1e-12:
        return 1.0
    if abs(mean_a) < 1e-12:
        return math.inf
    return mean_b / mean_a
