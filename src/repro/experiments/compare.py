"""Measured-vs-paper comparison: the ratio tables and qualitative checks.

``compare_with_paper`` produces the four ratio reports (R1-R4);
``qualitative_checks`` evaluates the paper's qualitative findings
Q1-Q5 (see DESIGN.md) as booleans, so tests and EXPERIMENTS.md can state
exactly which findings reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.changepoint import count_upward_jumps, first_jump_time
from repro.analysis.correlation import estimate_lag
from repro.analysis.ratios import (
    DEFAULT_WARMUP_S,
    RatioReport,
    cross_environment_ratios,
    demand_vector,
    physical_cross_ratios,
    tier_ratios,
    vm_to_hypervisor_ratios,
)
from repro.analysis.stats import variance_ratio
from repro.errors import AnalysisError
from repro.experiments.paper_values import (
    PAPER_R1,
    PAPER_R2,
    PAPER_R3,
    PAPER_R4,
)
from repro.experiments.runner import ExperimentResult

#: RAM jump detector settings shared by the checks.
RAM_JUMP_MIN_SHIFT_MB = 50.0
RAM_JUMP_WINDOW = 8


def compare_with_paper(
    virt_browse: ExperimentResult,
    bare_browse: ExperimentResult,
    warmup_s: float = DEFAULT_WARMUP_S,
) -> List[RatioReport]:
    """The R1-R4 ratio reports for the browsing workload."""
    reports = [
        RatioReport(
            name="R1 front-end/back-end (virtualized)",
            measured=tier_ratios(virt_browse.traces, warmup_s),
            paper=PAPER_R1,
        ),
        RatioReport(
            name="R2 VM aggregate / dom0",
            measured=vm_to_hypervisor_ratios(virt_browse.traces, warmup_s),
            paper=PAPER_R2,
        ),
        RatioReport(
            name="R3 VM aggregate / bare-metal aggregate (derived)",
            measured=cross_environment_ratios(
                virt_browse.traces, bare_browse.traces, warmup_s
            ),
            paper=PAPER_R3,
        ),
        RatioReport(
            name="R4 bare-metal physical / dom0 physical",
            measured=physical_cross_ratios(
                virt_browse.traces, bare_browse.traces, warmup_s
            ),
            paper=PAPER_R4,
        ),
    ]
    return reports


@dataclass
class QualitativeChecks:
    """The paper's qualitative findings as booleans."""

    #: Q1 — db-tier CPU workload lags the web tier (lag >= 0).
    q1_db_lags_web: bool
    #: Q2 — virtualized: browsing RAM jumps, bidding RAM smooth.
    q2_virt_browse_jumps: bool
    q2_virt_bid_smooth: bool
    #: Q3 — bare-metal bid jumps earlier than virtualized browse jumps.
    q3_bare_bid_jumps_earlier: bool
    #: Q4 — disk variance higher on bare metal than virtualized.
    q4_disk_variance_higher_bare: bool
    #: Q5 — bidding demands more dom0 physical CPU than browsing.
    q5_bid_more_dom0_cpu: bool

    def all_pass(self) -> bool:
        return all(
            (
                self.q1_db_lags_web,
                self.q2_virt_browse_jumps,
                self.q2_virt_bid_smooth,
                self.q3_bare_bid_jumps_earlier,
                self.q4_disk_variance_higher_bare,
                self.q5_bid_more_dom0_cpu,
            )
        )

    def as_dict(self) -> Dict[str, bool]:
        return {
            "Q1 db lags web": self.q1_db_lags_web,
            "Q2 virt browse RAM jumps": self.q2_virt_browse_jumps,
            "Q2 virt bid RAM smooth": self.q2_virt_bid_smooth,
            "Q3 bare bid jumps earlier": self.q3_bare_bid_jumps_earlier,
            "Q4 disk variance higher on bare metal":
                self.q4_disk_variance_higher_bare,
            "Q5 bid costs dom0 more CPU": self.q5_bid_more_dom0_cpu,
        }


def qualitative_checks(
    virt_browse: ExperimentResult,
    virt_bid: ExperimentResult,
    bare_browse: ExperimentResult,
    bare_bid: ExperimentResult,
    warmup_s: float = DEFAULT_WARMUP_S,
) -> QualitativeChecks:
    """Evaluate Q1-Q5 on the four core runs."""
    for result, env in (
        (virt_browse, "virtualized"),
        (virt_bid, "virtualized"),
        (bare_browse, "bare-metal"),
        (bare_bid, "bare-metal"),
    ):
        if result.scenario.environment != env:
            raise AnalysisError(
                f"expected a {env} result, got "
                f"{result.scenario.environment}"
            )

    # Q1: lag of db behind web on the virtualized browse run.
    web_cpu = virt_browse.traces.get("web", "cpu_cycles").without_warmup(
        warmup_s
    )
    db_cpu = virt_browse.traces.get("db", "cpu_cycles").without_warmup(
        warmup_s
    )
    max_lag = min(15, max(1, len(web_cpu) // 4))
    lag = estimate_lag(
        web_cpu, db_cpu, max_lag, virt_browse.traces.sample_period_s
    )
    q1 = lag.lag_samples >= 0

    # Q2: RAM jumps per workload in the virtualized environment.
    virt_browse_ram = virt_browse.traces.get("web", "mem_used_mb")
    virt_bid_ram = virt_bid.traces.get("web", "mem_used_mb")
    q2_browse = (
        count_upward_jumps(
            virt_browse_ram, RAM_JUMP_MIN_SHIFT_MB, RAM_JUMP_WINDOW
        )
        >= 1
    )
    q2_bid = (
        count_upward_jumps(
            virt_bid_ram, RAM_JUMP_MIN_SHIFT_MB, RAM_JUMP_WINDOW
        )
        == 0
    )

    # Q3: bare bid first jump earlier than virtualized browse first jump.
    bare_bid_ram = bare_bid.traces.get("web", "mem_used_mb")
    q3 = first_jump_time(
        bare_bid_ram, RAM_JUMP_MIN_SHIFT_MB, RAM_JUMP_WINDOW
    ) < first_jump_time(
        virt_browse_ram, RAM_JUMP_MIN_SHIFT_MB, RAM_JUMP_WINDOW
    )

    # Q4: disk variance, bare metal vs virtualized (browse, web tier).
    bare_disk = bare_browse.traces.get("web", "disk_kb").without_warmup(
        warmup_s
    )
    virt_disk = virt_browse.traces.get("web", "disk_kb").without_warmup(
        warmup_s
    )
    q4 = variance_ratio(bare_disk, virt_disk) > 1.0

    # Q5: dom0 physical CPU, bid vs browse.
    dom0_browse = demand_vector(virt_browse.traces, "dom0", warmup_s)
    dom0_bid = demand_vector(virt_bid.traces, "dom0", warmup_s)
    q5 = dom0_bid.cpu_cycles > dom0_browse.cpu_cycles

    return QualitativeChecks(
        q1_db_lags_web=q1,
        q2_virt_browse_jumps=q2_browse,
        q2_virt_bid_smooth=q2_bid,
        q3_bare_bid_jumps_earlier=q3,
        q4_disk_variance_higher_bare=q4,
        q5_bid_more_dom0_cpu=q5,
    )
