"""End-to-end experiment runner.

``run_scenario`` assembles the calibrated deployment for the scenario's
environment, spins up the client population, samples traces at the 2 s
period, runs the DES to the horizon and returns an
:class:`ExperimentResult` with the traces, the client statistics and
handles for deeper inspection.

``run_scenario_cached`` memoizes results by scenario fingerprint within
the process: the benchmark suite regenerates several figures from the
same four underlying runs, exactly like the paper extracts all its
figures from one run matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.monitoring.probes import ContextProbe, Dom0Probe
from repro.monitoring.registry import MetricRegistry
from repro.monitoring.sampler import TraceRecorder
from repro.monitoring.timeseries import TraceSet
from repro.rubis.client import ClientPopulation, SessionStats
from repro.rubis.deployment import (
    BareMetalDeployment,
    Deployment,
    VirtualizedDeployment,
)
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.rubis.workload import SessionType
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.driver import ArrivalMeter, OpenLoopDriver
from repro.traffic.spec import build_driver as build_traffic_driver
from repro.traffic.trace import RateTrace
from repro.experiments.calibration import (
    CalibratedEnvironment,
    calibrate_bare_metal,
    calibrate_virtualized,
)
from repro.experiments.scenarios import BARE_METAL, VIRTUALIZED, Scenario


@dataclass
class ExperimentResult:
    """Everything one run produced."""

    scenario: Scenario
    traces: TraceSet
    client_stats: SessionStats
    requests_completed: int
    mean_response_time_s: float
    deployment: Deployment = field(repr=False, default=None)
    #: The traffic driver: a ClientPopulation (closed loop) or an
    #: OpenLoopDriver (open loop).
    population: object = field(repr=False, default=None)
    full_rows: list = field(repr=False, default_factory=list)
    #: Full-registry samples as per-metric arrays (only populated when
    #: the run was made with ``columnar_rows=True``).
    columnar: object = field(repr=False, default=None)
    #: Per-interval offered request rate (open-loop runs always; closed
    #: loop only when run with ``meter_arrivals=True``).
    arrival_trace: Optional[RateTrace] = field(repr=False, default=None)
    #: Open-loop overload report (offered/admitted/shed counters).
    traffic_report: Optional[dict] = None

    @property
    def throughput_rps(self) -> float:
        return self.requests_completed / self.scenario.duration_s

    @property
    def open_loop(self) -> bool:
        """True when an OpenLoopDriver produced this result."""
        return isinstance(self.population, OpenLoopDriver)


_calibration_cache: Dict[str, CalibratedEnvironment] = {}


def _calibrated(environment: str) -> CalibratedEnvironment:
    if environment not in _calibration_cache:
        if environment == VIRTUALIZED:
            _calibration_cache[environment] = calibrate_virtualized()
        elif environment == BARE_METAL:
            _calibration_cache[environment] = calibrate_bare_metal()
        else:
            raise ConfigurationError(f"unknown environment {environment!r}")
    return _calibration_cache[environment]


def build_deployment(
    sim: Simulator, streams: RandomStreams, environment: str
) -> Deployment:
    """Construct the calibrated deployment for one environment."""
    calibrated = _calibrated(environment)
    if environment == VIRTUALIZED:
        return VirtualizedDeployment(
            sim,
            streams,
            config=calibrated.deployment_config,
            overhead=calibrated.overhead,
        )
    return BareMetalDeployment(
        sim,
        streams,
        config=calibrated.deployment_config,
        web_os_model=calibrated.web_os_model,
        db_os_model=calibrated.db_os_model,
    )


def run_scenario(
    scenario: Scenario,
    collect_full_registry: bool = False,
    registry: Optional[MetricRegistry] = None,
    columnar_rows: bool = False,
    meter_arrivals: bool = False,
) -> ExperimentResult:
    """Run one scenario end to end and return its result.

    With ``columnar_rows=True`` (requires ``collect_full_registry``)
    the 518-metric samples are stored as per-metric float arrays
    (:class:`~repro.monitoring.columnar.ColumnarRows`) on
    ``result.columnar`` instead of one dict per tick in
    ``result.full_rows`` — the storage that scales to hour-long
    horizons.

    Open-loop scenarios (``scenario.traffic``) are driven by an
    :class:`~repro.traffic.driver.OpenLoopDriver` instead of the
    closed-loop client population and always produce
    ``result.arrival_trace`` and ``result.traffic_report``.  For
    closed-loop runs, ``meter_arrivals=True`` wraps the send path in an
    arrival counter so the run yields the same per-interval offered
    rate trace (the input to model fitting and open-loop replay); it
    draws no randomness and schedules no events, so traces are
    bit-identical with and without it.
    """
    sim = Simulator()
    streams = RandomStreams(seed=scenario.seed)
    deployment = build_deployment(sim, streams, scenario.environment)

    matrices = {
        SessionType.BROWSE: browsing_matrix(),
        SessionType.BID: bidding_matrix(),
    }
    traffic = scenario.traffic
    meter: Optional[ArrivalMeter] = None
    if traffic is not None and traffic.open_loop:
        population = build_traffic_driver(
            traffic,
            sim,
            scenario.mix,
            deployment.send,
            streams,
            matrices,
        )
        meter = population.meter
    else:
        send_fn = deployment.send
        if meter_arrivals:
            meter = ArrivalMeter()
            send_fn = _metered_send(meter, sim, send_fn)
        population = ClientPopulation(
            sim,
            scenario.mix,
            send_fn,
            streams.stream("clients"),
            matrices,
            ramp_s=scenario.ramp_s,
        )
    deployment.population = population

    probes = [
        ContextProbe(
            "web",
            deployment.web_context,
            requests_fn=lambda: deployment.php_tier.requests_handled,
        ),
        ContextProbe(
            "db",
            deployment.db_context,
            requests_fn=lambda: deployment.mysql_tier.station.stats.completions,
        ),
    ]
    if scenario.environment == VIRTUALIZED:
        probes.append(Dom0Probe(deployment.hypervisor))
    if collect_full_registry and registry is None:
        from repro.monitoring.registry import build_registry

        registry = build_registry()
    recorder = TraceRecorder(
        sim,
        probes,
        environment=scenario.environment,
        workload=scenario.mix.name,
        registry=registry,
        collect_full_registry=collect_full_registry,
        rng=streams.stream("monitoring-noise"),
        columnar_rows=columnar_rows,
    )

    population.start()
    sim.run_until(scenario.duration_s)
    recorder.stop()
    deployment.shutdown()

    stats = population.stats
    return ExperimentResult(
        scenario=scenario,
        traces=recorder.traces,
        client_stats=stats,
        requests_completed=stats.responses_received,
        mean_response_time_s=stats.mean_response_time_s,
        deployment=deployment,
        population=population,
        full_rows=recorder.full_rows,
        columnar=recorder.columnar,
        arrival_trace=(
            meter.to_rate_trace(scenario.duration_s)
            if meter is not None
            else None
        ),
        traffic_report=(
            population.summary()
            if isinstance(population, OpenLoopDriver)
            else None
        ),
    )


def _metered_send(meter: ArrivalMeter, sim: Simulator, send_fn):
    """Wrap a deployment send function to count offered arrivals."""

    def metered(session, interaction, on_response):
        meter.record(sim.now)
        send_fn(session, interaction, on_response)

    return metered


_result_cache: Dict[tuple, ExperimentResult] = {}


def run_scenario_cached(scenario: Scenario) -> ExperimentResult:
    """Memoized :func:`run_scenario` (per process, by fingerprint)."""
    key = scenario.cache_key
    if key not in _result_cache:
        _result_cache[key] = run_scenario(scenario)
    return _result_cache[key]


def clear_result_cache() -> None:
    """Drop memoized results (tests that need fresh runs)."""
    _result_cache.clear()
