"""End-to-end experiment runner.

``run_scenario`` builds the scenario's testbed through the
:class:`~repro.experiments.testbed.TestbedBuilder` (the paper's
single-tenant deployments, or a multi-tenant consolidated server when
the scenario carries tenant specs), arms every workload's driver,
samples traces at the 2 s period, runs the DES to the horizon and
returns an :class:`ExperimentResult` with the traces, the client
statistics, per-tenant reports and handles for deeper inspection.

``run_scenario_cached`` memoizes results by the scenario's full cache
fingerprint within the process: the benchmark suite regenerates several
figures from the same four underlying runs, exactly like the paper
extracts all its figures from one run matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.monitoring.registry import MetricRegistry
from repro.monitoring.sampler import TraceRecorder
from repro.monitoring.timeseries import TraceSet
from repro.rubis.client import SessionStats
from repro.rubis.deployment import Deployment
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.rubis.batched import BatchedOpenDriver
from repro.traffic.driver import OpenLoopDriver
from repro.traffic.trace import RateTrace
from repro.experiments.scenarios import Scenario
from repro.experiments.testbed import (  # noqa: F401  (compat re-exports)
    build_deployment,
    build_testbed,
    calibrated_environment,
)


@dataclass
class ExperimentResult:
    """Everything one run produced."""

    scenario: Scenario
    traces: TraceSet
    client_stats: SessionStats
    requests_completed: int
    mean_response_time_s: float
    deployment: Deployment = field(repr=False, default=None)
    #: The traffic driver: a ClientPopulation (closed loop) or an
    #: OpenLoopDriver (open loop).
    population: object = field(repr=False, default=None)
    full_rows: list = field(repr=False, default_factory=list)
    #: Full-registry samples as per-metric arrays (only populated when
    #: the run was made with ``columnar_rows=True``).
    columnar: object = field(repr=False, default=None)
    #: Per-interval offered request rate (open-loop runs always; closed
    #: loop only when run with ``meter_arrivals=True``).
    arrival_trace: Optional[RateTrace] = field(repr=False, default=None)
    #: Open-loop overload report (offered/admitted/shed counters).
    traffic_report: Optional[dict] = None
    #: Per-tenant summaries of consolidated runs ({tenant: summary}).
    tenant_reports: Optional[dict] = None
    #: Consolidation signals (per-domain CPU ready time); present for
    #: every virtualized run, zero-valued without co-tenants.
    interference: Optional[dict] = None
    #: Elastic-control summaries ({controller entity: report}); the
    #: control *series* land in ``traces`` under the same entity.
    control_reports: Optional[dict] = None
    #: Unified annotation stream of an ``observe=True`` run
    #: (:class:`~repro.obs.annotations.AnnotationStream`), else None.
    annotations: object = field(repr=False, default=None)
    #: Sampled request span trees of a ``trace_sample > 0`` run: a list
    #: of :class:`~repro.obs.tracing.RequestTrace`, else None.
    request_traces: object = field(repr=False, default=None)
    #: Events the DES fired over the run.
    events_fired: int = 0
    #: Wall-clock per phase: ``{"build", "simulate", "collect"}``.
    phases_s: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests_completed / self.scenario.duration_s

    @property
    def open_loop(self) -> bool:
        """True when an open-loop driver (either engine) produced this."""
        return isinstance(
            self.population, (OpenLoopDriver, BatchedOpenDriver)
        )

    @property
    def p95_response_time_s(self) -> float:
        """95th-percentile response time (0 when nothing completed)."""
        times = self.client_stats.response_times_s
        if not times:
            return 0.0
        return float(np.percentile(np.asarray(times), 95.0))

    def cpu_ready_seconds(self, domain_name: str) -> float:
        """Cumulative ready time of one domain (0 for bare metal)."""
        if not self.interference:
            return 0.0
        return self.interference.get("cpu_ready_s", {}).get(domain_name, 0.0)


@dataclass
class PreparedRun:
    """A built-but-not-yet-run scenario: the windowed execution handle.

    ``run_scenario`` is ``prepare_run(...)`` + ``start()`` +
    ``sim.run_until(horizon)`` + ``collect()``.  Splitting the phases
    lets callers that need to interleave work between simulation
    windows — the sharded fleet engine advances every pod in lockstep
    windows and exchanges cross-pod traffic at the boundaries — reuse
    the exact same build/collect code path, which is what makes a
    single-pod sharded run bit-identical to a plain ``run_scenario``.
    """

    scenario: Scenario
    sim: Simulator
    streams: RandomStreams
    testbed: object
    recorder: TraceRecorder
    wall_start: float
    built_at: float

    def start(self) -> None:
        """Arm every driver/controller (once, before the first window)."""
        self.testbed.start()

    def run_until(self, horizon_s: float) -> None:
        """Advance the event loop to ``horizon_s`` (monotonic windows)."""
        self.sim.run_until(horizon_s)

    def collect(self) -> ExperimentResult:
        """Stop recording, shut the testbed down, assemble the result."""
        simulated_at = time.perf_counter()
        self.recorder.stop()
        self.testbed.shutdown()

        # Elastic-control decisions are first-class telemetry: the
        # control series join the run's trace set (entity = the
        # controller's) and, for columnar runs, the per-metric table —
        # so they ride the same CSV/NPZ export paths as every sampled
        # metric.
        recorder = self.recorder
        testbed = self.testbed
        scenario = self.scenario
        web = testbed.web
        columnar = recorder.columnar
        for controller in testbed.controllers:
            for resource, series in controller.trace_series():
                recorder.traces.add(controller.entity, resource, series)
        if columnar is not None and testbed.controllers:
            columnar = _merge_control_columns(columnar, testbed.controllers)

        stats = web.stats
        meter = web.meter
        population = web.population
        collected_at = time.perf_counter()
        return ExperimentResult(
            scenario=scenario,
            traces=recorder.traces,
            client_stats=stats,
            requests_completed=stats.responses_received,
            mean_response_time_s=stats.mean_response_time_s,
            deployment=testbed.deployment,
            population=population,
            full_rows=recorder.full_rows,
            columnar=columnar,
            arrival_trace=(
                meter.to_rate_trace(scenario.duration_s)
                if meter is not None
                else None
            ),
            traffic_report=(
                population.summary()
                if isinstance(
                    population, (OpenLoopDriver, BatchedOpenDriver)
                )
                else None
            ),
            tenant_reports=testbed.tenant_reports(),
            interference=testbed.interference_report(),
            control_reports=testbed.control_reports(),
            annotations=(
                testbed.observer.stream
                if testbed.observer is not None
                else None
            ),
            request_traces=(
                web.tracer.traces
                if getattr(web, "tracer", None) is not None
                else None
            ),
            events_fired=self.sim.events_fired,
            phases_s={
                "build": self.built_at - self.wall_start,
                "simulate": simulated_at - self.built_at,
                "collect": collected_at - simulated_at,
            },
        )


def prepare_run(
    scenario: Scenario,
    collect_full_registry: bool = False,
    registry: Optional[MetricRegistry] = None,
    columnar_rows: bool = False,
    meter_arrivals: bool = False,
    observe: bool = False,
) -> PreparedRun:
    """Build a scenario's simulator/testbed/recorder without running it.

    The construction sequence (simulator, random streams, testbed,
    registry, recorder — in that order) is exactly ``run_scenario``'s,
    so a prepared run advanced to the horizon and collected produces
    bit-identical traces to the one-shot path.
    """
    wall_start = time.perf_counter()
    sim = Simulator()
    streams = RandomStreams(seed=scenario.seed)
    testbed = build_testbed(
        sim, streams, scenario, meter_arrivals=meter_arrivals,
        observe=observe,
    )

    if collect_full_registry and registry is None:
        from repro.monitoring.registry import build_registry

        registry = build_registry()
    recorder = TraceRecorder(
        sim,
        testbed.probes(),
        environment=scenario.environment,
        workload=scenario.mix.name,
        registry=registry,
        collect_full_registry=collect_full_registry,
        rng=streams.stream("monitoring-noise"),
        columnar_rows=columnar_rows,
    )

    built_at = time.perf_counter()
    return PreparedRun(
        scenario=scenario,
        sim=sim,
        streams=streams,
        testbed=testbed,
        recorder=recorder,
        wall_start=wall_start,
        built_at=built_at,
    )


def run_scenario(
    scenario: Scenario,
    collect_full_registry: bool = False,
    registry: Optional[MetricRegistry] = None,
    columnar_rows: bool = False,
    meter_arrivals: bool = False,
    observe: bool = False,
) -> ExperimentResult:
    """Run one scenario end to end and return its result.

    With ``columnar_rows=True`` (requires ``collect_full_registry``)
    the 518-metric samples are stored as per-metric float arrays
    (:class:`~repro.monitoring.columnar.ColumnarRows`) on
    ``result.columnar`` instead of one dict per tick in
    ``result.full_rows`` — the storage that scales to hour-long
    horizons.

    Open-loop scenarios (``scenario.traffic``) are driven by an
    :class:`~repro.traffic.driver.OpenLoopDriver` instead of the
    closed-loop client population and always produce
    ``result.arrival_trace`` and ``result.traffic_report``.  For
    closed-loop runs, ``meter_arrivals=True`` wraps the send path in an
    arrival counter so the run yields the same per-interval offered
    rate trace (the input to model fitting and open-loop replay); it
    draws no randomness and schedules no events, so traces are
    bit-identical with and without it.

    Consolidated scenarios (``scenario.tenants``) run every tenant
    workload on one shared hypervisor; their per-tenant summaries land
    on ``result.tenant_reports`` and the interference signals (CPU
    ready/steal time per domain) on ``result.interference``.

    ``observe=True`` attaches the :class:`~repro.obs.recorder.
    ObsRecorder` — the unified annotation stream plus an ``obs``
    probe-series entity — without perturbing the physics: every
    pre-existing series is bit-identical with and without it.  The
    stream lands on ``result.annotations``.
    """
    prepared = prepare_run(
        scenario,
        collect_full_registry=collect_full_registry,
        registry=registry,
        columnar_rows=columnar_rows,
        meter_arrivals=meter_arrivals,
        observe=observe,
    )
    prepared.start()
    prepared.run_until(scenario.duration_s)
    return prepared.collect()


def _merge_control_columns(columnar, controllers):
    """Append the controllers' per-tick columns to the columnar table.

    Controllers ticking on the sampling grid (the default) contribute
    one row per sample; a controller on a different cadence cannot be
    column-aligned and is skipped (its series stay in the trace set).
    The merged table is filled into one preallocated matrix and
    adopted without a defensive copy — full-registry tables reach
    multi-GB scale and must not be duplicated transiently.
    """
    from repro.monitoring.columnar import ColumnarRows

    rows = len(columnar)
    names = list(columnar.columns)
    blocks = []
    for controller in controllers:
        block_names, block = controller.columnar_block()
        if block.shape[0] != rows:
            continue
        names.extend(block_names)
        blocks.append(block)
    if not blocks:
        return columnar
    merged = np.empty((rows, len(names)))
    base_columns = len(columnar.columns)
    merged[:, :base_columns] = columnar.matrix()
    start = base_columns
    for block in blocks:
        merged[:, start:start + block.shape[1]] = block
        start += block.shape[1]
    return ColumnarRows.adopt_matrix(names, merged)


_result_cache: Dict[tuple, ExperimentResult] = {}


def run_scenario_cached(scenario: Scenario) -> ExperimentResult:
    """Memoized :func:`run_scenario` (per process, by fingerprint)."""
    key = scenario.cache_key
    if key not in _result_cache:
        _result_cache[key] = run_scenario(scenario)
    return _result_cache[key]


def clear_result_cache() -> None:
    """Drop memoized results (tests that need fresh runs)."""
    _result_cache.clear()
