"""The paper's published quantitative results.

All values are transcribed from the text of Sections 4.1-4.2; the
per-series envelope targets are read off the figure axes.  The ratio
vectors use the resource order (CPU cycles, RAM, disk R+W, net RX+TX).

**Internal consistency note** (also in DESIGN.md/EXPERIMENTS.md): R2, R3
and R4 cannot all hold simultaneously under one definition — e.g. for
CPU, R2/R4 = 16.84/1.88 = 8.96 != 3.47 = R3.  Disk and network *are*
mutually consistent.  The calibration therefore targets R1, R2 and R4
exactly and reports R3 as a derived quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ratios import ResourceVector

#: R1 — "demand 6.11, 3.29, 5.71, and 55.56 times more CPU cycles, RAM
#: space, disk read/write, and network data than the back-end server".
PAPER_R1 = ResourceVector(
    cpu_cycles=6.11, mem_used_mb=3.29, disk_kb=5.71, net_kb=55.56
)

#: R2 — VM aggregate over dom0: "16.84, 0.58, 0.47, and 0.98".
PAPER_R2 = ResourceVector(
    cpu_cycles=16.84, mem_used_mb=0.58, disk_kb=0.47, net_kb=0.98
)

#: R3 — VM aggregate over bare-metal aggregate: "3.47, 0.97, 0.6, 0.98".
PAPER_R3 = ResourceVector(
    cpu_cycles=3.47, mem_used_mb=0.97, disk_kb=0.60, net_kb=0.98
)

#: R4 — bare-metal physical over dom0 physical: "88% more CPU cycles,
#: 21% more RAM, and 2% more network traffic, while disk read/write is
#: 25% less".
PAPER_R4 = ResourceVector(
    cpu_cycles=1.88, mem_used_mb=1.21, disk_kb=0.75, net_kb=1.02
)


@dataclass(frozen=True)
class SeriesTargets:
    """Mean per-sample (2 s) demand targets for one tier/entity."""

    cpu_cycles: float
    mem_used_mb: float
    disk_kb: float
    net_kb: float


def _split(total: float, front_share: float) -> tuple:
    return total * front_share, total * (1.0 - front_share)


# -- virtualized environment (Figures 1-4) ------------------------------------
# Web-tier anchors read off the figure axes; back-end derived via R1 so
# the tier ratio holds exactly by construction.
_WEB_CPU = 700.0e6
_WEB_RAM = 600.0
_WEB_DISK = 400.0
_WEB_NET = 5000.0

VIRTUALIZED_TARGETS = {
    "web": SeriesTargets(_WEB_CPU, _WEB_RAM, _WEB_DISK, _WEB_NET),
    "db": SeriesTargets(
        _WEB_CPU / PAPER_R1.cpu_cycles,
        _WEB_RAM / PAPER_R1.mem_used_mb,
        _WEB_DISK / PAPER_R1.disk_kb,
        _WEB_NET / PAPER_R1.net_kb,
    ),
}

_VM_AGG = SeriesTargets(
    VIRTUALIZED_TARGETS["web"].cpu_cycles + VIRTUALIZED_TARGETS["db"].cpu_cycles,
    VIRTUALIZED_TARGETS["web"].mem_used_mb + VIRTUALIZED_TARGETS["db"].mem_used_mb,
    VIRTUALIZED_TARGETS["web"].disk_kb + VIRTUALIZED_TARGETS["db"].disk_kb,
    VIRTUALIZED_TARGETS["web"].net_kb + VIRTUALIZED_TARGETS["db"].net_kb,
)

#: Dom0 targets derived through R2 (held exactly).
DOM0_TARGETS = SeriesTargets(
    _VM_AGG.cpu_cycles / PAPER_R2.cpu_cycles,
    _VM_AGG.mem_used_mb / PAPER_R2.mem_used_mb,
    _VM_AGG.disk_kb / PAPER_R2.disk_kb,
    _VM_AGG.net_kb / PAPER_R2.net_kb,
)

# -- bare-metal environment (Figures 5-8) ---------------------------------------
# Aggregate derived through R4 (held exactly); split between the tiers
# using the proportions visible in Figures 5-8 (web ~2x db for CPU,
# roughly even RAM, 4:1 disk, and the same tiny db share of network).
_PM_CPU_AGG = DOM0_TARGETS.cpu_cycles * PAPER_R4.cpu_cycles
_PM_RAM_AGG = DOM0_TARGETS.mem_used_mb * PAPER_R4.mem_used_mb
_PM_DISK_AGG = DOM0_TARGETS.disk_kb * PAPER_R4.disk_kb
_PM_NET_AGG = DOM0_TARGETS.net_kb * PAPER_R4.net_kb

_PM_CPU = _split(_PM_CPU_AGG, 2.0 / 3.0)
_PM_RAM = _split(_PM_RAM_AGG, 0.524)
_PM_DISK = _split(_PM_DISK_AGG, 0.80)
_PM_NET = _split(_PM_NET_AGG, 1.0 - 1.0 / 56.56)

BARE_METAL_TARGETS = {
    "web": SeriesTargets(_PM_CPU[0], _PM_RAM[0], _PM_DISK[0], _PM_NET[0]),
    "db": SeriesTargets(_PM_CPU[1], _PM_RAM[1], _PM_DISK[1], _PM_NET[1]),
}

#: The paper's testbed constants (Section 3 / 4.1).
PAPER_CLIENTS = 1000
PAPER_THINK_TIME_S = 7.0
PAPER_RUN_DURATION_S = 1200.0
PAPER_SAMPLE_PERIOD_S = 2.0
PAPER_METRIC_COUNT = 518
