"""Parallel experiment-suite orchestration.

The paper's figures come from a *matrix* of runs (environments x
compositions); the growth roadmap multiplies that by traffic kinds,
stress scales and tenant mixes.  This module runs such grids across
worker processes:

* :func:`suite_grid` expands declarative axes into
  :class:`SuiteRun`s — each a serializable
  :class:`~repro.config.ExperimentConfig` plus a stable run id;
* per-run seeds derive from the suite seed and the run id through
  SHA-256 (:func:`derive_run_seed`), so a run's random streams depend
  only on *which* run it is — never on worker count, scheduling order
  or process reuse (the multiprocess-determinism invariant);
* :func:`run_suite` executes the grid inline (``workers=1``) or on a
  spawn-context process pool, returning one :class:`SuiteResult` whose
  merged per-run summaries and trace fingerprints are identical either
  way;
* interference axes: grids may add consolidated (multi-tenant) runs
  through ``tenant_mixes``, and :func:`interference_checks` verifies
  the qualitative consolidation findings (web p95 latency and CPU
  ready time strictly higher than the web-only baseline).

Workers communicate in plain data (config dicts in, summary dicts
out): results are mergeable, JSON-exportable and independent of any
in-process object graph.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.monitoring.export import trace_set_sha256
from repro.workloads.base import TenantSpec

#: Tenant-mix tokens the CLI grid axis accepts.
TENANT_MIXES: Dict[str, Tuple[TenantSpec, ...]] = {
    "none": (),
    "batch": (TenantSpec(),),
}


def derive_run_seed(base_seed: int, run_id: str) -> int:
    """Deterministic 63-bit per-run seed from the suite seed + run id.

    Stable across processes, platforms and Python hash randomization
    (SHA-256, not ``hash()``), and independent of how runs are
    distributed over workers — the property that makes a 4-worker
    sweep bit-identical to the same sweep run serially.
    """
    digest = hashlib.sha256(
        f"{int(base_seed)}:{run_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class SuiteRun:
    """One cell of a suite grid: a run id plus its full config."""

    run_id: str
    config: ExperimentConfig


@dataclass
class RunSummary:
    """Plain-data outcome of one suite run (picklable, mergeable)."""

    run_id: str
    scenario_name: str
    seed: int
    duration_s: float
    wall_clock_s: float
    requests_completed: int
    throughput_rps: float
    mean_response_time_s: float
    p95_response_time_s: float
    trace_sha256: str
    traffic_report: Optional[dict] = None
    tenant_reports: Optional[dict] = None
    cpu_ready_s: Optional[dict] = None
    control_reports: Optional[dict] = None
    #: Diagnosis summary of an observed (``diagnose=True``) faulted
    #: cell — incidents, ranked causes, precision@1 grade, recovery
    #: score and $-per-kilorequest (:func:`repro.obs.ranking.
    #: diagnosis_summary`); None for undiagnosed cells.
    diagnosis: Optional[dict] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        return cls(**data)


@dataclass
class SuiteResult:
    """Merged outcome of a whole suite.

    The per-run seeds (derived by :func:`suite_grid` from the suite
    seed and each run id) are recorded on the individual
    :class:`RunSummary` entries.
    """

    summaries: Dict[str, RunSummary]
    workers: int
    wall_clock_s: float

    def merged_sha256(self) -> str:
        """Order-independent fingerprint over every run's traces."""
        digest = hashlib.sha256()
        for run_id in sorted(self.summaries):
            digest.update(run_id.encode("utf-8"))
            digest.update(self.summaries[run_id].trace_sha256.encode("utf-8"))
        return digest.hexdigest()

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "wall_clock_s": self.wall_clock_s,
            "merged_sha256": self.merged_sha256(),
            "runs": {
                run_id: summary.to_dict()
                for run_id, summary in self.summaries.items()
            },
        }

    def render(self) -> str:
        """Human-readable suite report table."""
        lines = [
            f"{'run':<44s} {'reqs':>8s} {'X req/s':>8s} "
            f"{'mean ms':>8s} {'p95 ms':>8s}  trace sha256",
        ]
        for run_id, s in self.summaries.items():
            lines.append(
                f"{run_id:<44s} {s.requests_completed:>8d} "
                f"{s.throughput_rps:>8.1f} "
                f"{s.mean_response_time_s * 1000:>8.1f} "
                f"{s.p95_response_time_s * 1000:>8.1f}  "
                f"{s.trace_sha256[:16]}"
            )
        lines.append(
            f"{len(self.summaries)} runs, {self.workers} worker(s), "
            f"{self.wall_clock_s:.1f}s wall clock; merged sha256 "
            f"{self.merged_sha256()[:16]}"
        )
        return "\n".join(lines)


# -- grid construction ----------------------------------------------------


def suite_grid(
    environments: Sequence[str] = ("virtualized",),
    compositions: Sequence[str] = ("browsing",),
    traffics: Sequence[Optional[str]] = (None,),
    scales: Sequence[float] = (1.0,),
    tenant_mixes: Sequence[Tuple[TenantSpec, ...]] = ((),),
    controllers: Sequence[Optional[str]] = (None,),
    servers: Sequence[int] = (1,),
    placement: Optional[str] = None,
    placements: Optional[Sequence[str]] = None,
    faults: Sequence[Optional[str]] = (None,),
    engines: Sequence[str] = ("classic",),
    duration_s: Optional[float] = None,
    seed: int = 42,
    clients: Optional[int] = None,
) -> List[SuiteRun]:
    """Expand grid axes into a list of suite runs.

    The run id encodes every axis value, and the per-run seed derives
    from it (:func:`derive_run_seed`).  Invalid cells — tenants,
    controllers, multi-server fleets or fault schedules on a bare-metal
    environment — are skipped, so mixed grids stay declarative.  The
    ``controllers`` axis takes policy tokens
    (``none``/``static``/``threshold``/``pid``/``predictive``), so one
    sweep can grid the same workload over scaling policies; the
    ``servers`` axis grids over fleet sizes (``placement`` selects the
    policy multi-server cells place with); the ``faults`` axis grids
    over fault-schedule tokens (``--faults`` syntax, ``none`` for the
    fault-free cell); the ``engines`` axis grids over request engines
    (``classic``/``batched``), letting one sweep compare the two
    engines cell by cell at matched seeds; the ``placements`` axis
    grids multi-server cells over placement policies (mutually
    exclusive with the scalar ``placement``) — single-server cells,
    which place nothing, are emitted once rather than per policy.
    """
    if placements is not None:
        if placement is not None:
            raise ConfigurationError(
                "placement and placements are mutually exclusive"
            )
        if not placements:
            raise ConfigurationError("placements axis must not be empty")
        placement_axis: Sequence[Optional[str]] = tuple(placements)
    else:
        placement_axis = (placement,)
    runs: List[SuiteRun] = []
    for (
        environment, composition, traffic, scale, tenants, controller,
        server_count, placement_token, fault_token, engine,
    ) in itertools.product(
        environments, compositions, traffics, scales, tenant_mixes,
        controllers, servers, placement_axis, faults, engines,
    ):
        tenants = tuple(tenants)
        if tenants and environment != "virtualized":
            continue  # consolidation needs a hypervisor
        if controller in ("none",):
            controller = None
        if controller is not None and environment != "virtualized":
            continue  # resizing is a hypervisor feature
        if server_count > 1 and environment != "virtualized":
            continue  # placement is a hypervisor-layer feature
        if fault_token in ("none",):
            fault_token = None
        if fault_token is not None and environment != "virtualized":
            continue  # injectors actuate hypervisor state
        if server_count == 1 and placement_token != placement_axis[0]:
            continue  # a single server places nothing: one cell only
        parts = [environment, composition]
        if traffic not in (None, "closed"):
            parts.append(str(traffic))
        if scale != 1.0:
            parts.append(f"x{scale:g}")
        if tenants:
            parts.append("+".join(t.name for t in tenants))
        # The per-run seed is derived *before* the controller,
        # fleet-size, placement-policy, fault and engine tokens are
        # appended: cells that differ only in scaling policy, server
        # count, placement, injected faults
        # or request engine change the *infrastructure* (or what
        # breaks it, or how the lifecycle executes), not the offered
        # workload, and must run the same seed (and therefore the same
        # arrival stream) — or the static-vs-policy, s2/s1,
        # faulted-vs-clean and batched-vs-classic ratios in the
        # aggregate table would compare across seed noise.
        seed_id = "/".join(parts)
        if server_count > 1:
            parts.append(f"s{server_count}")
            if placements is not None:
                parts.append(f"pl-{placement_token}")
        if controller is not None:
            parts.append(f"ctl-{controller}")
        if fault_token is not None:
            parts.append(f"!{fault_token}")
        if engine != "classic":
            parts.append(f"eng-{engine}")
        run_id = "/".join(parts)
        config = ExperimentConfig(
            environment=environment,
            composition=composition,
            duration_s=duration_s,
            seed=derive_run_seed(seed, seed_id),
            clients=clients,
            scale=scale,
            traffic=traffic,
            tenants=tenants,
            controller=controller,
            servers=server_count,
            placement=placement_token if server_count > 1 else None,
            faults=fault_token,
            engine=engine,
        )
        runs.append(SuiteRun(run_id=run_id, config=config))
    if not runs:
        raise ConfigurationError("suite grid expanded to zero valid runs")
    return runs


def paper_matrix_suite(
    duration_s: Optional[float] = None,
    seed: int = 42,
    clients: Optional[int] = None,
    engines: Sequence[str] = ("classic",),
) -> List[SuiteRun]:
    """The paper's published 4-run matrix (2 environments x 2 workloads).

    ``engines`` optionally grids the matrix over request engines (the
    input to the classic-vs-batched equivalence harness).
    """
    return suite_grid(
        environments=("virtualized", "bare-metal"),
        compositions=("browsing", "bidding"),
        engines=engines,
        duration_s=duration_s,
        seed=seed,
        clients=clients,
    )


# -- execution -------------------------------------------------------------


def execute_run(
    run: SuiteRun,
    diagnose: bool = False,
    slo_ms: float = 100.0,
) -> RunSummary:
    """Run one suite cell in this process and summarize it.

    With ``diagnose=True``, cells that *inject faults* run observed
    (annotation stream + ``obs`` probe) and carry a
    :func:`~repro.obs.ranking.diagnosis_summary`; fault-free cells
    stay unobserved, so their traces keep the pinned fingerprints.
    """
    from repro.experiments.runner import run_scenario

    scenario = run.config.to_scenario()
    observed = diagnose and scenario.faults is not None
    started = time.perf_counter()
    result = run_scenario(scenario, observe=observed)
    wall = time.perf_counter() - started
    diagnosis = None
    if observed:
        from repro.obs.ranking import diagnosis_summary

        diagnosis = diagnosis_summary(result, slo_ms=slo_ms)
    interference = result.interference or {}
    return RunSummary(
        run_id=run.run_id,
        scenario_name=scenario.name,
        seed=scenario.seed,
        duration_s=scenario.duration_s,
        wall_clock_s=wall,
        requests_completed=result.requests_completed,
        throughput_rps=result.throughput_rps,
        mean_response_time_s=result.mean_response_time_s,
        p95_response_time_s=result.p95_response_time_s,
        trace_sha256=trace_set_sha256(result.traces),
        traffic_report=result.traffic_report,
        tenant_reports=result.tenant_reports,
        cpu_ready_s=interference.get("cpu_ready_s"),
        control_reports=result.control_reports,
        diagnosis=diagnosis,
    )


def warm_worker() -> None:
    """Pre-pay a worker process's one-time warmup at pool start.

    A spawned worker's first run otherwise imports the whole stack and
    calibrates both environments lazily (~1.5 s per worker, see
    PERFORMANCE.md); running this as the pool initializer overlaps that
    cost with pool startup and guarantees every later run in the worker
    hits the memoized calibration and matrix caches.  Pure warmup: it
    draws no randomness and builds no simulator state, so results are
    bit-identical with or without it.
    """
    from repro.experiments.runner import run_scenario  # noqa: F401
    from repro.experiments.testbed import calibrated_environment
    from repro.rubis.transitions import bidding_matrix, browsing_matrix

    for environment in ("virtualized", "bare-metal"):
        calibrated_environment(environment)
    for matrix in (browsing_matrix(), bidding_matrix()):
        matrix.stationary_distribution()


def _execute_payload(payload: dict) -> dict:
    """Worker entry point: plain dict in, plain dict out (spawn-safe)."""
    run = SuiteRun(
        run_id=payload["run_id"],
        config=ExperimentConfig.from_dict(payload["config"]),
    )
    return execute_run(
        run,
        diagnose=payload.get("diagnose", False),
        slo_ms=payload.get("slo_ms", 100.0),
    ).to_dict()


def run_suite(
    runs: Iterable[SuiteRun],
    workers: int = 1,
    diagnose: bool = False,
    slo_ms: float = 100.0,
) -> SuiteResult:
    """Execute a suite grid and merge the per-run summaries.

    ``workers=1`` runs inline (no subprocesses).  With more workers the
    runs execute on a ``spawn``-context process pool: each worker is a
    fresh interpreter, receives configs as plain dicts and returns
    summaries as plain dicts, so results cannot depend on inherited
    process state.  Run ids, seeds and therefore traces are identical
    across worker counts; only wall clock changes.

    ``diagnose=True`` turns the sweep into a chaos sweep: faulted
    cells run observed and their summaries carry a diagnosis (graded
    against ``slo_ms``) — the input to the policy ranking table.
    Diagnoses, like traces, are identical across worker counts.
    """
    run_list = list(runs)
    if not run_list:
        raise ConfigurationError("run_suite needs at least one run")
    ids = [run.run_id for run in run_list]
    if len(set(ids)) != len(ids):
        raise ConfigurationError(f"duplicate run ids in suite: {ids}")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    workers = min(workers, len(run_list))
    started = time.perf_counter()
    if workers == 1:
        summaries = [
            execute_run(run, diagnose=diagnose, slo_ms=slo_ms)
            for run in run_list
        ]
    else:
        import multiprocessing

        payloads = [
            {
                "run_id": run.run_id,
                "config": run.config.to_dict(),
                "diagnose": diagnose,
                "slo_ms": slo_ms,
            }
            for run in run_list
        ]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context,
            initializer=warm_worker,
        ) as pool:
            summaries = [
                RunSummary.from_dict(out)
                for out in pool.map(_execute_payload, payloads)
            ]
    wall = time.perf_counter() - started
    return SuiteResult(
        summaries={s.run_id: s for s in summaries},
        workers=workers,
        wall_clock_s=wall,
    )


# -- aggregate analysis over merged suite results ---------------------------


def suite_ratio_data(
    suite: "SuiteResult", baseline_run_id: Optional[str] = None
) -> Dict[str, Dict[str, float]]:
    """Per-run metrics plus ratios against a baseline run.

    The paper's headline results are *ratio* tables (virtualized over
    bare metal); this is the suite-level generalization: every run's
    throughput, mean/p95 latency, shed fraction and control-action
    count, each paired with its ratio to the ``baseline_run_id`` run
    (default: the first run of the suite).  Plain data, so the table
    renders from a merged suite JSON as well as from a live result.
    """
    if not suite.summaries:
        raise ConfigurationError("suite has no runs to tabulate")
    run_ids = list(suite.summaries)
    baseline_id = baseline_run_id or run_ids[0]
    if baseline_id not in suite.summaries:
        raise ConfigurationError(
            f"unknown baseline run {baseline_id!r}; suite has {run_ids}"
        )

    def metrics(summary: RunSummary) -> Dict[str, float]:
        traffic = summary.traffic_report or {}
        controls = summary.control_reports or {}
        actions = sum(
            report.get("num_actions", 0) for report in controls.values()
        )
        return {
            "throughput_rps": summary.throughput_rps,
            "mean_ms": summary.mean_response_time_s * 1000.0,
            "p95_ms": summary.p95_response_time_s * 1000.0,
            "shed_fraction": float(traffic.get("shed_fraction", 0.0)),
            "control_actions": float(actions),
        }

    baseline = metrics(suite.summaries[baseline_id])
    table: Dict[str, Dict[str, float]] = {}
    for run_id in run_ids:
        row = metrics(suite.summaries[run_id])
        for name in list(row):
            base = baseline[name]
            row[f"{name}_ratio"] = (
                row[name] / base if base else float("nan")
            )
        table[run_id] = row
    return table


def render_suite_ratio_table(
    suite: "SuiteResult", baseline_run_id: Optional[str] = None
) -> str:
    """Human-readable aggregate ratio table for a whole sweep.

    One row per run; each metric prints as ``value (ratio x)`` against
    the baseline run, which is marked with ``*``.
    """
    data = suite_ratio_data(suite, baseline_run_id)
    baseline_id = baseline_run_id or next(iter(suite.summaries))
    columns = ("throughput_rps", "mean_ms", "p95_ms", "shed_fraction")
    header = f"{'run':<44s}" + "".join(
        f" {name:>22s}" for name in columns
    ) + f" {'actions':>8s}"
    lines = [header]
    for run_id, row in data.items():
        label = f"{run_id}{'*' if run_id == baseline_id else ''}"
        cells = []
        for name in columns:
            ratio = row[f"{name}_ratio"]
            ratio_text = f"{ratio:.2f}x" if ratio == ratio else "-"
            cells.append(f" {row[name]:>13.3g} ({ratio_text:>6s})")
        lines.append(
            f"{label:<44s}" + "".join(cells)
            + f" {row['control_actions']:>8.0f}"
        )
    lines.append(f"baseline (*): {baseline_id}")
    return "\n".join(lines)


# -- qualitative consolidation checks -------------------------------------


def interference_checks(
    web_only: "RunSummary", consolidated: "RunSummary"
) -> Dict[str, bool]:
    """The consolidation findings, as named pass/fail checks.

    Compares a web-only baseline against the same web workload running
    next to batch tenants: co-location must *strictly* raise the web
    tier's p95 latency and its domain's CPU ready (steal) time, and
    the batch tenant must have made real progress (the interference is
    caused by work, not by accounting).
    """
    ready = consolidated.cpu_ready_s or {}
    baseline_ready = (web_only.cpu_ready_s or {}).get("web-vm", 0.0)
    tenants = consolidated.tenant_reports or {}
    batch_progress = sum(
        report.get("tasks_completed", 0) for report in tenants.values()
    )
    return {
        "web p95 latency strictly above web-only baseline": (
            consolidated.p95_response_time_s > web_only.p95_response_time_s
        ),
        "web-vm CPU ready time strictly above baseline": (
            ready.get("web-vm", 0.0) > baseline_ready
        ),
        "batch tenant completed tasks": batch_progress > 0,
    }
