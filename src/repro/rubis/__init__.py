"""RUBiS benchmark model (substrate S5).

RUBiS (Rice University Bidding System) is the eBay-like auction benchmark
the paper drives its testbed with: a browsing/bidding client emulator in
front of a PHP web+application tier and a MySQL database tier.  This
package models

* the 26 RUBiS interactions with per-interaction resource profiles,
* the client emulator's Markov transition tables for the browsing mix,
  the bidding mix, and the paper's three blended compositions,
* the auction data set (tables, row counts, sizes) and a buffer pool,
* both server tiers as queueing stations with memory dynamics,
* closed-loop client sessions (1000 clients, 7 s think time), and
* deployment wiring for the virtualized and bare-metal environments.
"""

from repro.rubis.interactions import (
    BIDDING_INTERACTIONS,
    BROWSING_INTERACTIONS,
    INTERACTIONS,
    Interaction,
)
from repro.rubis.transitions import (
    TransitionMatrix,
    bidding_matrix,
    browsing_matrix,
)
from repro.rubis.database import BufferPool, RubisDatabase, TableSpec
from repro.rubis.workload import (
    PAPER_COMPOSITIONS,
    SessionType,
    WorkloadMix,
)
from repro.rubis.demand import DemandSampler, DemandScaling
from repro.rubis.memorymodel import MemoryProfile, TierMemoryModel
from repro.rubis.phptier import PhpTier, PhpTierConfig
from repro.rubis.mysqltier import MysqlTier, MysqlTierConfig
from repro.rubis.client import ClientPopulation, ClientSession, SessionStats
from repro.rubis.deployment import (
    BareMetalDeployment,
    Deployment,
    VirtualizedDeployment,
)

__all__ = [
    "Interaction",
    "INTERACTIONS",
    "BROWSING_INTERACTIONS",
    "BIDDING_INTERACTIONS",
    "TransitionMatrix",
    "browsing_matrix",
    "bidding_matrix",
    "RubisDatabase",
    "BufferPool",
    "TableSpec",
    "WorkloadMix",
    "SessionType",
    "PAPER_COMPOSITIONS",
    "DemandSampler",
    "DemandScaling",
    "MemoryProfile",
    "TierMemoryModel",
    "PhpTier",
    "PhpTierConfig",
    "MysqlTier",
    "MysqlTierConfig",
    "ClientSession",
    "ClientPopulation",
    "SessionStats",
    "Deployment",
    "VirtualizedDeployment",
    "BareMetalDeployment",
]
