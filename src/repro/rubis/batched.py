"""Array-native RUBiS request engine (the batched epoch-2 engine).

The classic engine walks every request through ~6.5 heap events and a
chain of Python frames.  This module replaces that per-request machinery
with cohort processing: a :class:`~repro.sim.process.PeriodicProcess`
drain tick (every :data:`~repro.sim.batched.DRAIN_INTERVAL_S` seconds)
collects every session whose next send falls inside the tick, draws
transitions and demands as arrays, pushes the whole cohort through the
request path with vectorized device recursions, and writes counters back
in bulk.  Controllers, faults, migrations, probes and every other
subsystem keep running through the tuple heap unchanged — they observe
the same monotonic counters, station statistics, memory gauges and
session stats the classic engine maintains.

Two drivers mirror the classic traffic drivers one-for-one:

* :class:`BatchedClosedDriver` — the closed-loop population
  (think/send/wait loops, ramp-up, synchronized burst waves);
* :class:`BatchedOpenDriver` — the open-loop driver.  It consumes the
  *same* ``"<stream>.arrivals"`` RNG stream through the same
  :func:`~repro.traffic.spec.build_process`, so the offered arrival
  times are bit-identical to the classic engine at matched seeds.

The batched engine is a deliberate RNG epoch: request-path randomness
moves to the ``batched.*`` streams (drawn as arrays), so traces are
*equivalent in distribution* to the classic engine — verified by
``tests/integration/test_engine_equivalence.py`` — but not bit-identical.
Classic traces are untouched: the ``batched.*`` stream names are new, and
:class:`~repro.sim.random.RandomStreams` derives streams independently
by name.

Documented approximations (all bounded by one drain tick or absorbed by
the distributional tolerances):

* device contention is resolved stage-by-stage within a drain, not in
  global time order (NIC/disk utilization in the paper scenarios is low
  enough that the reordering is statistically invisible);
* per-request counter updates land when the drain processes the cohort,
  smearing them by less than one tick inside the 2 s sampling period;
* the scheduler speed fraction is sampled once per drain per tier (the
  classic engine samples it at each service start);
* station backlog observations are occupancy estimates;
* a burst wave releases its clients at the wave time but they are picked
  up by the next drain (≤ one tick late);
* with a ``session_budget``, open-loop admission replays the gate
  against exact intra-window finish times via a fixpoint (run waves →
  credit completions → re-admit), matching the classic slot-recycling
  gate; only when the budget binds *tightly* can admission order differ
  from the classic event interleaving by a bounded handful of sessions
  per tick (exact when no budget is set);
* the ``vcpu_contention`` refinement uses the scheduler fraction without
  the per-worker time-sharing term.
"""

from __future__ import annotations

from bisect import bisect_right
from math import ceil
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rubis.client import SessionStats
from repro.rubis.database import BufferPool
from repro.rubis.transitions import TransitionMatrix
from repro.rubis.workload import SessionType, WorkloadMix
from repro.sim.batched import DRAIN_INTERVAL_S, DRAIN_PRIORITY, FcfsPool, lindley
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.virt.io_backend import DOM0_OWNER

PAGE_BYTES = BufferPool.PAGE_BYTES


class _InteractionTable:
    """Column-oriented view of the demand profiles, one row per interaction.

    Built from the :class:`~repro.rubis.demand.DemandSampler` profiles so
    every base value and noise parameter is *the same number* the classic
    engine uses — the engines can only differ in which stream the noise
    factors are drawn from.
    """

    def __init__(self, sampler, names) -> None:
        self.names: List[str] = list(names)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        n = len(self.names)
        self.response_base = np.zeros(n)
        self.response_mu = np.zeros(n)
        self.response_sigma = np.zeros(n)
        self.web_base = np.zeros(n)
        self.db_base = np.zeros(n)
        self.db_queries = np.zeros(n)
        self.pages = np.zeros(n, dtype=np.int64)
        self.db_write_base = np.zeros(n)
        self.web_log_base = np.zeros(n)
        self.request_base = np.zeros(n)
        self.query_bytes = np.zeros(n)
        self.result_bytes = np.zeros(n)
        self.writes = np.zeros(n, dtype=bool)
        row_bytes = max(sampler._row_bytes, 1.0)
        rows_per_page = max(PAGE_BYTES / row_bytes, 1.0)
        demand_params = log_params = req_params = None
        for i, name in enumerate(self.names):
            (response_base, response_params, web_base, db_base, db_queries,
             rows_touched, db_write_base, web_log_base, request_base,
             query_bytes, result_bytes, writes, demand_params, log_params,
             req_params) = sampler._build_profile(name)
            self.response_base[i] = response_base
            if response_params is not None:
                self.response_mu[i] = response_params[0]
                self.response_sigma[i] = response_params[1]
            self.web_base[i] = web_base
            self.db_base[i] = db_base
            self.db_queries[i] = db_queries
            if rows_touched > 0:
                self.pages[i] = max(1, ceil(rows_touched / rows_per_page))
            self.db_write_base[i] = db_write_base
            self.web_log_base[i] = web_log_base
            self.request_base[i] = request_base
            self.query_bytes[i] = query_bytes
            self.result_bytes[i] = result_bytes
            self.writes[i] = bool(writes)
        # The cv-derived (mu, sigma) pairs are shared across interactions.
        self.demand_params = demand_params
        self.log_params = log_params
        self.req_params = req_params


class _MatrixWalk:
    """Vectorized transition stepping for one matrix.

    ``cdf_rows[s]`` is exactly the per-state CDF the classic
    ``next_state`` bisects; ``(row <= u).sum()`` reproduces
    ``bisect_right(row, u)`` element-for-element, so the local-state
    distribution is identical to a per-session walk.
    """

    def __init__(self, matrix: TransitionMatrix, table: _InteractionTable):
        self.matrix = matrix
        self.cdf_rows = np.asarray(matrix._cdfs)
        self.to_global = np.asarray(
            [table.index[state] for state in matrix.states], dtype=np.int64
        )
        self.initial_index = matrix.states.index(matrix.initial_state)

    def step(self, rng: np.random.Generator, states: np.ndarray) -> np.ndarray:
        draws = rng.random(states.size)
        return (self.cdf_rows[states] <= draws[:, None]).sum(axis=1)


def _bump(counters: dict, owner: str, amount: float) -> None:
    try:
        counters[owner] += amount
    except KeyError:
        counters[owner] = amount


def _update_station(station, occupancy, waits, durations) -> None:
    """Mirror the per-request station statistics for a drained cohort.

    Backlog observations are occupancy-derived estimates: requests that
    never waited observe 1 (the classic fast path), queued requests
    observe their queue depth.
    """
    n = occupancy.size
    stats = station.stats
    stats.arrivals += n
    stats.completions += n
    stats.total_service_s += float(durations.sum())
    if waits is not None:
        stats.total_wait_s += float(waits.sum())
        observed = np.where(
            waits > 0.0,
            np.maximum(occupancy - station.workers, 1),
            1,
        )
    else:
        observed = np.ones(n, dtype=np.int64)
    stats.backlog_sum += float(observed.sum())
    stats._observations += n
    peak = int(observed.max())
    if peak > stats.peak_backlog:
        stats.peak_backlog = peak
    occ_peak = int(occupancy.max())
    if occ_peak > station._window_peak:
        station._window_peak = occ_peak


class _PoolAdapter:
    """Lets the migration pause actuator reach the batched pools.

    Registered on the execution contexts next to the (idle) classic
    stations, so ``rescale_in_flight`` stretches the carried worker-free
    times exactly like it stretches classic in-flight completions.
    """

    def __init__(self, sim: Simulator, pool: FcfsPool) -> None:
        self.sim = sim
        self.pool = pool

    def rescale_in_flight(self, factor: float) -> int:
        return self.pool.rescale_remaining(self.sim.now, factor)


class BatchedPhysics:
    """Pushes request cohorts through the two-tier request path.

    One instance per deployment.  :meth:`begin_drain` snapshots device
    busy state and the per-tier execution handles (re-resolved every
    drain so live migrations that rebind a context take effect at the
    next tick); :meth:`process` runs one cohort; :meth:`end_drain`
    writes device state back and refreshes the scheduler demand gauges.
    """

    def __init__(self, sim: Simulator, deployment, rng, tracer=None) -> None:
        self.sim = sim
        self.deployment = deployment
        self.rng = rng
        #: Request tracer (:class:`repro.obs.tracing.RequestTracer`) of
        #: a ``trace_sample > 0`` run.  Spans are *reconstructed* from
        #: the cohort arrays at drain time — tracing never forces the
        #: classic path and consumes no randomness.
        self.tracer = tracer
        sampler = deployment.demand_sampler
        from repro.rubis.interactions import INTERACTIONS

        self.table = _InteractionTable(sampler, sorted(INTERACTIONS))
        self.buffer_pool = deployment.buffer_pool
        self.virtualized = deployment.environment == "virtualized"
        self.web_pool = FcfsPool(deployment.config.php.workers)
        self.db_pool = FcfsPool(deployment.config.mysql.workers)
        deployment.web_context.register_station(
            _PoolAdapter(sim, self.web_pool)
        )
        deployment.db_context.register_station(
            _PoolAdapter(sim, self.db_pool)
        )
        self._web_scale = deployment.config.php.request_account_scale
        self._db_scale = deployment.config.mysql.request_account_scale
        self._views: dict = {}
        self._wave = 0

    # -- drain lifecycle ---------------------------------------------------

    def begin_drain(self) -> None:
        self._views = {}
        # Waves inside one drain window overlap in time: each is
        # scheduled against the window-start pool state and the waves
        # are folded back into one carried state at end_drain.
        self._wave = 0
        self._web_free0 = self.web_pool.snapshot()
        self._db_free0 = self.db_pool.snapshot()
        self._web_comps: list = []
        self._db_comps: list = []
        d = self.deployment
        if self.virtualized:
            self._hv_web = d.web_context.hypervisor
            self._hv_db = d.db_context.hypervisor
            web_frac = self._hv_web.scheduler.speed_fraction(
                d.web_context.domain.name
            )
            db_frac = self._hv_db.scheduler.speed_fraction(
                d.db_context.domain.name
            )
            self._web_s_per_cycle = 1.0 / (
                self._hv_web.server.cpu.frequency_hz * web_frac
            )
            self._db_s_per_cycle = 1.0 / (
                self._hv_db.server.cpu.frequency_hz * db_frac
            )
            # Pure (uncontended) rates: the span reconstruction reports
            # actual − pure as the credit-scheduler ready inflation.
            self._web_pure_per_cycle = (
                1.0 / self._hv_web.server.cpu.frequency_hz
            )
            self._db_pure_per_cycle = (
                1.0 / self._hv_db.server.cpu.frequency_hz
            )
        else:
            self._web_s_per_cycle = 1.0 / d.web_server.cpu.frequency_hz
            self._db_s_per_cycle = 1.0 / d.db_server.cpu.frequency_hz
            self._web_pure_per_cycle = self._web_s_per_cycle
            self._db_pure_per_cycle = self._db_s_per_cycle

    def end_drain(self, horizon: float) -> None:
        self.web_pool.merge_window(self._web_free0, self._web_comps)
        self.db_pool.merge_window(self._db_free0, self._db_comps)
        # Several hops (lanes) share one physical device; the carried
        # busy frontier is the latest completion over all of them.
        merged: dict = {}
        for (dev_id, kind, direction, _lane, _wave), view in self._views.items():
            key = (dev_id, kind, direction)
            prior = merged.get(key)
            if prior is None or view[0] > prior[0]:
                merged[key] = view
        for (_, kind, direction), view in merged.items():
            device = view[1]
            if kind == "nic":
                if direction == "rx":
                    device._rx_busy_until = view[0]
                else:
                    device._tx_busy_until = view[0]
            else:
                device._busy_until = view[0]
        self._views = {}
        if self.virtualized:
            d = self.deployment
            d.web_context.domain.active_workers = self.web_pool.busy_count(
                horizon
            )
            d.db_context.domain.active_workers = self.db_pool.busy_count(
                horizon
            )

    # -- device views ------------------------------------------------------

    def _view(self, device, kind: str, direction: str, lane: str) -> list:
        """Busy-frontier view of one device for one *hop* (lane).

        The stage sweep visits a shared device out of global time
        order (all stage-A transfers, then all stage-Q transfers, ...),
        so one common frontier would floor a later stage's early
        transfers behind the previous stage's last completion.  Each
        hop therefore gets its own lane seeded from the device's real
        busy time: serialization *within* a hop is exact (Lindley) and
        cross-hop contention inside one drain is not modeled — a
        documented approximation, negligible at the paper's device
        utilizations.
        """
        key = (id(device), kind, direction, lane, self._wave)
        view = self._views.get(key)
        if view is None:
            if kind == "nic":
                busy = (
                    device._rx_busy_until
                    if direction == "rx"
                    else device._tx_busy_until
                )
            else:
                busy = device._busy_until
            view = [busy, device]
            self._views[key] = view
        return view

    def _nic_flow(
        self, nic, direction, times, physical, owner, lane
    ) -> np.ndarray:
        view = self._view(nic, "nic", direction, lane)
        completions, view[0] = lindley(
            times, physical / nic.bandwidth_bps, view[0]
        )
        counters = nic._rx_bytes if direction == "rx" else nic._tx_bytes
        _bump(counters, owner, float(physical.sum()))
        nic.packets[direction] += times.size
        return completions

    def _disk_flow(self, disk, kind, times, physical, owner, lane) -> np.ndarray:
        view = self._view(disk, "disk", "", lane)
        bandwidth = (
            disk.read_bandwidth_bps
            if kind == "read"
            else disk.write_bandwidth_bps
        )
        completions, view[0] = lindley(
            times, disk.access_latency_s + physical / bandwidth, view[0]
        )
        counters = disk._bytes_read if kind == "read" else disk._bytes_written
        _bump(counters, owner, float(physical.sum()))
        disk.requests_served += times.size
        return completions

    # -- tier-level operations (virtualized vs bare-metal) ------------------

    def _net(
        self, tier: str, direction: str, times, logical, lane: str
    ) -> np.ndarray:
        """Guest/host network transfer for one cohort; returns completions."""
        context = (
            self.deployment.web_context
            if tier == "web"
            else self.deployment.db_context
        )
        if self.virtualized:
            hv = self._hv_web if tier == "web" else self._hv_db
            backend = hv.net_backend
            vm = backend._vm_rx if direction == "rx" else backend._vm_tx
            _bump(vm, context.owner, float(logical.sum()))
            physical = logical * backend._amplification
            backend._charge(
                DOM0_OWNER, float(physical.sum()) * backend._cycles_per_byte
            )
            return self._nic_flow(
                backend.nic, direction, times, physical, DOM0_OWNER, lane
            )
        physical = logical * context.os_model.net_accounting_factor
        return self._nic_flow(
            context.server.nic, direction, times, physical, context.owner,
            lane,
        )

    def _disk_write(self, tier: str, times, logical) -> None:
        """Asynchronous write-back (access log, dirty pages, binlog)."""
        context = (
            self.deployment.web_context
            if tier == "web"
            else self.deployment.db_context
        )
        if self.virtualized:
            hv = self._hv_web if tier == "web" else self._hv_db
            backend = hv.block_backend
            _bump(backend._vm_written, context.owner, float(logical.sum()))
            physical = logical * backend._amplification
            backend._charge(
                DOM0_OWNER, float(physical.sum()) * backend._cycles_per_byte
            )
            if backend.overhead.batch_writes:
                backend._pending_write_bytes += float(physical.sum())
            else:
                self._disk_flow(
                    backend.disk, "write", times, physical, DOM0_OWNER,
                    f"{tier}.write",
                )
            return
        physical = logical * context.os_model.disk_accounting_factor
        self._disk_flow(
            context.server.disk, "write", times, physical, context.owner,
            f"{tier}.write",
        )

    def _db_disk_read(self, times, logical) -> np.ndarray:
        """Synchronous buffer-pool miss reads; returns completions."""
        context = self.deployment.db_context
        if self.virtualized:
            backend = self._hv_db.block_backend
            _bump(backend._vm_read, context.owner, float(logical.sum()))
            physical = logical * backend._amplification
            backend._charge(
                DOM0_OWNER, float(physical.sum()) * backend._cycles_per_byte
            )
            return self._disk_flow(
                backend.disk, "read", times, physical, DOM0_OWNER, "db.read"
            )
        physical = logical * context.os_model.disk_accounting_factor
        return self._disk_flow(
            context.server.disk, "read", times, physical, context.owner,
            "db.read",
        )

    def _account_requests(self, tier: str, count: int, scale: float) -> None:
        context = (
            self.deployment.web_context
            if tier == "web"
            else self.deployment.db_context
        )
        if self.virtualized:
            hv = self._hv_web if tier == "web" else self._hv_db
            hv.requests_accounted += count
            hv.server.cpu.charge(
                DOM0_OWNER,
                count * hv.overhead.hypercall_cycles_per_request * scale,
            )
        else:
            context.server.cpu.charge(
                context.owner,
                count * context.os_model.syscall_cycles_per_request * scale,
            )

    def _account_commits(self, count: int) -> None:
        context = self.deployment.db_context
        if self.virtualized:
            self._hv_db.server.cpu.charge(
                DOM0_OWNER, count * self._hv_db.overhead.commit_cycles
            )
        else:
            context.server.cpu.charge(
                context.owner, count * context.os_model.commit_cycles
            )

    def _charge_cpu(self, tier: str, cycles_total: float) -> None:
        context = (
            self.deployment.web_context
            if tier == "web"
            else self.deployment.db_context
        )
        if self.virtualized:
            hv = self._hv_web if tier == "web" else self._hv_db
            hv.server.cpu.charge(context.owner, cycles_total)
        else:
            context.server.cpu.charge(context.owner, cycles_total)

    # -- the request path ---------------------------------------------------

    def process(
        self, t0: np.ndarray, g: np.ndarray, trace=None
    ) -> np.ndarray:
        """Run one cohort through the request path.

        ``t0`` (sorted nondecreasing) are the client send times and ``g``
        the global interaction indices, aligned.  Returns the response
        delivery times in the same order.

        ``trace``, when given, is ``(mask, session_ids, seqs)`` aligned
        with the cohort; sampled rows get their span trees reconstructed
        from the stage intermediates after the cohort completes.  The
        capture touches no RNG and no device state, so traced physics is
        bit-identical to untraced physics.
        """
        d = self.deployment
        table = self.table
        rng = self.rng
        n = t0.size
        emit = None
        if trace is not None and self.tracer is not None:
            mask = trace[0]
            if mask.any():
                emit = np.nonzero(mask)[0]
        self._wave += 1
        if self._wave > 1:
            # A later wave overlaps the earlier ones in time; serve it
            # from the window-start pool state (see begin_drain).
            self.web_pool.restore(self._web_free0)
            self.db_pool.restore(self._db_free0)

        # Demand draws, all at once (classic order per request: response
        # noise, buffer-pool binomial, demand noise x3, log, request).
        response_noise = rng.lognormal(
            table.response_mu[g], table.response_sigma[g]
        )
        response_bytes = table.response_base[g] * response_noise
        pages = table.pages[g]
        missed = rng.binomial(pages, self.buffer_pool._miss_probability)
        pool = self.buffer_pool
        pool.hits += int((pages - missed).sum())
        pool.misses += int(missed.sum())
        db_read_bytes = missed * float(PAGE_BYTES)
        if table.demand_params is not None:
            mu, sigma = table.demand_params
            web_noise = rng.lognormal(mu, sigma, n)
            db_noise = rng.lognormal(mu, sigma, n)
            write_noise = rng.lognormal(mu, sigma, n)
        else:
            web_noise = db_noise = write_noise = np.ones(n)
        web_cycles = table.web_base[g] * web_noise
        db_cycles = table.db_base[g] * db_noise
        db_write_bytes = table.db_write_base[g] * write_noise
        log_mu, log_sigma = table.log_params
        web_log_bytes = table.web_log_base[g] * rng.lognormal(
            log_mu, log_sigma, n
        )
        req_mu, req_sigma = table.req_params
        request_bytes = table.request_base[g] * rng.lognormal(
            req_mu, req_sigma, n
        )
        queries = table.db_queries[g]
        query_bytes = table.query_bytes[g]
        result_bytes = table.result_bytes[g]
        commits = table.writes[g]

        # Stage A: client -> web ingress.
        c1 = self._net("web", "rx", t0, request_bytes, "request")
        web_arrive = c1 + d._lat_client_web

        # Stage W: the PHP worker pool.
        web_durations = web_cycles * self._web_s_per_cycle
        starts, wd, occupancy = self.web_pool.schedule(
            web_arrive, web_durations
        )
        self._web_comps.append(wd)
        waits = None
        if starts is not web_arrive:
            waits = starts - web_arrive
        self._account_requests("web", n, self._web_scale)
        self._charge_cpu("web", float(web_cycles.sum()))
        _update_station(d.php_tier.station, occupancy, waits, web_durations)
        d.php_tier.requests_handled += n

        # Web completion side effects: access log + session store writes.
        order = np.argsort(wd, kind="stable")
        self._disk_write("web", wd[order], web_log_bytes[order])

        has_db = queries > 0
        t_ready = wd.copy()  # per-request time the response leaves the web tier
        db_arrive_f = db_start_f = db_done_f = blocked_f = None
        if emit is not None:
            # Cohort-aligned scatter targets for the span reconstruction.
            db_arrive_f = np.full(n, np.nan)
            db_start_f = np.full(n, np.nan)
            db_done_f = np.full(n, np.nan)
            blocked_f = np.zeros(n)
        if has_db.any():
            sub = np.nonzero(has_db)[0]
            sub = sub[np.argsort(wd[sub], kind="stable")]
            wd_s = wd[sub]
            # Stage Q: query out of the web tier, into the db tier.
            self._net("web", "tx", wd_s, query_bytes[sub], "query")
            c2 = self._net("db", "rx", wd_s, query_bytes[sub], "query")
            db_arrive = c2 + d._lat_web_db

            # Stage D: the MySQL worker pool.  Miss reads are submitted
            # at the queue-arrival time (exact whenever the request does
            # not wait, which is the overwhelmingly common case).
            db_durations = db_cycles[sub] * self._db_s_per_cycle
            reads = db_read_bytes[sub] > 0
            if reads.any():
                r = np.nonzero(reads)[0]
                read_done = self._db_disk_read(
                    db_arrive[r], db_read_bytes[sub][r]
                )
                blocked = read_done - db_arrive[r]
                np.add.at(db_durations, r, np.maximum(blocked, 0.0))
                if emit is not None:
                    blocked_f[sub[r]] = np.maximum(blocked, 0.0)
            db_starts, dd, db_occ = self.db_pool.schedule(
                db_arrive, db_durations
            )
            if emit is not None:
                db_arrive_f[sub] = db_arrive
                db_start_f[sub] = db_starts
                db_done_f[sub] = dd
            self._db_comps.append(dd)
            db_waits = None
            if db_starts is not db_arrive:
                db_waits = db_starts - db_arrive
            self._account_requests("db", sub.size, self._db_scale)
            self._charge_cpu("db", float(db_cycles[sub].sum()))
            _update_station(
                d.mysql_tier.station, db_occ, db_waits, db_durations
            )
            d.mysql_tier.queries_executed += int(queries[sub].sum())
            commit_count = int(commits[sub].sum())
            if commit_count:
                d.mysql_tier.commits += commit_count
                self._account_commits(commit_count)

            # Db completion side effects and the result hop back.
            dorder = np.argsort(dd, kind="stable")
            dd_o = dd[dorder]
            sub_o = sub[dorder]
            writes_mask = db_write_bytes[sub_o] > 0
            if writes_mask.any():
                w = np.nonzero(writes_mask)[0]
                self._disk_write("db", dd_o[w], db_write_bytes[sub_o][w])
            self._net("db", "tx", dd_o, result_bytes[sub_o], "result")
            c3 = self._net("web", "rx", dd_o, result_bytes[sub_o], "result")
            t_ready[sub_o] = c3 + d._lat_db_web

        # Stage S: response egress back to the client.
        sorder = np.argsort(t_ready, kind="stable")
        c4 = self._net(
            "web", "tx", t_ready[sorder], response_bytes[sorder], "response"
        )
        t_done = np.empty(n)
        t_done[sorder] = c4 + d._lat_web_client
        if emit is not None:
            self._emit_traces(
                emit, trace[1], trace[2], t0, g, web_arrive, starts, wd,
                web_cycles, db_cycles, has_db, db_arrive_f, db_start_f,
                db_done_f, blocked_f, t_ready, t_done,
            )
        return t_done

    def _emit_traces(
        self, idx, sids, seqs, t0, g, web_arrive, web_starts, wd,
        web_cycles, db_cycles, has_db, db_arrive, db_start, db_done,
        blocked, t_ready, t_done,
    ) -> None:
        """Reconstruct span trees for the sampled cohort rows.

        Pure bookkeeping over already-computed stage arrays; runs after
        the cohort's physics so it cannot perturb device state.  The
        spans mirror the classic engine's chain: request ingress, web
        CPU (queue/pure/ready split), query hop, db CPU, synchronous
        miss read, result hop, response egress.
        """
        # Deferred import: repro.obs pulls controllers/faults/planning,
        # which must not become import-time dependencies of the engine.
        from repro.obs.tracing import RequestTrace, Span

        names = self.table.names
        traces = self.tracer.traces
        web_pure_rate = self._web_pure_per_cycle
        db_pure_rate = self._db_pure_per_cycle
        for i in idx:
            i = int(i)
            spans = [
                Span(
                    "net.request", "net", float(t0[i]), 0.0,
                    float(web_arrive[i] - t0[i]), 0.0,
                )
            ]
            queue = max(float(web_starts[i] - web_arrive[i]), 0.0)
            actual = float(wd[i] - web_starts[i])
            pure = float(web_cycles[i]) * web_pure_rate
            spans.append(
                Span(
                    "cpu.web", "cpu", float(web_arrive[i]), queue, pure,
                    max(actual - pure, 0.0),
                )
            )
            if has_db[i]:
                spans.append(
                    Span(
                        "net.query", "net", float(wd[i]), 0.0,
                        float(db_arrive[i] - wd[i]), 0.0,
                    )
                )
                db_queue = max(float(db_start[i] - db_arrive[i]), 0.0)
                blk = float(blocked[i])
                db_actual = float(db_done[i] - db_start[i]) - blk
                db_pure = float(db_cycles[i]) * db_pure_rate
                spans.append(
                    Span(
                        "cpu.db", "cpu", float(db_arrive[i]), db_queue,
                        db_pure, max(db_actual - db_pure, 0.0),
                    )
                )
                if blk > 0.0:
                    spans.append(
                        Span(
                            "disk.db_read", "disk",
                            float(db_done[i]) - blk, 0.0, blk, 0.0,
                        )
                    )
                spans.append(
                    Span(
                        "net.result", "net", float(db_done[i]), 0.0,
                        float(t_ready[i] - db_done[i]), 0.0,
                    )
                )
            spans.append(
                Span(
                    "net.response", "net", float(t_ready[i]), 0.0,
                    float(t_done[i] - t_ready[i]), 0.0,
                )
            )
            traces.append(
                RequestTrace(
                    session_id=int(sids[i]),
                    seq=int(seqs[i]),
                    interaction=names[int(g[i])],
                    engine="batched",
                    start_s=float(t0[i]),
                    end_s=float(t_done[i]),
                    spans=tuple(spans),
                )
            )


def _record_requests(stats: SessionStats, names, g: np.ndarray) -> None:
    stats.requests_sent += g.size
    counts = np.bincount(g, minlength=len(names))
    per = stats.per_interaction
    for i in np.nonzero(counts)[0]:
        name = names[i]
        per[name] = per.get(name, 0) + int(counts[i])


def _record_responses(stats: SessionStats, times: np.ndarray) -> None:
    stats.responses_received += times.size
    stats.total_response_time_s += float(times.sum())
    reservoir = stats.response_times_s
    room = SessionStats.MAX_SAMPLES - len(reservoir)
    if room > 0:
        reservoir.extend(times[:room].tolist())
    if stats._window_sinks:
        values = times.tolist()
        for sink in stats._window_sinks:
            sink.extend(values)


class BatchedClosedDriver:
    """Closed-loop population as column arrays.

    Drop-in for :class:`~repro.rubis.client.ClientPopulation`: same
    ``stats``/``start``/``active_session_count``/``burst_times`` surface,
    same ramp-up, session-type and burst semantics — with the per-session
    think loop replaced by ``wake``/``done_at`` arrays drained in bulk.
    """

    def __init__(
        self,
        sim: Simulator,
        mix: WorkloadMix,
        deployment,
        streams,
        matrices: Dict[SessionType, TransitionMatrix],
        ramp_s: float = 10.0,
        meter=None,
        tracer=None,
    ) -> None:
        if ramp_s < 0:
            raise ConfigurationError("ramp_s must be non-negative")
        self.sim = sim
        self.mix = mix
        self.rng = streams.stream("batched.clients")
        self.physics = BatchedPhysics(
            sim, deployment, streams.stream("batched.demand"), tracer=tracer
        )
        self.tracer = tracer
        self.stats = SessionStats()
        self.meter = meter
        n = mix.clients
        # Session types drawn exactly like the classic constructor: one
        # uniform per client against the browse fraction.
        draws = np.array([self.rng.uniform() for _ in range(n)])
        self.stype = (draws >= mix.browse_fraction).astype(np.int8)
        self.walks = (
            _MatrixWalk(matrices[SessionType.BROWSE], self.physics.table),
            _MatrixWalk(matrices[SessionType.BID], self.physics.table),
        )
        self.state = np.empty(n, dtype=np.int64)
        for t in (0, 1):
            self.state[self.stype == t] = self.walks[t].initial_index
        self.wake = np.full(n, np.inf)
        self.done_at = np.full(n, -np.inf)
        # Per-session request counter; mirrors the classic
        # ``ClientSession.requests_sent`` so the trace sampler sees the
        # same (session_id, seq) coordinates on both engines.
        self.sent = np.zeros(n, dtype=np.int64)
        self._ramp_s = float(ramp_s)
        self.burst_times: Dict[SessionType, tuple] = {}
        self._process: Optional[PeriodicProcess] = None

    def active_session_count(self) -> int:
        return self.stype.size

    @property
    def throughput_estimate(self) -> float:
        return self.mix.clients / self.mix.think_time_s

    def start(self) -> None:
        rng = self.rng
        n = self.stype.size
        self.wake = np.array(
            [rng.uniform(0.0, max(self._ramp_s, 1e-9)) for _ in range(n)]
        )
        for session_type in SessionType:
            schedule = self.mix.burst_schedule(session_type)
            times = schedule.sample_times(rng)
            self.burst_times[session_type] = times
            for burst_time in times:
                self.sim.schedule_at(
                    burst_time,
                    self._fire_burst,
                    session_type,
                    schedule.fraction,
                )
        self._process = PeriodicProcess(
            self.sim,
            DRAIN_INTERVAL_S,
            self._drain,
            priority=DRAIN_PRIORITY,
            name="batched-drain",
        ).start()

    def _fire_burst(self, session_type: SessionType, fraction: float) -> None:
        now = self.sim.now
        type_index = 0 if session_type is SessionType.BROWSE else 1
        candidates = np.nonzero(
            (self.stype == type_index)
            & (self.done_at <= now)
            & (self.wake > now)
        )[0]
        count = int(candidates.size * fraction)
        if count <= 0:
            return
        chosen = self.rng.choice(candidates.size, size=count, replace=False)
        self.wake[candidates[chosen]] = now

    def _drain(self, tick_time: float) -> None:
        physics = self.physics
        table = physics.table
        names = table.names
        stats = self.stats
        mix_think = self.mix.think_time_s
        began = False
        while True:
            due = np.nonzero(self.wake <= tick_time)[0]
            if due.size == 0:
                break
            if not began:
                physics.begin_drain()
                began = True
            due = due[np.argsort(self.wake[due], kind="stable")]
            t0 = self.wake[due]
            # Step the chains (per session type, vectorized CDF inversion).
            g = np.empty(due.size, dtype=np.int64)
            for t in (0, 1):
                mask = self.stype[due] == t
                if mask.any():
                    walk = self.walks[t]
                    nxt = walk.step(self.rng, self.state[due[mask]])
                    self.state[due[mask]] = nxt
                    g[mask] = walk.to_global[nxt]
            _record_requests(stats, names, g)
            if self.meter is not None:
                self.meter.record_batch(t0)
            trace = None
            if self.tracer is not None:
                self.sent[due] += 1
                seqs = self.sent[due]
                trace = (
                    self.tracer.sampler.sample_array(due, seqs), due, seqs
                )
            t_done = physics.process(t0, g, trace)
            _record_responses(stats, t_done - t0)
            thinks = self.rng.exponential(mix_think, due.size)
            self.done_at[due] = t_done
            self.wake[due] = t_done + thinks
        if began:
            physics.end_drain(tick_time)


class BatchedOpenDriver:
    """Open-loop driver over column arrays.

    Mirrors :class:`~repro.traffic.driver.OpenLoopDriver` counter for
    counter.  The arrival process is built from the same
    ``"<stream>.arrivals"`` RNG stream, so offered arrival times are
    bit-identical to the classic engine; admission, transitions and
    think times draw from the new ``batched.sessions`` stream.
    """

    def __init__(
        self,
        sim: Simulator,
        mix: WorkloadMix,
        deployment,
        streams,
        matrices: Dict[SessionType, TransitionMatrix],
        process,
        session_budget: Optional[int] = None,
        requests_per_session: int = 1,
        meter_interval_s: Optional[float] = None,
        retry_max: int = 0,
        retry_backoff_s: float = 2.0,
        tracer=None,
    ) -> None:
        from repro.traffic.driver import ArrivalMeter

        if session_budget is not None and session_budget < 1:
            raise ConfigurationError("session_budget must be >= 1")
        if requests_per_session < 1:
            raise ConfigurationError("requests_per_session must be >= 1")
        if retry_max < 0:
            raise ConfigurationError("retry_max must be >= 0")
        if retry_backoff_s <= 0:
            raise ConfigurationError("retry_backoff_s must be positive")
        self.sim = sim
        self.mix = mix
        self.rng = streams.stream("batched.sessions")
        self.physics = BatchedPhysics(
            sim, deployment, streams.stream("batched.demand"), tracer=tracer
        )
        self.tracer = tracer
        self.process = process
        self.session_budget = session_budget
        self.requests_per_session = int(requests_per_session)
        self.retry_max = int(retry_max)
        self.retry_backoff_s = float(retry_backoff_s)
        self.stats = SessionStats()
        if meter_interval_s is None:
            self.meter = ArrivalMeter()
        else:
            self.meter = ArrivalMeter(interval_s=meter_interval_s)
        self.walks = (
            _MatrixWalk(matrices[SessionType.BROWSE], self.physics.table),
            _MatrixWalk(matrices[SessionType.BID], self.physics.table),
        )
        self.arrivals_offered = 0
        self.arrivals_admitted = 0
        self.arrivals_shed = 0
        self.arrivals_retried = 0
        self.arrivals_abandoned = 0
        self.sessions_completed = 0
        self._in_flight = 0
        self._started = False
        # Session slots (SoA with a free list).
        capacity = 64
        self.wake = np.full(capacity, np.inf)
        self.stype = np.zeros(capacity, dtype=np.int8)
        self.state = np.zeros(capacity, dtype=np.int64)
        self.remaining = np.zeros(capacity, dtype=np.int64)
        self.active = np.zeros(capacity, dtype=bool)
        # Monotonic per-session serial (the classic driver's session_id);
        # slots are recycled, serials are not, so the trace sampler keys
        # on a stable identity.
        self.serial = np.zeros(capacity, dtype=np.int64)
        self._next_serial = 0
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._pending_arrival: Optional[float] = None
        self._retries: List[tuple] = []  # (due_time, attempt)
        self._drain_process: Optional[PeriodicProcess] = None

    # -- driver surface shared with OpenLoopDriver -------------------------

    def active_session_count(self) -> int:
        return self._in_flight

    def set_session_budget(self, session_budget: Optional[int]) -> None:
        if session_budget is not None and session_budget < 1:
            raise ConfigurationError("session_budget must be >= 1")
        self.session_budget = session_budget

    @property
    def throughput_estimate(self) -> float:
        return self.process.rate_rps

    @property
    def shed_fraction(self) -> float:
        if self.arrivals_offered == 0:
            return 0.0
        return self.arrivals_shed / self.arrivals_offered

    @property
    def abandonment_fraction(self) -> float:
        if self.arrivals_offered == 0:
            return 0.0
        return self.arrivals_abandoned / self.arrivals_offered

    def summary(self) -> dict:
        return {
            "offered": self.arrivals_offered,
            "admitted": self.arrivals_admitted,
            "shed": self.arrivals_shed,
            "shed_fraction": self.shed_fraction,
            "retried": self.arrivals_retried,
            "abandoned": self.arrivals_abandoned,
            "abandonment_fraction": self.abandonment_fraction,
            "sessions_completed": self.sessions_completed,
            "in_flight": self._in_flight,
            "session_budget": self.session_budget,
            "requests_per_session": self.requests_per_session,
            "nominal_rate_rps": self.process.rate_rps,
        }

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("driver already started")
        self._started = True
        self._pending_arrival = self.process.next_arrival()
        self._drain_process = PeriodicProcess(
            self.sim,
            DRAIN_INTERVAL_S,
            self._drain,
            priority=DRAIN_PRIORITY,
            name="batched-drain",
        ).start()

    # -- slot management ----------------------------------------------------

    def _grow(self) -> None:
        old = self.wake.size
        new = old * 2
        for name in ("wake", "stype", "state", "remaining", "active",
                     "serial"):
            array = getattr(self, name)
            grown = np.zeros(new, dtype=array.dtype)
            grown[:old] = array
            setattr(self, name, grown)
        self.wake[old:] = np.inf
        self._free.extend(range(new - 1, old - 1, -1))

    def _admit(self, t: float) -> None:
        self.arrivals_admitted += 1
        self._in_flight += 1
        if not self._free:
            self._grow()
        slot = self._free.pop()
        type_index = 0 if self.rng.uniform() < self.mix.browse_fraction else 1
        self.stype[slot] = type_index
        self.state[slot] = self.walks[type_index].initial_index
        self.remaining[slot] = self.requests_per_session
        self.wake[slot] = t
        self.active[slot] = True
        self.serial[slot] = self._next_serial
        self._next_serial += 1

    def _handle_shed(self, t: float, attempt: int) -> None:
        if attempt < self.retry_max:
            self.arrivals_retried += 1
            delay = self.retry_backoff_s * (2.0 ** attempt)
            self._retries.append((t + delay, attempt + 1))
        else:
            self.arrivals_abandoned += 1

    # -- the drain ----------------------------------------------------------

    def _drain(self, tick_time: float) -> None:
        physics = self.physics
        began = False

        # 1. Offer this tick's arrivals (and due retries) in time order.
        arrivals: List[float] = []
        t = self._pending_arrival
        while t is not None and t <= tick_time:
            arrivals.append(t)
            t = self.process.next_arrival()
        self._pending_arrival = t
        if arrivals:
            times = np.asarray(arrivals)
            self.meter.record_batch(times)
            self.arrivals_offered += len(arrivals)
        due_retries = [r for r in self._retries if r[0] <= tick_time]
        if due_retries:
            self._retries = [r for r in self._retries if r[0] > tick_time]
        pending = [(t, 0, False) for t in arrivals] + [
            (t, attempt, True) for (t, attempt) in due_retries
        ]
        pending.sort(key=lambda o: o[0])

        budget = self.session_budget
        if budget is None:
            # No gate: every offer starts a session at its arrival time.
            for offer_time, _attempt, _is_retry in pending:
                self._admit(offer_time)
            pending = []

        # 2. Alternate wave processing with budgeted admission until a
        #    fixpoint.  The classic gate frees a slot the instant a
        #    session finishes, so an offer is shed only if the sessions
        #    *in flight at its arrival time* fill the budget.  Finish
        #    times only become known once a cohort runs through physics,
        #    so: run the due waves, collect exact session finish times,
        #    re-walk the still-pending offers against "active now plus
        #    window finishes after the offer", admit the newly
        #    admissible, and repeat.  Each productive pass admits at
        #    least one offer, so the loop is bounded by the offer count;
        #    in the common non-saturated case it converges in two or
        #    three passes (first the carried budget, then the offers
        #    freed by completions inside the window).
        finishes: List[float] = []
        while True:
            began = self._run_waves(tick_time, began, finishes)
            if not pending:
                break
            finishes.sort()
            still: List[tuple] = []
            progressed = False
            for offer_time, attempt, is_retry in pending:
                in_flight_at_offer = self._in_flight + (
                    len(finishes)
                    - bisect_right(finishes, offer_time)
                )
                if in_flight_at_offer < budget:
                    self._admit(offer_time)
                    progressed = True
                else:
                    still.append((offer_time, attempt, is_retry))
            pending = still
            if not progressed:
                break

        # 3. Offers no completion could save are genuinely shed.
        for offer_time, attempt, is_retry in pending:
            if not is_retry:
                self.arrivals_shed += 1
            self._handle_shed(offer_time, attempt)
        if pending:
            # Retries scheduled by the sheds above may fall inside this
            # very window; give them one more gate walk so a backoff
            # shorter than the tick is not silently deferred.
            due_again = [r for r in self._retries if r[0] <= tick_time]
            if due_again:
                self._retries = [
                    r for r in self._retries if r[0] > tick_time
                ]
                finishes.sort()
                for offer_time, attempt in sorted(due_again):
                    in_flight_at_offer = self._in_flight + (
                        len(finishes)
                        - bisect_right(finishes, offer_time)
                    )
                    if in_flight_at_offer < budget:
                        self._admit(offer_time)
                    else:
                        self._handle_shed(offer_time, attempt)
                began = self._run_waves(tick_time, began, finishes)

        if began:
            physics.end_drain(tick_time)

    def _run_waves(
        self, tick_time: float, began: bool, finishes: List[float]
    ) -> bool:
        """Process due request waves until no session wakes inside the tick.

        Appends the exact finish time of every session that completes to
        ``finishes`` (the admission gate's evidence) and returns whether
        ``physics.begin_drain`` has been called.
        """
        physics = self.physics
        names = physics.table.names
        stats = self.stats
        while True:
            due = np.nonzero(self.active & (self.wake <= tick_time))[0]
            if due.size == 0:
                break
            if not began:
                physics.begin_drain()
                began = True
            due = due[np.argsort(self.wake[due], kind="stable")]
            t0 = self.wake[due]
            g = np.empty(due.size, dtype=np.int64)
            for type_index in (0, 1):
                mask = self.stype[due] == type_index
                if mask.any():
                    walk = self.walks[type_index]
                    nxt = walk.step(self.rng, self.state[due[mask]])
                    self.state[due[mask]] = nxt
                    g[mask] = walk.to_global[nxt]
            _record_requests(stats, names, g)
            trace = None
            if self.tracer is not None:
                sids = self.serial[due]
                # Classic seq: remaining is decremented before send, so
                # the first request of a session carries seq == 1.
                seqs = self.requests_per_session - self.remaining[due] + 1
                trace = (
                    self.tracer.sampler.sample_array(sids, seqs), sids, seqs
                )
            t_done = physics.process(t0, g, trace)
            _record_responses(stats, t_done - t0)
            self.remaining[due] -= 1
            finished = self.remaining[due] <= 0
            if finished.any():
                done_slots = due[finished]
                self.active[done_slots] = False
                self.wake[done_slots] = np.inf
                self._free.extend(int(s) for s in done_slots)
                self.sessions_completed += int(done_slots.size)
                self._in_flight -= int(done_slots.size)
                finishes.extend(float(v) for v in t_done[finished])
            live = due[~finished]
            if live.size:
                thinks = self.rng.exponential(
                    self.mix.think_time_s, live.size
                )
                self.wake[live] = t_done[~finished] + thinks
        return began
