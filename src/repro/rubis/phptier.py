"""The web + application tier (Apache with the PHP RUBiS implementation).

In the paper's PHP deployment the web server and the application server
"are integrated together", so a single tier serves both roles — one
queueing station of Apache workers whose service burns the request's
``web_cycles`` and whose completion appends to the access log and PHP
session store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.queueing import QueueingStation
from repro.apps.requests import Request
from repro.apps.tier import ExecutionContext
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PhpTierConfig:
    """Apache/PHP pool parameters."""

    #: Concurrent Apache worker processes (MaxClients-style).
    workers: int = 16
    #: Hypercall/syscall accounting scale for one web request.
    request_account_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")


class PhpTier:
    """Web+application tier: a station over an execution context."""

    def __init__(
        self,
        sim: Simulator,
        context: ExecutionContext,
        config: PhpTierConfig = None,
    ) -> None:
        self.sim = sim
        self.context = context
        self.config = config or PhpTierConfig()
        self.station = QueueingStation(
            sim,
            name=f"php:{context.owner}",
            workers=self.config.workers,
            on_start=context.worker_started,
            on_finish=context.worker_finished,
        )
        context.register_station(self.station)
        self.requests_handled = 0

    def handle(self, request: Request, done_fn: Callable[[Request], None]) -> None:
        """Serve ``request``; ``done_fn`` fires when PHP processing ends.

        The continuation travels with the job so the station calls the
        tier's stable bound methods — no per-request closures.
        """
        self.station.submit((request, done_fn), self._service, self._done)

    def _service(self, job) -> float:
        request = job[0]
        context = self.context
        request.web_started_at = self.sim.now
        context.account_request(self.config.request_account_scale)
        cycles = request.demand.web_cycles
        context.charge_cpu(cycles)
        duration = context.cpu_time(cycles)
        if request.trace is not None:
            request.trace.add_cpu(
                "cpu.web",
                request.web_started_at,
                duration,
                context.pure_cpu_time(cycles),
            )
        return duration

    def _done(self, job) -> None:
        request, done_fn = job
        self.requests_handled += 1
        log_bytes = request.demand.web_disk_write_bytes
        if log_bytes > 0:
            # Access log + PHP session write; asynchronous, the
            # request does not wait for it.
            self.context.disk_write(log_bytes)
        done_fn(request)

    @property
    def backlog(self) -> int:
        return self.station.backlog
