"""Workload mixes: the paper's five request compositions.

Section 4 tests five compositions — browsing only, bidding only, and
30/70, 50/50, 70/30 blends of the two.  A composition assigns each of the
1000 emulated clients a session type (browse or bid) with probability
``browse_fraction``; a browse session walks the browsing transition
matrix, a bid session the bidding matrix.

A mix also carries the burst schedule parameters that drive the
backlog-induced RAM jumps of Figures 2 and 6 (the paper's own proposed
mechanism: "as more client browsing requests arrive, some requests are
backlogged and after a certain period of time the server allocates more
RAM to process those backlogged requests").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError


class SessionType(enum.Enum):
    """The two RUBiS client behaviours."""

    BROWSE = "browse"
    BID = "bid"


@dataclass(frozen=True)
class BurstSchedule:
    """Synchronized request waves that build tier backlog.

    ``count`` waves are drawn uniformly from ``window_s``; at each wave a
    ``fraction`` of currently thinking clients fire immediately.
    """

    count: int = 0
    window_s: Tuple[float, float] = (0.0, 0.0)
    fraction: float = 0.6

    def sample_times(self, rng: np.random.Generator) -> Tuple[float, ...]:
        if self.count <= 0:
            return ()
        low, high = self.window_s
        if high < low:
            raise ConfigurationError("burst window must have high >= low")
        return tuple(sorted(rng.uniform(low, high, size=self.count)))


@dataclass(frozen=True)
class WorkloadMix:
    """One request composition.

    Attributes:
        name: label used in figures and reports.
        browse_fraction: probability a client runs a browsing session.
        think_time_s: mean negative-exponential think time (paper: 7 s).
        clients: closed-loop population size (paper: 1000).
        burst_schedules: per session type, the burst waves for this mix.
    """

    name: str
    browse_fraction: float
    think_time_s: float = 7.0
    clients: int = 1000
    burst_schedules: Dict[SessionType, BurstSchedule] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.browse_fraction <= 1.0:
            raise ConfigurationError("browse_fraction must be in [0, 1]")
        if self.think_time_s <= 0:
            raise ConfigurationError("think_time_s must be positive")
        if self.clients < 1:
            raise ConfigurationError("clients must be >= 1")

    def session_type(self, rng: np.random.Generator) -> SessionType:
        """Draw the session type of one client."""
        if rng.uniform() < self.browse_fraction:
            return SessionType.BROWSE
        return SessionType.BID

    def burst_schedule(self, session_type: SessionType) -> BurstSchedule:
        return self.burst_schedules.get(session_type, BurstSchedule())

    def with_bursts(
        self, schedules: Dict[SessionType, BurstSchedule]
    ) -> "WorkloadMix":
        """Copy of this mix with different burst schedules."""
        return WorkloadMix(
            name=self.name,
            browse_fraction=self.browse_fraction,
            think_time_s=self.think_time_s,
            clients=self.clients,
            burst_schedules=dict(schedules),
        )


def browsing_mix(clients: int = 1000, think_time_s: float = 7.0) -> WorkloadMix:
    """The browsing-only composition."""
    return WorkloadMix("browsing", 1.0, think_time_s, clients)


def bidding_mix(clients: int = 1000, think_time_s: float = 7.0) -> WorkloadMix:
    """The bidding-only composition."""
    return WorkloadMix("bidding", 0.0, think_time_s, clients)


def blended_mix(
    browse_fraction: float, clients: int = 1000, think_time_s: float = 7.0
) -> WorkloadMix:
    """A blended composition, named like the paper ("30% browsing...")."""
    percent = int(round(browse_fraction * 100))
    name = f"{percent}% browsing / {100 - percent}% bidding"
    return WorkloadMix(name, browse_fraction, think_time_s, clients)


#: The paper's five request compositions (Section 4.1).
PAPER_COMPOSITIONS: Dict[str, WorkloadMix] = {
    "browsing": browsing_mix(),
    "bidding": bidding_mix(),
    "blend_30_70": blended_mix(0.30),
    "blend_50_50": blended_mix(0.50),
    "blend_70_30": blended_mix(0.70),
}
