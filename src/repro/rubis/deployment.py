"""Deployment wiring: RUBiS tiers on a virtualized or bare-metal testbed.

A deployment assembles one of the paper's two environments:

* :class:`VirtualizedDeployment` — one cloud server running a Xen-like
  hypervisor with two guest VMs (web+app, MySQL) plus dom0 (Section 4.1).
  The VMs share the server, so inter-tier traffic crosses the software
  bridge with local latency.
* :class:`BareMetalDeployment` — the two tiers on *separate* physical
  servers (Section 4.2), so inter-tier traffic crosses the switch; the
  paper invokes this "longer communication delay in the non-virtualized
  system" when discussing the earlier RAM jumps.

Both expose the same ``send`` function to the client population and the
same tier/contexts to the monitoring layer, so every other part of the
pipeline is environment-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.apps.requests import Request
from repro.apps.tier import (
    BareMetalContext,
    ExecutionContext,
    OsActivityModel,
    VirtualizedContext,
)
from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.hardware.server import ServerSpec
from repro.rubis.database import BufferPool, RubisDatabase
from repro.rubis.demand import DemandSampler, DemandScaling
from repro.rubis.memorymodel import MemoryProfile, TierMemoryModel
from repro.rubis.mysqltier import MysqlTier, MysqlTierConfig
from repro.rubis.phptier import PhpTier, PhpTierConfig
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import GB, MB
from repro.virt.hypervisor import Hypervisor
from repro.virt.overhead import OverheadModel

WEB_TIER = "web"
DB_TIER = "db"
CLIENT_ENDPOINT = "client"

#: Default sizing of the paper's web/db guest VMs.  Shared with the
#: placement layer, whose feasibility bookkeeping must match the
#: domains the deployment actually creates.
DEFAULT_VM_VCPUS = 2
DEFAULT_VM_MEMORY_BYTES = 2 * GB


@dataclass
class DeploymentConfig:
    """Environment-independent deployment parameters."""

    scaling: DemandScaling = field(default_factory=DemandScaling)
    web_memory: MemoryProfile = field(
        default_factory=lambda: MemoryProfile(base_mb=280.0)
    )
    db_memory: MemoryProfile = field(
        default_factory=lambda: MemoryProfile(
            base_mb=115.0,
            per_session_kb=4.0,
            cache_growth_mb=60.0,
            noise_mb=3.0,
            jump_mb=0.0,
            max_jumps=0,
        )
    )
    php: PhpTierConfig = field(default_factory=PhpTierConfig)
    mysql: MysqlTierConfig = field(default_factory=MysqlTierConfig)
    buffer_pool_bytes: float = 384 * MB
    #: RUBiS touches a small hot set (active items and their bids) for
    #: almost all accesses; with a warmed pool the hit ratio sits near
    #: 99.4 %, which keeps the db tier CPU-bound as the paper observes.
    buffer_pool_hot_fraction: float = 0.05
    buffer_pool_hot_access: float = 0.99
    database: RubisDatabase = field(default_factory=RubisDatabase)


class Deployment:
    """Common request-path logic for both environments."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: Optional[DeploymentConfig] = None,
        cluster: Optional[Cluster] = None,
    ) -> None:
        self.sim = sim
        self.streams = streams
        self.config = config or DeploymentConfig()
        # A multi-tenant testbed passes its shared cluster in; the
        # default single-tenant deployment owns a private one.
        self.cluster = cluster if cluster is not None else Cluster()
        self.buffer_pool = BufferPool(
            capacity_bytes=self.config.buffer_pool_bytes,
            database=self.config.database,
            hot_fraction=self.config.buffer_pool_hot_fraction,
            hot_access_probability=self.config.buffer_pool_hot_access,
        )
        self.demand_sampler = DemandSampler(
            self.config.scaling, self.buffer_pool, streams.stream("demand")
        )
        self.population = None  # set by the runner once clients exist
        #: Request tracer (:class:`repro.obs.tracing.RequestTracer`) of
        #: a ``trace_sample > 0`` run; None keeps the request path free
        #: of tracing work entirely.
        self.tracer = None
        # Subclasses must assign these in _build().
        self.web_context: ExecutionContext = None
        self.db_context: ExecutionContext = None
        self.php_tier: PhpTier = None
        self.mysql_tier: MysqlTier = None
        self.web_memory_model: TierMemoryModel = None
        self.db_memory_model: TierMemoryModel = None
        self._build()
        if self.web_context is None or self.db_context is None:
            raise ConfigurationError("deployment subclass did not build tiers")
        # Placement is fixed once _build ran, so the four request-path
        # latencies are constants; resolving them per hop was measurable.
        fabric = self.cluster.fabric
        self._lat_client_web = fabric.latency(CLIENT_ENDPOINT, WEB_TIER)
        self._lat_web_db = fabric.latency(WEB_TIER, DB_TIER)
        self._lat_db_web = fabric.latency(DB_TIER, WEB_TIER)
        self._lat_web_client = fabric.latency(WEB_TIER, CLIENT_ENDPOINT)

    # -- subclass surface ---------------------------------------------------

    def _build(self) -> None:
        raise NotImplementedError

    @property
    def environment(self) -> str:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    def _active_sessions(self) -> int:
        # Works for either traffic driver: the closed-loop population
        # reports its (fixed) pool size, the open-loop driver its
        # in-flight transient sessions.
        if self.population is None:
            return 0
        return self.population.active_session_count()

    def _make_tiers(self) -> None:
        self.php_tier = PhpTier(self.sim, self.web_context, self.config.php)
        self.mysql_tier = MysqlTier(self.sim, self.db_context, self.config.mysql)
        self.web_memory_model = TierMemoryModel(
            self.sim,
            self.web_context,
            self.config.web_memory,
            self.php_tier.station,
            self.streams.stream("memory.web"),
            active_sessions_fn=self._active_sessions,
        )
        self.db_memory_model = TierMemoryModel(
            self.sim,
            self.db_context,
            self.config.db_memory,
            self.mysql_tier.station,
            self.streams.stream("memory.db"),
            active_sessions_fn=self._active_sessions,
        )

    def _latency(self, src: str, dst: str) -> float:
        return self.cluster.fabric.latency(src, dst)

    # -- the request path -------------------------------------------------------

    def send(
        self,
        session,
        interaction: str,
        on_response: Callable[[Request], None],
    ) -> None:
        """Entry point used by client sessions (the ``SendFn``).

        The continuation rides on the request itself (``on_response``)
        so every later stage passes stable bound methods around; the
        per-request closures this replaced were a measurable share of
        the request-path cost.
        """
        demand = self.demand_sampler.sample(interaction)
        sim = self.sim
        request = Request(session.session_id, interaction, demand, sim.now)
        request.on_response = on_response
        if self.tracer is not None:
            # RNG-free sampling decision; the physics below is
            # bit-identical whether or not the request is sampled.
            request.trace = self.tracer.begin(session, interaction, sim.now)
        transfer = self.web_context.net_receive(demand.request_bytes) - sim.now
        if transfer < 0.0:
            transfer = 0.0
        if request.trace is not None:
            request.trace.add_net(
                "net.request", sim.now, transfer + self._lat_client_web
            )
        sim.schedule(
            transfer + self._lat_client_web, self._web_arrive, request
        )

    def _web_arrive(self, request: Request) -> None:
        self.php_tier.handle(request, self._web_done)

    def _web_done(self, request: Request) -> None:
        demand = request.demand
        if demand.db_queries > 0:
            sim = self.sim
            self.web_context.net_transmit(demand.query_bytes)
            transfer = self.db_context.net_receive(demand.query_bytes) - sim.now
            if transfer < 0.0:
                transfer = 0.0
            if request.trace is not None:
                request.trace.add_net(
                    "net.query", sim.now, transfer + self._lat_web_db
                )
            sim.schedule(
                transfer + self._lat_web_db, self._db_arrive, request
            )
        else:
            self._respond(request)

    def _db_arrive(self, request: Request) -> None:
        self.mysql_tier.handle(request, self._db_done)

    def _db_done(self, request: Request) -> None:
        demand = request.demand
        sim = self.sim
        self.db_context.net_transmit(demand.result_bytes)
        transfer = self.web_context.net_receive(demand.result_bytes) - sim.now
        if transfer < 0.0:
            transfer = 0.0
        if request.trace is not None:
            request.trace.add_net(
                "net.result", sim.now, transfer + self._lat_db_web
            )
        sim.schedule(
            transfer + self._lat_db_web, self._respond, request
        )

    def _respond(self, request: Request) -> None:
        sim = self.sim
        transfer = (
            self.web_context.net_transmit(request.demand.response_bytes)
            - sim.now
        )
        if transfer < 0.0:
            transfer = 0.0
        if request.trace is not None:
            request.trace.add_net(
                "net.response", sim.now, transfer + self._lat_web_client
            )
            self.tracer.commit(request.trace)
        sim.schedule(
            transfer + self._lat_web_client,
            request.on_response,
            request,
        )

    def shutdown(self) -> None:
        """Disarm all periodic processes."""
        self.web_memory_model.stop()
        self.db_memory_model.stop()


class VirtualizedDeployment(Deployment):
    """Both tiers in VMs on one cloud server under a hypervisor.

    By default the deployment owns its server and hypervisor (the
    paper's single-tenant testbed).  A multi-tenant testbed passes a
    pre-built ``hypervisor`` (and its ``cluster``) instead, so the web
    VMs become two domains among several co-resident tenants sharing
    the credit scheduler and the dom0 I/O backends.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: Optional[DeploymentConfig] = None,
        overhead: Optional[OverheadModel] = None,
        vm_memory_bytes: float = DEFAULT_VM_MEMORY_BYTES,
        vm_vcpus: int = DEFAULT_VM_VCPUS,
        server_spec: Optional[ServerSpec] = None,
        hypervisor: Optional[Hypervisor] = None,
        cluster=None,
        vcpu_contention: bool = False,
    ) -> None:
        self._overhead = overhead or OverheadModel()
        self._vm_memory_bytes = vm_memory_bytes
        self._vm_vcpus = vm_vcpus
        self._server_spec = server_spec
        self._shared_hypervisor = hypervisor
        self._vcpu_contention = vcpu_contention
        super().__init__(sim, streams, config, cluster=cluster)

    @property
    def environment(self) -> str:
        return "virtualized"

    def _build(self) -> None:
        if self._shared_hypervisor is not None:
            self.hypervisor = self._shared_hypervisor
            self.server = self.hypervisor.server
        else:
            self.server = self.cluster.add_server(
                "cloud-1", self._server_spec
            )
            self.hypervisor = Hypervisor(
                self.sim,
                self.server,
                self._overhead,
                vcpu_contention=self._vcpu_contention,
            )
        self.web_domain = self.hypervisor.create_domain(
            "web-vm",
            vcpu_count=self._vm_vcpus,
            memory_bytes=self._vm_memory_bytes,
        )
        self.db_domain = self.hypervisor.create_domain(
            "db-vm",
            vcpu_count=self._vm_vcpus,
            memory_bytes=self._vm_memory_bytes,
        )
        self.web_context = VirtualizedContext(self.hypervisor, self.web_domain)
        self.db_context = VirtualizedContext(self.hypervisor, self.db_domain)
        fabric = self.cluster.fabric
        fabric.place(WEB_TIER, self.server.name)
        fabric.place(DB_TIER, self.server.name)
        fabric.place(CLIENT_ENDPOINT, "client-host")
        self._make_tiers()

    def shutdown(self) -> None:
        super().shutdown()
        self.hypervisor.shutdown()


class BareMetalDeployment(Deployment):
    """Each tier on its own physical server, no hypervisor."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: Optional[DeploymentConfig] = None,
        web_os_model: Optional[OsActivityModel] = None,
        db_os_model: Optional[OsActivityModel] = None,
        server_spec: Optional[ServerSpec] = None,
    ) -> None:
        self._web_os_model = web_os_model or OsActivityModel()
        self._db_os_model = db_os_model or OsActivityModel()
        self._server_spec = server_spec
        super().__init__(sim, streams, config)

    @property
    def environment(self) -> str:
        return "bare-metal"

    def _build(self) -> None:
        self.web_server = self.cluster.add_server("web-pm", self._server_spec)
        self.db_server = self.cluster.add_server("db-pm", self._server_spec)
        self.web_context = BareMetalContext(
            self.sim, self.web_server, "pm:web", self._web_os_model
        )
        self.db_context = BareMetalContext(
            self.sim, self.db_server, "pm:db", self._db_os_model
        )
        fabric = self.cluster.fabric
        fabric.place(WEB_TIER, "web-pm")
        fabric.place(DB_TIER, "db-pm")
        fabric.place(CLIENT_ENDPOINT, "client-host")
        self._make_tiers()

    def shutdown(self) -> None:
        super().shutdown()
        self.web_context.shutdown()
        self.db_context.shutdown()
