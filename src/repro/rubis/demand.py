"""Demand sampling: interaction profiles -> concrete resource demands.

An :class:`Interaction` carries *relative* work units; the
:class:`DemandScaling` maps them to absolute cycles and bytes.  The
calibration module derives one scaling per environment from the paper's
published per-resource targets (see ``repro.experiments.calibration``),
so every scaling constant is traceable to a number in the paper.

The sampler has a deterministic twin, :meth:`DemandSampler.expected_demand`,
which computes the *stationary expectation* of each demand field under a
given transition matrix using exactly the same formulas as the stochastic
path.  Calibration inverts that expectation; keeping both code paths in
one class is what makes the calibration exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.apps.requests import ResourceDemand
from repro.errors import ConfigurationError
from repro.rubis.database import BufferPool
from repro.rubis.interactions import Interaction, get_interaction
from repro.rubis.transitions import TransitionMatrix
from repro.units import KB


@dataclass(frozen=True)
class DemandScaling:
    """Environment-specific absolute scales applied to interaction profiles."""

    #: Cycles per web-tier work unit (guest-visible in the virtualized
    #: environment, host-visible on bare metal — the difference encodes
    #: the virtualized cycle-accounting inflation the paper measures).
    web_cycles_per_unit: float = 2.0e6
    #: Cycles per db-tier work unit.
    db_cycles_per_unit: float = 1.0e5
    #: HTTP request size (URL + headers + cookies).
    request_bytes: float = 420.0
    #: Multiplier on the interaction's nominal response size.
    response_scale: float = 1.0
    #: SQL text bytes per query.
    query_bytes_per_query: float = 160.0
    #: Result-set framing bytes per query.
    result_base_bytes: float = 80.0
    #: Result bytes per returned row (rows beyond the cap are aggregates).
    result_bytes_per_row: float = 6.0
    #: Maximum rows materialized into a result set (LIMIT-style).
    result_row_cap: float = 40.0
    #: Multiplier applied to query+result bytes (db-link calibration knob).
    db_net_scale: float = 1.0
    #: Web-tier bytes written per request (access log + session state).
    web_log_bytes_per_request: float = 1400.0
    #: Database bytes written per written row (row + index + binlog).
    db_write_bytes_per_row: float = 600.0
    #: Row count above which a query spills a filesort to disk.
    spill_threshold_rows: float = 50.0
    #: Spill bytes per touched row once over the threshold.
    spill_bytes_per_row: float = 8.0
    #: Coefficient of variation of the lognormal demand noise.
    demand_cv: float = 0.30

    def __post_init__(self) -> None:
        for name in (
            "web_cycles_per_unit",
            "db_cycles_per_unit",
            "request_bytes",
            "response_scale",
            "query_bytes_per_query",
            "result_base_bytes",
            "result_bytes_per_row",
            "db_net_scale",
            "web_log_bytes_per_request",
            "db_write_bytes_per_row",
            "spill_bytes_per_row",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.demand_cv < 0:
            raise ConfigurationError("demand_cv must be non-negative")

    def rescaled(self, **changes) -> "DemandScaling":
        """Copy with some fields replaced (used by calibration)."""
        return replace(self, **changes)


class DemandSampler:
    """Samples :class:`ResourceDemand` records for interactions."""

    def __init__(
        self,
        scaling: DemandScaling,
        buffer_pool: BufferPool,
        rng: np.random.Generator,
    ) -> None:
        self.scaling = scaling
        self.buffer_pool = buffer_pool
        self.rng = rng
        self._row_bytes = buffer_pool.database.mean_row_bytes()

    # -- stochastic path -------------------------------------------------

    def sample(self, interaction_name: str) -> ResourceDemand:
        """Draw the demand of one request for ``interaction_name``."""
        ix = get_interaction(interaction_name)
        s = self.scaling
        noise = self._noise
        response_bytes = (
            ix.response_kb * KB * s.response_scale * noise(ix.response_cv)
        )
        db_read = self.buffer_pool.access(
            self.rng, ix.rows_touched, self._row_bytes
        )
        return ResourceDemand(
            web_cycles=ix.web_work * s.web_cycles_per_unit * noise(),
            db_cycles=ix.db_work * s.db_cycles_per_unit * noise(),
            db_queries=ix.db_queries,
            db_disk_read_bytes=db_read,
            db_disk_write_bytes=self._db_write_bytes(ix) * noise(),
            web_disk_write_bytes=s.web_log_bytes_per_request * noise(0.15),
            request_bytes=s.request_bytes * noise(0.10),
            response_bytes=response_bytes,
            query_bytes=self._query_bytes(ix),
            result_bytes=self._result_bytes(ix),
            commit=ix.writes,
        )

    def _noise(self, cv: Optional[float] = None) -> float:
        cv = self.scaling.demand_cv if cv is None else cv
        if cv <= 0:
            return 1.0
        sigma2 = np.log1p(cv * cv)
        return float(
            self.rng.lognormal(-sigma2 / 2.0, np.sqrt(sigma2))
        )

    # -- shared deterministic formulas -----------------------------------

    def _query_bytes(self, ix: Interaction) -> float:
        return ix.db_queries * self.scaling.query_bytes_per_query * (
            self.scaling.db_net_scale
        )

    def _result_bytes(self, ix: Interaction) -> float:
        if ix.db_queries == 0:
            return 0.0
        s = self.scaling
        returned_rows = min(ix.rows_touched, s.result_row_cap)
        per_query = s.result_base_bytes * ix.db_queries
        return (per_query + returned_rows * s.result_bytes_per_row) * (
            s.db_net_scale
        )

    def _db_write_bytes(self, ix: Interaction) -> float:
        s = self.scaling
        written = ix.rows_written * s.db_write_bytes_per_row
        spill = 0.0
        if ix.rows_touched >= s.spill_threshold_rows:
            spill = ix.rows_touched * s.spill_bytes_per_row
        return written + spill

    def _expected_db_read_bytes(self, ix: Interaction) -> float:
        if ix.rows_touched <= 0:
            return 0.0
        rows_per_page = max(
            1.0, BufferPool.PAGE_BYTES / max(self._row_bytes, 1.0)
        )
        pages = max(1, int(np.ceil(ix.rows_touched / rows_per_page)))
        miss_probability = 1.0 - self.buffer_pool.hit_ratio()
        return pages * miss_probability * BufferPool.PAGE_BYTES

    # -- deterministic expectation ----------------------------------------

    def expected_demand(self, matrix: TransitionMatrix) -> ResourceDemand:
        """Stationary per-request expectation of every demand field.

        Mirrors :meth:`sample` field by field with all noise factors at
        their (unit) means; calibration relies on this exactness.
        """
        pi = matrix.stationary_distribution()
        s = self.scaling
        expected = ResourceDemand()
        for state, probability in pi.items():
            ix = get_interaction(state)
            expected.web_cycles += (
                probability * ix.web_work * s.web_cycles_per_unit
            )
            expected.db_cycles += (
                probability * ix.db_work * s.db_cycles_per_unit
            )
            expected.db_disk_read_bytes += (
                probability * self._expected_db_read_bytes(ix)
            )
            expected.db_disk_write_bytes += (
                probability * self._db_write_bytes(ix)
            )
            expected.web_disk_write_bytes += (
                probability * s.web_log_bytes_per_request
            )
            expected.request_bytes += probability * s.request_bytes
            expected.response_bytes += (
                probability * ix.response_kb * KB * s.response_scale
            )
            expected.query_bytes += probability * self._query_bytes(ix)
            expected.result_bytes += probability * self._result_bytes(ix)
        return expected
