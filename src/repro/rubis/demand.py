"""Demand sampling: interaction profiles -> concrete resource demands.

An :class:`Interaction` carries *relative* work units; the
:class:`DemandScaling` maps them to absolute cycles and bytes.  The
calibration module derives one scaling per environment from the paper's
published per-resource targets (see ``repro.experiments.calibration``),
so every scaling constant is traceable to a number in the paper.

The sampler has a deterministic twin, :meth:`DemandSampler.expected_demand`,
which computes the *stationary expectation* of each demand field under a
given transition matrix using exactly the same formulas as the stochastic
path.  Calibration inverts that expectation; keeping both code paths in
one class is what makes the calibration exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.apps.requests import ResourceDemand
from repro.errors import ConfigurationError
from repro.rubis.database import BufferPool
from repro.rubis.interactions import Interaction, get_interaction
from repro.rubis.transitions import TransitionMatrix
from repro.units import KB


@dataclass(frozen=True)
class DemandScaling:
    """Environment-specific absolute scales applied to interaction profiles."""

    #: Cycles per web-tier work unit (guest-visible in the virtualized
    #: environment, host-visible on bare metal — the difference encodes
    #: the virtualized cycle-accounting inflation the paper measures).
    web_cycles_per_unit: float = 2.0e6
    #: Cycles per db-tier work unit.
    db_cycles_per_unit: float = 1.0e5
    #: HTTP request size (URL + headers + cookies).
    request_bytes: float = 420.0
    #: Multiplier on the interaction's nominal response size.
    response_scale: float = 1.0
    #: SQL text bytes per query.
    query_bytes_per_query: float = 160.0
    #: Result-set framing bytes per query.
    result_base_bytes: float = 80.0
    #: Result bytes per returned row (rows beyond the cap are aggregates).
    result_bytes_per_row: float = 6.0
    #: Maximum rows materialized into a result set (LIMIT-style).
    result_row_cap: float = 40.0
    #: Multiplier applied to query+result bytes (db-link calibration knob).
    db_net_scale: float = 1.0
    #: Web-tier bytes written per request (access log + session state).
    web_log_bytes_per_request: float = 1400.0
    #: Database bytes written per written row (row + index + binlog).
    db_write_bytes_per_row: float = 600.0
    #: Row count above which a query spills a filesort to disk.
    spill_threshold_rows: float = 50.0
    #: Spill bytes per touched row once over the threshold.
    spill_bytes_per_row: float = 8.0
    #: Coefficient of variation of the lognormal demand noise.
    demand_cv: float = 0.30

    def __post_init__(self) -> None:
        for name in (
            "web_cycles_per_unit",
            "db_cycles_per_unit",
            "request_bytes",
            "response_scale",
            "query_bytes_per_query",
            "result_base_bytes",
            "result_bytes_per_row",
            "db_net_scale",
            "web_log_bytes_per_request",
            "db_write_bytes_per_row",
            "spill_bytes_per_row",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.demand_cv < 0:
            raise ConfigurationError("demand_cv must be non-negative")

    def rescaled(self, **changes) -> "DemandScaling":
        """Copy with some fields replaced (used by calibration)."""
        return replace(self, **changes)


class DemandSampler:
    """Samples :class:`ResourceDemand` records for interactions."""

    def __init__(
        self,
        scaling: DemandScaling,
        buffer_pool: BufferPool,
        rng: np.random.Generator,
    ) -> None:
        self.scaling = scaling
        self.buffer_pool = buffer_pool
        self.rng = rng
        self._row_bytes = buffer_pool.database.mean_row_bytes()
        #: cv -> (mu, sigma) of the matching lognormal, computed once per
        #: distinct cv instead of log1p/sqrt on every draw.
        self._noise_params: dict = {}
        #: interaction name -> precomputed deterministic demand bases
        #: (everything in :meth:`sample` that does not involve a draw).
        self._profiles: dict = {}

    # -- stochastic path -------------------------------------------------

    def sample(self, interaction_name: str) -> ResourceDemand:
        """Draw the demand of one request for ``interaction_name``.

        The deterministic bases are precomputed per interaction (the
        scaling is immutable), so a draw costs only the noise factors
        and the buffer-pool access.  The draw order matches the original
        per-field formulation exactly, keeping the noise stream — and
        therefore every trace — bit-identical.
        """
        profile = self._profiles.get(interaction_name)
        if profile is None:
            profile = self._build_profile(interaction_name)
        (response_base, response_params, web_base, db_base, db_queries,
         rows_touched, db_write_base, web_log_base, request_base,
         query_bytes, result_bytes, writes, demand_params, log_params,
         req_params) = profile
        rng = self.rng
        lognormal = rng.lognormal
        # Draw order mirrors the original per-field formulation exactly.
        response_noise = (
            float(lognormal(response_params[0], response_params[1]))
            if response_params is not None else 1.0
        )
        response_bytes = response_base * response_noise
        db_read = self.buffer_pool.access(rng, rows_touched, self._row_bytes)
        if demand_params is not None:
            mu, sigma = demand_params
            web_noise = float(lognormal(mu, sigma))
            db_noise = float(lognormal(mu, sigma))
            write_noise = float(lognormal(mu, sigma))
        else:
            web_noise = db_noise = write_noise = 1.0
        # Positional construction in ResourceDemand field order (kwarg
        # binding on an 11-field dataclass showed up on profiles).
        return ResourceDemand(
            web_base * web_noise,
            db_base * db_noise,
            db_queries,
            db_read,
            db_write_base * write_noise,
            web_log_base * float(lognormal(log_params[0], log_params[1])),
            request_base * float(lognormal(req_params[0], req_params[1])),
            response_bytes,
            query_bytes,
            result_bytes,
            writes,
        )

    def _lognormal_params(self, cv: float) -> Optional[tuple]:
        """(mu, sigma) of the unit-mean lognormal for ``cv`` (None if 0)."""
        if cv <= 0:
            return None
        params = self._noise_params.get(cv)
        if params is None:
            sigma2 = np.log1p(cv * cv)
            params = (-sigma2 / 2.0, np.sqrt(sigma2))
            self._noise_params[cv] = params
        return params

    def _build_profile(self, interaction_name: str) -> tuple:
        ix = get_interaction(interaction_name)
        s = self.scaling
        profile = (
            ix.response_kb * KB * s.response_scale,
            self._lognormal_params(ix.response_cv),
            ix.web_work * s.web_cycles_per_unit,
            ix.db_work * s.db_cycles_per_unit,
            ix.db_queries,
            ix.rows_touched,
            self._db_write_bytes(ix),
            s.web_log_bytes_per_request,
            s.request_bytes,
            self._query_bytes(ix),
            self._result_bytes(ix),
            ix.writes,
            self._lognormal_params(s.demand_cv),
            self._lognormal_params(0.15),
            self._lognormal_params(0.10),
        )
        self._profiles[interaction_name] = profile
        return profile

    def _noise(self, cv: Optional[float] = None) -> float:
        """Unit-mean lognormal factor for ``cv`` (1.0 when cv <= 0).

        The hot path draws through the precomputed profile parameters
        directly; this helper remains the one-off entry point.
        """
        cv = self.scaling.demand_cv if cv is None else cv
        params = self._lognormal_params(cv)
        if params is None:
            return 1.0
        return float(self.rng.lognormal(params[0], params[1]))

    # -- shared deterministic formulas -----------------------------------

    def _query_bytes(self, ix: Interaction) -> float:
        return ix.db_queries * self.scaling.query_bytes_per_query * (
            self.scaling.db_net_scale
        )

    def _result_bytes(self, ix: Interaction) -> float:
        if ix.db_queries == 0:
            return 0.0
        s = self.scaling
        returned_rows = min(ix.rows_touched, s.result_row_cap)
        per_query = s.result_base_bytes * ix.db_queries
        return (per_query + returned_rows * s.result_bytes_per_row) * (
            s.db_net_scale
        )

    def _db_write_bytes(self, ix: Interaction) -> float:
        s = self.scaling
        written = ix.rows_written * s.db_write_bytes_per_row
        spill = 0.0
        if ix.rows_touched >= s.spill_threshold_rows:
            spill = ix.rows_touched * s.spill_bytes_per_row
        return written + spill

    def _expected_db_read_bytes(self, ix: Interaction) -> float:
        if ix.rows_touched <= 0:
            return 0.0
        rows_per_page = max(
            1.0, BufferPool.PAGE_BYTES / max(self._row_bytes, 1.0)
        )
        pages = max(1, int(np.ceil(ix.rows_touched / rows_per_page)))
        miss_probability = 1.0 - self.buffer_pool.hit_ratio()
        return pages * miss_probability * BufferPool.PAGE_BYTES

    # -- deterministic expectation ----------------------------------------

    def expected_demand(self, matrix: TransitionMatrix) -> ResourceDemand:
        """Stationary per-request expectation of every demand field.

        Mirrors :meth:`sample` field by field with all noise factors at
        their (unit) means; calibration relies on this exactness.
        """
        pi = matrix.stationary_distribution()
        s = self.scaling
        expected = ResourceDemand()
        for state, probability in pi.items():
            ix = get_interaction(state)
            expected.web_cycles += (
                probability * ix.web_work * s.web_cycles_per_unit
            )
            expected.db_cycles += (
                probability * ix.db_work * s.db_cycles_per_unit
            )
            expected.db_disk_read_bytes += (
                probability * self._expected_db_read_bytes(ix)
            )
            expected.db_disk_write_bytes += (
                probability * self._db_write_bytes(ix)
            )
            expected.web_disk_write_bytes += (
                probability * s.web_log_bytes_per_request
            )
            expected.request_bytes += probability * s.request_bytes
            expected.response_bytes += (
                probability * ix.response_kb * KB * s.response_scale
            )
            expected.query_bytes += probability * self._query_bytes(ix)
            expected.result_bytes += probability * self._result_bytes(ix)
        return expected
