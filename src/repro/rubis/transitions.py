"""Client-emulator transition matrices for the RUBiS mixes.

The RUBiS client emulator walks a first-order Markov chain over the
interactions; its distribution kit ships two canonical tables — the
read-only *browsing* mix and the 15 %-read-write *bidding* mix.  The
tables here follow that structure: browsing never leaves the read-only
states; bidding adds the authentication/commit paths (PutBid/StoreBid,
BuyNow/StoreBuyNow, comments, item registration).

The matrices are genuinely Markovian objects: rows are validated to sum
to one, the chain is checked for absorbing states, and the stationary
distribution (used by the calibration math and the tests) is computed by
power iteration.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.rubis.interactions import INTERACTIONS

_ROW_SUM_TOLERANCE = 1e-9


class TransitionMatrix:
    """Validated first-order Markov chain over interaction names."""

    def __init__(
        self,
        name: str,
        transitions: Mapping[str, Mapping[str, float]],
        initial_state: str = "Home",
        normalize: bool = True,
    ) -> None:
        if initial_state not in transitions:
            raise ConfigurationError(
                f"initial state {initial_state!r} missing from matrix {name!r}"
            )
        self.name = name
        self.initial_state = initial_state
        self.states = tuple(sorted(transitions))
        self._index = {state: i for i, state in enumerate(self.states)}
        matrix = np.zeros((len(self.states), len(self.states)))
        for src, row in transitions.items():
            if not row:
                raise ConfigurationError(
                    f"state {src!r} in matrix {name!r} is absorbing"
                )
            for dst, probability in row.items():
                if dst not in self._index:
                    raise ConfigurationError(
                        f"transition {src!r}->{dst!r} targets a state "
                        f"missing from matrix {name!r}"
                    )
                if probability < 0:
                    raise ConfigurationError(
                        f"negative probability on {src!r}->{dst!r}"
                    )
                matrix[self._index[src], self._index[dst]] = probability
        row_sums = matrix.sum(axis=1)
        if normalize:
            if (row_sums <= 0).any():
                raise ConfigurationError(f"zero-sum row in matrix {name!r}")
            matrix = matrix / row_sums[:, None]
        elif np.abs(row_sums - 1.0).max() > _ROW_SUM_TOLERANCE:
            worst = self.states[int(np.abs(row_sums - 1.0).argmax())]
            raise ConfigurationError(
                f"row {worst!r} of matrix {name!r} sums to "
                f"{row_sums[self._index[worst]]:.6f}, not 1"
            )
        self.matrix = matrix
        unknown = [s for s in self.states if s not in INTERACTIONS]
        if unknown:
            raise ConfigurationError(
                f"matrix {name!r} references unknown interactions: {unknown}"
            )
        # Per-state cumulative rows, prepared exactly as Generator.choice
        # prepares its ``p`` argument (cumsum, then normalize by the last
        # element).  next_state then inverts one uniform draw against the
        # precomputed CDF, which consumes the identical random stream as
        # ``rng.choice(n, p=row)`` without re-validating ``p`` per call.
        # The CDFs are kept as plain float lists: bisect on a short list
        # beats numpy searchsorted's dispatch overhead, with identical
        # IEEE-double comparisons.
        cdfs = []
        for i in range(len(self.states)):
            cdf = matrix[i].cumsum()
            cdf /= cdf[-1]
            cdfs.append(cdf.tolist())
        self._cdfs = cdfs
        # (iterations, tolerance) -> stationary distribution.  The chain
        # is immutable after construction and calibration asks for the
        # distribution repeatedly (expectation inversion, request/commit
        # fractions), so the power iteration runs once per setting.
        self._stationary_cache: Dict[tuple, Dict[str, float]] = {}

    def next_state(self, rng: np.random.Generator, current: str) -> str:
        """Draw the successor of ``current``."""
        index = self._index.get(current)
        if index is None:
            raise ConfigurationError(
                f"state {current!r} not in matrix {self.name!r}"
            )
        return self.states[bisect_right(self._cdfs[index], rng.random())]

    def probability(self, src: str, dst: str) -> float:
        return float(self.matrix[self._index[src], self._index[dst]])

    def stationary_distribution(
        self, iterations: int = 2000, tolerance: float = 1e-12
    ) -> Dict[str, float]:
        """Stationary distribution by power iteration.

        Raises:
            ConfigurationError: if the iteration fails to converge, which
                indicates a periodic or disconnected chain.
        """
        key = (iterations, tolerance)
        cached = self._stationary_cache.get(key)
        if cached is not None:
            return dict(cached)
        pi = np.full(len(self.states), 1.0 / len(self.states))
        for _ in range(iterations):
            updated = pi @ self.matrix
            if np.abs(updated - pi).max() < tolerance:
                result = dict(zip(self.states, updated))
                self._stationary_cache[key] = result
                return dict(result)
            pi = updated
        raise ConfigurationError(
            f"stationary distribution of {self.name!r} did not converge"
        )

    def write_fraction(self) -> float:
        """Stationary probability mass on write interactions."""
        pi = self.stationary_distribution()
        return sum(
            probability
            for state, probability in pi.items()
            if INTERACTIONS[state].writes
        )

    def mean_profile(self, attribute: str) -> float:
        """Stationary mean of an interaction profile attribute."""
        pi = self.stationary_distribution()
        return sum(
            probability * getattr(INTERACTIONS[state], attribute)
            for state, probability in pi.items()
        )


def _browsing_transitions() -> Dict[str, Dict[str, float]]:
    """Read-only navigation: home -> browse -> search -> view loops."""
    return {
        "Home": {"Browse": 0.85, "Home": 0.15},
        "Browse": {
            "BrowseCategories": 0.55,
            "BrowseRegions": 0.35,
            "Home": 0.10,
        },
        "BrowseCategories": {
            "SearchItemsInCategory": 0.85,
            "Browse": 0.15,
        },
        "SearchItemsInCategory": {
            "ViewItem": 0.55,
            "SearchItemsInCategory": 0.30,
            "Browse": 0.15,
        },
        "BrowseRegions": {
            "BrowseCategoriesInRegion": 0.85,
            "Browse": 0.15,
        },
        "BrowseCategoriesInRegion": {
            "SearchItemsInRegion": 0.85,
            "BrowseRegions": 0.15,
        },
        "SearchItemsInRegion": {
            "ViewItem": 0.55,
            "SearchItemsInRegion": 0.30,
            "Browse": 0.15,
        },
        "ViewItem": {
            "ViewUserInfo": 0.25,
            "ViewBidHistory": 0.25,
            "Browse": 0.35,
            "Home": 0.15,
        },
        "ViewUserInfo": {"ViewItem": 0.45, "Browse": 0.55},
        "ViewBidHistory": {"ViewItem": 0.50, "Browse": 0.50},
    }


def _bidding_transitions() -> Dict[str, Dict[str, float]]:
    """Default bidding mix: browsing plus read-write funnels.

    The probabilities were tuned so the stationary write fraction lands
    near 10 % (RUBiS's shipped bidding mix is quoted as "up to 15 %
    read-write interactions"; the chain structure below dilutes the
    funnels through the auth/confirm pages exactly as the real emulator
    does).
    """
    transitions = _browsing_transitions()
    # Entry points gain the seller/registration/about-me paths.
    transitions["Home"] = {
        "Browse": 0.68,
        "Register": 0.06,
        "Sell": 0.08,
        "AboutMe": 0.06,
        "Home": 0.12,
    }
    # Viewing an item leads into the bid / buy-now / comment funnels.
    transitions["ViewItem"] = {
        "PutBidAuth": 0.50,
        "BuyNowAuth": 0.14,
        "ViewUserInfo": 0.07,
        "ViewBidHistory": 0.05,
        "Browse": 0.16,
        "Home": 0.08,
    }
    transitions["ViewUserInfo"] = {
        "PutCommentAuth": 0.40,
        "ViewItem": 0.25,
        "Browse": 0.35,
    }
    transitions["SearchItemsInCategory"] = {
        "ViewItem": 0.70,
        "SearchItemsInCategory": 0.18,
        "Browse": 0.12,
    }
    transitions["SearchItemsInRegion"] = {
        "ViewItem": 0.70,
        "SearchItemsInRegion": 0.18,
        "Browse": 0.12,
    }
    transitions.update(
        {
            "Register": {"RegisterUser": 0.92, "Home": 0.08},
            "RegisterUser": {"Browse": 0.70, "Home": 0.30},
            "PutBidAuth": {"PutBid": 0.97, "ViewItem": 0.03},
            "PutBid": {"StoreBid": 0.95, "ViewItem": 0.05},
            "StoreBid": {"ViewItem": 0.55, "Browse": 0.32, "Home": 0.13},
            "BuyNowAuth": {"BuyNow": 0.95, "ViewItem": 0.05},
            "BuyNow": {"StoreBuyNow": 0.90, "ViewItem": 0.10},
            "StoreBuyNow": {"ViewItem": 0.45, "Browse": 0.35, "Home": 0.20},
            "PutCommentAuth": {"PutComment": 0.95, "ViewUserInfo": 0.05},
            "PutComment": {"StoreComment": 0.92, "ViewUserInfo": 0.08},
            "StoreComment": {"ViewItem": 0.45, "Browse": 0.35, "ViewUserInfo": 0.20},
            "Sell": {"SelectCategoryToSellItem": 0.90, "Home": 0.10},
            "SelectCategoryToSellItem": {"SellItemForm": 0.90, "Sell": 0.10},
            "SellItemForm": {"RegisterItem": 0.90, "Sell": 0.10},
            "RegisterItem": {"Sell": 0.25, "Browse": 0.45, "Home": 0.30},
            "AboutMe": {"Browse": 0.55, "ViewItem": 0.30, "Home": 0.15},
        }
    )
    return transitions


_canonical_matrices: Dict[str, TransitionMatrix] = {}


def browsing_matrix() -> TransitionMatrix:
    """The read-only browsing mix.

    Returns one shared (immutable) instance per process: the chain is
    read-only after construction, and sharing keeps its
    stationary-distribution cache warm across the many runs a suite
    worker executes (calibration asks for the distribution on every
    deployment build).
    """
    if "browsing" not in _canonical_matrices:
        _canonical_matrices["browsing"] = TransitionMatrix(
            "browsing", _browsing_transitions()
        )
    return _canonical_matrices["browsing"]


def bidding_matrix() -> TransitionMatrix:
    """The default bidding mix (~15 % read-write interactions).

    Shared per process, like :func:`browsing_matrix`.
    """
    if "bidding" not in _canonical_matrices:
        _canonical_matrices["bidding"] = TransitionMatrix(
            "bidding", _bidding_transitions()
        )
    return _canonical_matrices["bidding"]


def matrix_for(session_type: str) -> TransitionMatrix:
    """Matrix for a session type: 'browse' or 'bid'."""
    if session_type == "browse":
        return browsing_matrix()
    if session_type == "bid":
        return bidding_matrix()
    raise ConfigurationError(f"unknown session type {session_type!r}")


def reachable_states(matrix: TransitionMatrix) -> Iterable[str]:
    """States reachable from the initial state (BFS over positive edges)."""
    seen = {matrix.initial_state}
    frontier = [matrix.initial_state]
    while frontier:
        state = frontier.pop()
        row = matrix.matrix[matrix._index[state]]
        for j, probability in enumerate(row):
            dst = matrix.states[j]
            if probability > 0 and dst not in seen:
                seen.add(dst)
                frontier.append(dst)
    return sorted(seen)
