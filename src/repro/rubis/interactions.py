"""The 26 RUBiS interactions and their resource profiles.

RUBiS models an auction site; its client emulator walks a Markov chain
whose states are these interactions.  Each interaction carries a
*relative* resource profile (work units, query counts, rows touched,
response sizes).  Absolute demands are produced by
:class:`repro.rubis.demand.DemandSampler`, which multiplies the profile
by per-environment calibration scales — that separation keeps the
application model identical across the virtualized and bare-metal
environments, as in the paper's methodology.

Profile magnitudes follow the usual RUBiS lore: search/browse pages are
the expensive reads (big item lists, multi-way joins), the ``Store*``
interactions are the writes, static-ish pages (Home, auth forms) are
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Interaction:
    """Static profile of one RUBiS interaction.

    Attributes:
        name: RUBiS servlet/PHP script name.
        writes: True if the interaction commits database writes.
        web_work: relative web/application CPU work units.
        db_work: relative database CPU work units.
        db_queries: number of SQL statements issued.
        rows_touched: rows read by those statements (drives buffer-pool
            misses and therefore data-tier disk reads).
        rows_written: rows inserted/updated.
        response_kb: mean HTML response size in KB.
        response_cv: coefficient of variation of the response size.
    """

    name: str
    writes: bool
    web_work: float
    db_work: float
    db_queries: int
    rows_touched: float
    rows_written: float
    response_kb: float
    response_cv: float = 0.35

    def __post_init__(self) -> None:
        if self.web_work < 0 or self.db_work < 0:
            raise ConfigurationError(f"{self.name}: negative work units")
        if self.db_queries < 0 or self.rows_touched < 0 or self.rows_written < 0:
            raise ConfigurationError(f"{self.name}: negative row/query counts")
        if self.writes and self.rows_written <= 0:
            raise ConfigurationError(
                f"{self.name}: marked as writing but writes no rows"
            )


def _make_catalogue() -> Dict[str, Interaction]:
    rows: Tuple[Tuple, ...] = (
        # name                       writes web   db    q  r_tch r_wr  resp_kb
        ("Home",                     False, 0.40, 0.00, 0,    0,  0,    3.0),
        ("Register",                 False, 0.45, 0.00, 0,    0,  0,    4.0),
        ("RegisterUser",             True,  0.90, 0.80, 3,    4,  1,    5.0),
        ("Browse",                   False, 0.50, 0.00, 0,    0,  0,    4.5),
        ("BrowseCategories",         False, 0.80, 0.50, 1,   20,  0,    9.0),
        ("SearchItemsInCategory",    False, 1.60, 1.80, 2,  120,  0,   22.0),
        ("BrowseRegions",            False, 0.70, 0.40, 1,   62,  0,    8.0),
        ("BrowseCategoriesInRegion", False, 0.85, 0.55, 2,   25,  0,    9.5),
        ("SearchItemsInRegion",      False, 1.65, 1.90, 3,  130,  0,   21.0),
        ("ViewItem",                 False, 1.00, 0.90, 2,   12,  0,   14.0),
        ("ViewUserInfo",             False, 0.85, 0.70, 2,   15,  0,    9.0),
        ("ViewBidHistory",           False, 0.95, 1.00, 2,   25,  0,   11.0),
        ("BuyNowAuth",               False, 0.45, 0.00, 0,    0,  0,    4.0),
        ("BuyNow",                   False, 0.90, 0.70, 2,    8,  0,    9.0),
        ("StoreBuyNow",              True,  1.00, 1.40, 4,   10,  3,    5.0),
        ("PutBidAuth",               False, 0.45, 0.00, 0,    0,  0,    4.0),
        ("PutBid",                   False, 0.95, 0.85, 3,   14,  0,   10.0),
        ("StoreBid",                 True,  1.05, 1.50, 4,   12,  2,    5.0),
        ("PutCommentAuth",           False, 0.45, 0.00, 0,    0,  0,    4.0),
        ("PutComment",               False, 0.85, 0.60, 2,    8,  0,    8.0),
        ("StoreComment",             True,  0.95, 1.30, 3,    8,  2,    5.0),
        ("Sell",                     False, 0.45, 0.00, 0,    0,  0,    4.5),
        ("SelectCategoryToSellItem", False, 0.60, 0.35, 1,   20,  0,    6.0),
        ("SellItemForm",             False, 0.50, 0.00, 0,    0,  0,    5.0),
        ("RegisterItem",             True,  1.10, 1.60, 4,    8,  3,    5.5),
        ("AboutMe",                  False, 1.30, 1.40, 4,   60,  0,   16.0),
    )
    catalogue = {}
    for (name, writes, web, db, queries, touched, written, resp) in rows:
        catalogue[name] = Interaction(
            name=name,
            writes=writes,
            web_work=web,
            db_work=db,
            db_queries=queries,
            rows_touched=float(touched),
            rows_written=float(written),
            response_kb=resp,
        )
    return catalogue


#: All 26 RUBiS interactions by name.
INTERACTIONS: Dict[str, Interaction] = _make_catalogue()

#: Read-only interactions used by the browsing mix.
BROWSING_INTERACTIONS = tuple(
    name for name, ix in INTERACTIONS.items() if not ix.writes
)

#: The full interaction set (the bidding mix uses all of them).
BIDDING_INTERACTIONS = tuple(INTERACTIONS)


def get_interaction(name: str) -> Interaction:
    """Look up an interaction profile by name.

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        return INTERACTIONS[name]
    except KeyError:
        raise ConfigurationError(f"unknown RUBiS interaction {name!r}") from None
