"""Tier memory dynamics: the "used memory" series of Figures 2 and 6.

Used memory on a server running a web application is a *level* process
with four visible components, all present in the paper's figures:

* a base footprint (guest OS + daemons + application residents),
* a slow warm-up ramp (page cache, interned code, buffer pool filling),
* a per-active-session component (PHP session state, DB connections),
* occasional *step jumps* when a backlog of requests forces the server
  to allocate more memory — the paper's own explanation of the abrupt
  RAM increases, which it also ties to co-located disk spikes ("which
  also causes more disk reads/writes").

The model watches its station's occupancy every second; when occupancy
exceeds ``backlog_threshold`` (and the cooldown has passed), it commits a
permanent jump of ``jump_mb`` and issues a disk burst through the tier's
execution context — reproducing the paired RAM-step/disk-spike pattern
of Figures 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.queueing import QueueingStation
from repro.apps.tier import ExecutionContext
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.units import MB


@dataclass(frozen=True)
class MemoryProfile:
    """Parameters of one tier's memory level process (all MB-based)."""

    base_mb: float
    #: KB of state per active client session.
    per_session_kb: float = 60.0
    #: Asymptotic warm-up growth above base.
    cache_growth_mb: float = 150.0
    #: Time constant of the warm-up ramp (reaches ~63 % at this age).
    cache_ramp_s: float = 300.0
    #: Standard deviation of the sampling noise.
    noise_mb: float = 6.0
    #: Size of one backlog-induced allocation step.
    jump_mb: float = 110.0
    #: Station occupancy that triggers a jump.
    backlog_threshold: int = 40
    #: Minimum spacing between jumps.
    jump_cooldown_s: float = 120.0
    #: Cap on the number of jumps per run.
    max_jumps: int = 3
    #: Disk burst issued with each jump (the paper's co-located spikes).
    jump_disk_burst_kb: float = 500.0

    def __post_init__(self) -> None:
        if self.base_mb < 0:
            raise ConfigurationError("base_mb must be non-negative")
        if self.cache_ramp_s <= 0:
            raise ConfigurationError("cache_ramp_s must be positive")
        if self.max_jumps < 0:
            raise ConfigurationError("max_jumps must be non-negative")


class TierMemoryModel:
    """Drives a tier's used-memory level once per second."""

    UPDATE_INTERVAL_S = 1.0

    def __init__(
        self,
        sim: Simulator,
        context: ExecutionContext,
        profile: MemoryProfile,
        station: QueueingStation,
        rng: np.random.Generator,
        active_sessions_fn=None,
    ) -> None:
        self.sim = sim
        self.context = context
        self.profile = profile
        self.station = station
        self.rng = rng
        self.active_sessions_fn = active_sessions_fn or (lambda: 0)
        self._start_time = sim.now
        self._jumps_committed = 0
        self._jump_level_mb = 0.0
        self._last_jump_at: Optional[float] = None
        self.jump_times = []
        self._process = PeriodicProcess(
            sim,
            self.UPDATE_INTERVAL_S,
            self._update,
            name=f"memory:{context.owner}",
        ).start()
        self._apply_level(self._level_mb())

    # -- level process ---------------------------------------------------

    def _level_mb(self) -> float:
        profile = self.profile
        age = self.sim.now - self._start_time
        ramp = profile.cache_growth_mb * (
            1.0 - np.exp(-age / profile.cache_ramp_s)
        )
        sessions = self.active_sessions_fn() * profile.per_session_kb / 1024.0
        noise = (
            self.rng.normal(0.0, profile.noise_mb)
            if profile.noise_mb > 0
            else 0.0
        )
        level = (
            profile.base_mb + ramp + sessions + self._jump_level_mb + noise
        )
        return max(level, 0.0)

    def _update(self, tick_time: float) -> None:
        self._maybe_jump(tick_time)
        self._apply_level(self._level_mb())

    def _apply_level(self, level_mb: float) -> None:
        self.context.set_memory(level_mb * MB)

    # -- backlog jumps -----------------------------------------------------

    def _maybe_jump(self, tick_time: float) -> None:
        profile = self.profile
        window_peak = self.station.take_window_peak()
        if self._jumps_committed >= profile.max_jumps:
            return
        if window_peak < profile.backlog_threshold:
            return
        if (
            self._last_jump_at is not None
            and tick_time - self._last_jump_at < profile.jump_cooldown_s
        ):
            return
        self._jumps_committed += 1
        self._jump_level_mb += profile.jump_mb
        self._last_jump_at = tick_time
        self.jump_times.append(tick_time)
        burst_bytes = profile.jump_disk_burst_kb * 1024.0
        if burst_bytes > 0:
            # Backlogged work spills to disk: half read back, half written.
            self.context.disk_read(burst_bytes * 0.5)
            self.context.disk_write(burst_bytes * 0.5)

    @property
    def jumps_committed(self) -> int:
        return self._jumps_committed

    def stop(self) -> None:
        self._process.stop()
