"""The RUBiS auction data set and the MySQL buffer pool model.

The data-scale model follows the RUBiS distribution defaults (eBay-like
proportions: tens of thousands of active auctions, an order of magnitude
more historical ones, a million bids).  The scale matters because it
fixes the working-set size, which — against the buffer-pool capacity —
determines the database tier's *disk read* behaviour, one of the four
resource classes the paper characterizes.

The buffer pool uses a standard 80/20 concentration model: a ``hot_
fraction`` of each table receives most accesses; the pool first caches
hot pages.  The resulting hit ratio is the deterministic core; per-access
misses are then drawn stochastically around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MB


@dataclass(frozen=True)
class TableSpec:
    """One table: row count and average row width (bytes), index overhead."""

    name: str
    rows: int
    row_bytes: float
    index_overhead: float = 0.35

    def total_bytes(self) -> float:
        return self.rows * self.row_bytes * (1.0 + self.index_overhead)


class RubisDatabase:
    """The RUBiS schema at a configurable scale."""

    def __init__(
        self,
        users: int = 100_000,
        active_items: int = 33_000,
        old_items: int = 500_000,
        regions: int = 62,
        categories: int = 20,
        bids_per_item: float = 10.0,
        comments_per_user: float = 5.0,
        buy_now_fraction: float = 0.1,
    ) -> None:
        if min(users, active_items, old_items, regions, categories) <= 0:
            raise ConfigurationError("all table cardinalities must be positive")
        total_items = active_items + old_items
        self.tables: Dict[str, TableSpec] = {
            spec.name: spec
            for spec in (
                TableSpec("regions", regions, 24),
                TableSpec("categories", categories, 40),
                TableSpec("users", users, 292),
                TableSpec("items", total_items, 420),
                TableSpec("bids", int(total_items * bids_per_item), 52),
                TableSpec("comments", int(users * comments_per_user), 240),
                TableSpec("buy_now", int(total_items * buy_now_fraction), 44),
            )
        }
        self.active_items = active_items
        self.old_items = old_items

    def table(self, name: str) -> TableSpec:
        if name not in self.tables:
            raise ConfigurationError(f"unknown table {name!r}")
        return self.tables[name]

    def total_bytes(self) -> float:
        """Total on-disk footprint of data plus indexes."""
        return sum(spec.total_bytes() for spec in self.tables.values())

    def table_sizes(self) -> Dict[str, Tuple[int, float]]:
        """``{table: (rows, bytes)}`` summary used by reports."""
        return {
            name: (spec.rows, spec.total_bytes())
            for name, spec in self.tables.items()
        }

    def mean_row_bytes(self) -> float:
        """Access-weighted mean row size (weighting by row counts)."""
        total_rows = sum(spec.rows for spec in self.tables.values())
        return self.total_bytes() / total_rows


class BufferPool:
    """InnoDB-style buffer pool with an 80/20 access concentration model.

    Attributes:
        capacity_bytes: pool size (the paper's DB VM has 2 GB of RAM; a
            default RUBiS/MySQL install gives a few hundred MB to InnoDB).
        hot_fraction: fraction of the data that receives
            ``hot_access_probability`` of the accesses.
    """

    PAGE_BYTES = 16 * 1024

    def __init__(
        self,
        capacity_bytes: float = 256 * MB,
        database: RubisDatabase = None,
        hot_fraction: float = 0.2,
        hot_access_probability: float = 0.8,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be positive")
        if not 0 < hot_fraction <= 1:
            raise ConfigurationError("hot_fraction must be in (0, 1]")
        if not 0 <= hot_access_probability <= 1:
            raise ConfigurationError("hot_access_probability must be in [0, 1]")
        self.capacity_bytes = float(capacity_bytes)
        self.database = database or RubisDatabase()
        self.hot_fraction = float(hot_fraction)
        self.hot_access_probability = float(hot_access_probability)
        self.hits = 0
        self.misses = 0
        # Pool capacity and data-set size are fixed after construction,
        # so the steady-state hit ratio is a constant; computing it per
        # access (summing seven table footprints) dominated pool cost.
        self._hit_ratio = self._compute_hit_ratio()
        self._miss_probability = 1.0 - self._hit_ratio

    def hit_ratio(self) -> float:
        """Steady-state hit probability of one page access."""
        return self._hit_ratio

    def _compute_hit_ratio(self) -> float:
        """Hot pages are cached first; whatever capacity remains caches a
        proportional slice of the cold pages."""
        data = self.database.total_bytes()
        hot_bytes = data * self.hot_fraction
        cold_bytes = data - hot_bytes
        hot_cached = min(1.0, self.capacity_bytes / hot_bytes)
        remaining = max(0.0, self.capacity_bytes - hot_bytes)
        cold_cached = min(1.0, remaining / cold_bytes) if cold_bytes > 0 else 1.0
        return (
            self.hot_access_probability * hot_cached
            + (1.0 - self.hot_access_probability) * cold_cached
        )

    def access(
        self, rng: np.random.Generator, rows: float, row_bytes: float
    ) -> float:
        """Simulate reading ``rows`` rows; returns bytes to fetch from disk.

        Rows map to pages (rows cluster, so several rows share a page);
        each page access misses with probability ``1 - hit_ratio()``.
        """
        if rows <= 0:
            return 0.0
        if row_bytes < 1.0:
            row_bytes = 1.0
        rows_per_page = self.PAGE_BYTES / row_bytes
        if rows_per_page < 1.0:
            rows_per_page = 1.0
        pages = ceil(rows / rows_per_page)
        if pages < 1:
            pages = 1
        missed_pages = int(rng.binomial(pages, self._miss_probability))
        self.hits += pages - missed_pages
        self.misses += missed_pages
        return missed_pages * self.PAGE_BYTES

    def observed_hit_ratio(self) -> float:
        """Hit ratio measured over the accesses made so far."""
        total = self.hits + self.misses
        if total == 0:
            return 1.0
        return self.hits / total
