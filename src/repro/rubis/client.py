"""Closed-loop client emulation.

The paper drives RUBiS with 1000 clients external to the testbed, each
with a 7-second mean think time.  A :class:`ClientSession` is a closed
loop: think, walk the transition matrix one step, send the request, wait
for the response, think again.  The :class:`ClientPopulation` owns all
sessions, staggers their start (ramp-up), and fires the burst waves that
synchronize thinking clients to build tier backlog (the RAM-jump
mechanism of Figures 2 and 6).

A deployment accepts any *traffic driver* in place of the population:
an object with ``start()``, a ``stats`` :class:`SessionStats`, and
``active_session_count()`` (what the tier memory models scale with).
:class:`ClientPopulation` is the closed-loop driver;
:class:`repro.traffic.driver.OpenLoopDriver` is the open-loop one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.apps.requests import Request
from repro.errors import ConfigurationError
from repro.rubis.transitions import TransitionMatrix
from repro.rubis.workload import SessionType, WorkloadMix
from repro.sim.engine import Simulator
from repro.sim.events import Event

#: ``send_fn(session, interaction_name, on_response)`` — implemented by
#: the deployment; delivers the response by calling ``on_response``.
SendFn = Callable[["ClientSession", str, Callable[[Request], None]], None]


@dataclass
class SessionStats:
    """Aggregate counters across sessions."""

    #: Cap on the retained response-time sample (reservoir for SLA work).
    MAX_SAMPLES = 200_000

    requests_sent: int = 0
    responses_received: int = 0
    total_response_time_s: float = 0.0
    per_interaction: Dict[str, int] = field(default_factory=dict)
    #: Individual response times (capped at MAX_SAMPLES), used by the
    #: SLA evaluation workflow the paper motivates.
    response_times_s: List[float] = field(default_factory=list)
    #: Live subscribers (see :meth:`add_window_sink`): unlike the
    #: capped reservoir above, sinks receive *every* response time, so
    #: windowed consumers (the elastic controller's signal tap) never
    #: go blind on long runs.
    _window_sinks: List[list] = field(default_factory=list, repr=False)

    def add_window_sink(self, sink: list) -> None:
        """Subscribe a list to receive every future response time.

        The caller owns draining it (``clear()`` — the registered
        reference must stay alive).  Appending to a plain list draws
        no randomness and schedules nothing, so subscribing never
        perturbs a run.
        """
        self._window_sinks.append(sink)

    def record_request(self, interaction: str) -> None:
        self.requests_sent += 1
        self.per_interaction[interaction] = (
            self.per_interaction.get(interaction, 0) + 1
        )

    def record_response(self, request: Request) -> None:
        self.responses_received += 1
        response_time = request.response_time
        if response_time is not None:
            self.total_response_time_s += response_time
            times = self.response_times_s
            if len(times) < self.MAX_SAMPLES:
                times.append(response_time)
            if self._window_sinks:
                for sink in self._window_sinks:
                    sink.append(response_time)

    @property
    def mean_response_time_s(self) -> float:
        if self.responses_received == 0:
            return 0.0
        return self.total_response_time_s / self.responses_received


class ClientSession:
    """One emulated browser in a closed loop."""

    __slots__ = ("sim", "session_id", "session_type", "matrix",
                 "think_time_s", "rng", "send_fn", "stats", "state",
                 "_think_event", "requests_sent")

    def __init__(
        self,
        sim: Simulator,
        session_id: int,
        session_type: SessionType,
        matrix: TransitionMatrix,
        think_time_s: float,
        rng: np.random.Generator,
        send_fn: SendFn,
        stats: SessionStats,
    ) -> None:
        if think_time_s <= 0:
            raise ConfigurationError("think_time_s must be positive")
        self.sim = sim
        self.session_id = session_id
        self.session_type = session_type
        self.matrix = matrix
        self.think_time_s = float(think_time_s)
        self.rng = rng
        self.send_fn = send_fn
        self.stats = stats
        self.state = matrix.initial_state
        self._think_event: Optional[Event] = None
        self.requests_sent = 0

    @property
    def thinking(self) -> bool:
        """True while the session waits out a think time."""
        return self._think_event is not None

    def start(self, delay: float = 0.0) -> None:
        """Begin the loop: first request after ``delay`` seconds."""
        self._think_event = self.sim.schedule(delay, self._send_next)

    def trigger_now(self) -> None:
        """Burst hook: cut the current think time short."""
        if self._think_event is None:
            return
        self.sim.cancel(self._think_event)
        self._think_event = self.sim.schedule(0.0, self._send_next)

    def _send_next(self) -> None:
        self._think_event = None
        self.state = self.matrix.next_state(self.rng, self.state)
        self.requests_sent += 1
        self.stats.record_request(self.state)
        self.send_fn(self, self.state, self._on_response)

    def _on_response(self, request: Request) -> None:
        sim = self.sim
        request.completed_at = sim.now
        self.stats.record_response(request)
        think = float(self.rng.exponential(self.think_time_s))
        self._think_event = sim.schedule(think, self._send_next)


class ClientPopulation:
    """All emulated clients for one experiment run."""

    def __init__(
        self,
        sim: Simulator,
        mix: WorkloadMix,
        send_fn: SendFn,
        rng: np.random.Generator,
        matrices: Dict[SessionType, TransitionMatrix],
        ramp_s: float = 10.0,
    ) -> None:
        if ramp_s < 0:
            raise ConfigurationError("ramp_s must be non-negative")
        self.sim = sim
        self.mix = mix
        self.rng = rng
        self.stats = SessionStats()
        self.sessions: List[ClientSession] = []
        for session_id in range(mix.clients):
            session_type = mix.session_type(rng)
            self.sessions.append(
                ClientSession(
                    sim,
                    session_id,
                    session_type,
                    matrices[session_type],
                    mix.think_time_s,
                    rng,
                    send_fn,
                    self.stats,
                )
            )
        self._ramp_s = float(ramp_s)
        self.burst_times: Dict[SessionType, tuple] = {}

    def start(self) -> None:
        """Stagger session starts over the ramp and arm the burst waves."""
        for session in self.sessions:
            delay = float(self.rng.uniform(0.0, max(self._ramp_s, 1e-9)))
            session.start(delay)
        for session_type in SessionType:
            schedule = self.mix.burst_schedule(session_type)
            times = schedule.sample_times(self.rng)
            self.burst_times[session_type] = times
            for burst_time in times:
                self.sim.schedule_at(
                    burst_time,
                    self._fire_burst,
                    session_type,
                    schedule.fraction,
                )

    def _fire_burst(self, session_type: SessionType, fraction: float) -> None:
        candidates = [
            s
            for s in self.sessions
            if s.session_type is session_type and s.thinking
        ]
        count = int(len(candidates) * fraction)
        if count <= 0:
            return
        chosen = self.rng.choice(len(candidates), size=count, replace=False)
        for index in chosen:
            candidates[int(index)].trigger_now()

    def sessions_of_type(self, session_type: SessionType) -> List[ClientSession]:
        return [s for s in self.sessions if s.session_type is session_type]

    def active_session_count(self) -> int:
        """Driver interface: closed-loop sessions are all always active."""
        return len(self.sessions)

    @property
    def throughput_estimate(self) -> float:
        """Long-run requests/s implied by the closed-loop population."""
        return self.mix.clients / self.mix.think_time_s
