"""The database tier (MySQL).

A station of database worker threads.  Service time is the query CPU
time plus any *synchronous* buffer-pool miss reads (the thread blocks on
the pages).  Write-backs (data, index, binlog) are issued asynchronously
at completion, and commits trigger the fixed-cost commit accounting
(journal barrier + fsync) on the execution context — which in the
virtualized environment lands in dom0, producing finding Q5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.queueing import QueueingStation
from repro.apps.requests import Request
from repro.apps.tier import ExecutionContext
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class MysqlTierConfig:
    """MySQL worker pool parameters."""

    #: Concurrent database threads actually executing queries.
    workers: int = 8
    #: Hypercall/syscall accounting scale for one query batch.
    request_account_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")


class MysqlTier:
    """Database tier: a station over an execution context."""

    def __init__(
        self,
        sim: Simulator,
        context: ExecutionContext,
        config: MysqlTierConfig = None,
    ) -> None:
        self.sim = sim
        self.context = context
        self.config = config or MysqlTierConfig()
        self.station = QueueingStation(
            sim,
            name=f"mysql:{context.owner}",
            workers=self.config.workers,
            on_start=context.worker_started,
            on_finish=context.worker_finished,
        )
        context.register_station(self.station)
        self.queries_executed = 0
        self.commits = 0

    def handle(self, request: Request, done_fn: Callable[[Request], None]) -> None:
        """Execute ``request``'s query batch; ``done_fn`` fires at the end.

        The continuation travels with the job so the station calls the
        tier's stable bound methods — no per-request closures.
        """
        self.station.submit((request, done_fn), self._service, self._done)

    def _service(self, job) -> float:
        request = job[0]
        context = self.context
        request.db_started_at = self.sim.now
        demand = request.demand
        context.account_request(self.config.request_account_scale)
        context.charge_cpu(demand.db_cycles)
        duration = context.cpu_time(demand.db_cycles)
        if request.trace is not None:
            request.trace.add_cpu(
                "cpu.db",
                request.db_started_at,
                duration,
                context.pure_cpu_time(demand.db_cycles),
            )
        if demand.db_disk_read_bytes > 0:
            # The thread blocks on buffer-pool misses.
            blocked = (
                context.disk_read(demand.db_disk_read_bytes) - self.sim.now
            )
            if blocked > 0.0:
                if request.trace is not None:
                    request.trace.add_disk(
                        "disk.db_read",
                        request.db_started_at + duration,
                        blocked,
                    )
                duration += blocked
        return duration

    def _done(self, job) -> None:
        request, done_fn = job
        demand = request.demand
        self.queries_executed += demand.db_queries
        if demand.db_disk_write_bytes > 0:
            # Dirty pages, index updates, binlog — written back
            # asynchronously after the query batch returns.
            self.context.disk_write(demand.db_disk_write_bytes)
        if demand.commit:
            self.commits += 1
            self.context.account_commit()
        done_fn(request)

    @property
    def backlog(self) -> int:
        return self.station.backlog
