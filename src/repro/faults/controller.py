"""The fault scheduler: fires the plan, records the "faults" entity.

A :class:`FaultController` is a
:class:`~repro.control.controller.PeriodicController` like the elastic
and fleet controllers, so the experiment layers need no new plumbing:
the testbed appends it to ``testbed.controllers`` and its per-tick
series merge into the run's trace set (entity ``"faults"``) and the
columnar table, its :meth:`report` lands in
``control_reports["faults"]``.

Scheduling is pure event-loop: every fault's resolved inject/clear
time becomes one absolute-time event at priority 50 — after the trace
recorder (30), the elastic controllers (40) and the fleet controller
(45) at the same timestamp, so a fault landing exactly on a sampling
tick becomes visible in the *next* window, never half-way through one.
Each transition is broadcast to the target hypervisor's control hooks
as a ``fault.inject`` / ``fault.clear`` event (no dom0 charge — faults
are environmental, not control actions).

Determinism: the controller draws no randomness (bot-flood injectors
own a dedicated named stream), and when a scenario carries no faults
the controller is never constructed — the fault-free hot path is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.control.controller import PeriodicController
from repro.faults.injectors import Injector
from repro.faults.spec import ResolvedFault
from repro.units import SAMPLE_PERIOD_S

#: Event-loop priority of fault transitions and the sampling tick.
FAULT_PRIORITY = 50


@dataclass
class PlannedFault:
    """One resolved fault bound to its actuator and event target."""

    resolved: ResolvedFault
    injector: Injector
    #: Hypervisor whose control hooks receive the inject/clear events
    #: (the target's).
    hypervisor: object

    @property
    def spec(self):
        return self.resolved.spec


class FaultController(PeriodicController):
    """Schedule a fault plan and trace its lifecycle."""

    def __init__(
        self,
        sim,
        plan: Sequence[PlannedFault],
        entity: str = "faults",
        interval_s: float = SAMPLE_PERIOD_S,
    ) -> None:
        super().__init__(sim, entity)
        self.plan = list(plan)
        self._interval_s = interval_s
        self.active_faults = 0
        self.injected = 0
        self.cleared = 0
        #: Plain-data lifecycle log (one entry per transition).
        self.log: List[dict] = []
        self._add_series("active", "faults")
        self._add_series("injected", "count")
        self._add_series("cleared", "count")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FaultController":
        """Schedule every planned transition and arm the sampler."""
        for planned in self.plan:
            self.sim.schedule_at(
                planned.resolved.inject_at_s,
                self._inject,
                planned,
                priority=FAULT_PRIORITY,
            )
        self._arm(self._interval_s, priority=FAULT_PRIORITY)
        return self

    # -- transitions -------------------------------------------------------

    def _event(self, planned: PlannedFault, phase: str) -> dict:
        spec = planned.spec
        return {
            "time_s": self.sim.now,
            # Control-hook consumers filter on these two keys; a fault
            # event must carry both (server faults have no domain).
            "kind": f"fault.{phase}",
            "domain": "" if spec.server_target else (spec.target or "web-vm"),
            "fault": spec.kind,
            "target": spec.target,
            "magnitude": spec.effective_magnitude,
        }

    def _inject(self, planned: PlannedFault) -> None:
        planned.injector.inject()
        self.injected += 1
        self.active_faults += 1
        event = self._event(planned, "inject")
        self.log.append(event)
        planned.hypervisor.emit_event(event)
        if planned.resolved.clear_at_s is not None:
            self.sim.schedule_at(
                planned.resolved.clear_at_s,
                self._clear,
                planned,
                priority=FAULT_PRIORITY,
            )

    def _clear(self, planned: PlannedFault) -> None:
        planned.injector.clear()
        self.cleared += 1
        self.active_faults -= 1
        event = self._event(planned, "clear")
        self.log.append(event)
        planned.hypervisor.emit_event(event)

    # -- sampling ----------------------------------------------------------

    def _tick(self, tick_time: float) -> None:
        series = self._series
        series["active"].append(tick_time, float(self.active_faults))
        series["injected"].append(tick_time, float(self.injected))
        series["cleared"].append(tick_time, float(self.cleared))

    # -- exports -----------------------------------------------------------

    def report(self) -> dict:
        """Plain-data summary of the schedule and what fired."""
        return {
            "kind": "faults",
            "injected": self.injected,
            "cleared": self.cleared,
            "active": self.active_faults,
            "schedule": [
                {
                    "fault": planned.spec.kind,
                    "target": planned.spec.target,
                    "magnitude": planned.spec.effective_magnitude,
                    "inject_at_s": planned.resolved.inject_at_s,
                    "clear_at_s": planned.resolved.clear_at_s,
                }
                for planned in self.plan
            ],
            "events": list(self.log),
        }

    def first_inject_at_s(self) -> Optional[float]:
        """Onset of the earliest planned fault (scoring convenience)."""
        if not self.plan:
            return None
        return min(p.resolved.inject_at_s for p in self.plan)
