"""Recovery scoring: grade a run's response to an injected fault.

The AIOps framing: a fault is only as bad as the time the service
spends outside its SLO, and a recovery policy is only as good as the
window it closes (and what the capacity bill says it cost).  This
module turns a run's windowed p95 series plus the fault schedule into
the three canonical numbers — detection time, recovery time and the
total SLO-violation window — and prices run pairs (recovered vs.
watch-only) through :mod:`repro.planning.cost`.

Definitions (all relative to the resolved injection time):

* *detected* — the first sampled window whose p95 breaches the SLO at
  or after the injection (the fault became observable in the signal
  every controller watches).
* *recovered* — the start of the first post-detection window from
  which p95 stays at or below the SLO for ``sustain_windows``
  consecutive samples.  Later isolated breaches (e.g. a co-tenant's
  periodic burst interference) are separate events: they add to the
  violation window but do not revoke the recovery.
* *SLO violation* — the summed width of all breached windows from the
  injection to the horizon.

Pure plain-data functions over (times, values) arrays, so they score
exported traces as readily as live results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.planning.cost import CostModel


@dataclass(frozen=True)
class ViolationWindow:
    """One contiguous SLO-breach episode of a sampled p95 series.

    ``start_s``/``end_s`` are the sample times of the first and last
    breached windows of the episode; ``width_s`` counts only the
    breached samples inside it (compliant samples shorter than the
    sustain run that would close the episode do not add width).
    """

    start_s: float
    end_s: float
    #: Breached samples inside the episode.
    breached_samples: int
    #: Summed width of the breached samples, seconds.
    width_s: float

    def to_dict(self) -> dict:
        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "breached_samples": self.breached_samples,
            "width_s": self.width_s,
        }


def violation_windows(
    times,
    values,
    slo_ms: float,
    sustain_windows: int = 1,
) -> List[ViolationWindow]:
    """Merged (start, end) SLO-breach windows of one p95 series.

    The incident detector and the attribution engine consume these
    directly: each :class:`ViolationWindow` is one episode of
    consecutive breached samples, and an episode only *closes* after
    ``sustain_windows`` consecutive compliant samples — the same
    sustained-return rule :func:`score_recovery` applies — so a
    one-window dip below the SLO does not split one incident into two.
    """
    if slo_ms <= 0:
        raise ConfigurationError("slo_ms must be positive")
    if sustain_windows < 1:
        raise ConfigurationError("sustain_windows must be >= 1")
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ConfigurationError("times and values must align")
    if times.size == 0:
        return []
    window_s = float(np.median(np.diff(times))) if times.size > 1 else 0.0
    breached = values > slo_ms
    windows: List[ViolationWindow] = []
    start: Optional[float] = None
    last_breach = 0.0
    count = 0
    ok_run = 0
    for i in range(times.size):
        if breached[i]:
            if start is None:
                start = float(times[i])
                count = 0
            last_breach = float(times[i])
            count += 1
            ok_run = 0
        elif start is not None:
            ok_run += 1
            if ok_run >= sustain_windows:
                windows.append(
                    ViolationWindow(start, last_breach, count, count * window_s)
                )
                start = None
    if start is not None:
        windows.append(
            ViolationWindow(start, last_breach, count, count * window_s)
        )
    return windows


@dataclass(frozen=True)
class RecoveryScore:
    """How one run weathered one fault."""

    fault_time_s: float
    slo_ms: float
    #: First breached window at/after the fault (None: never observed).
    detected_at_s: Optional[float]
    #: Start of the sustained return below the SLO (None: no recovery).
    recovered_at_s: Optional[float]
    #: Total width of SLO-breached windows after the fault.
    slo_violation_s: float
    #: Per-episode breach windows (:func:`violation_windows` over the
    #: post-fault series, merged with the same sustain rule).
    windows: Tuple[ViolationWindow, ...] = ()

    @property
    def detection_s(self) -> Optional[float]:
        """Fault onset to first observable breach."""
        if self.detected_at_s is None:
            return None
        return self.detected_at_s - self.fault_time_s

    @property
    def recovery_s(self) -> Optional[float]:
        """Fault onset to the sustained return below the SLO."""
        if self.recovered_at_s is None:
            return None
        return self.recovered_at_s - self.fault_time_s

    @property
    def recovered(self) -> bool:
        return self.recovered_at_s is not None

    def to_dict(self) -> dict:
        return {
            "fault_time_s": self.fault_time_s,
            "slo_ms": self.slo_ms,
            "detected_at_s": self.detected_at_s,
            "recovered_at_s": self.recovered_at_s,
            "detection_s": self.detection_s,
            "recovery_s": self.recovery_s,
            "slo_violation_s": self.slo_violation_s,
            "recovered": self.recovered,
            "windows": [window.to_dict() for window in self.windows],
        }


def score_recovery(
    times,
    values,
    fault_time_s: float,
    slo_ms: float,
    sustain_windows: int = 3,
) -> RecoveryScore:
    """Score one p95 series against one fault onset.

    ``times``/``values`` are the sampled window ends and their p95 in
    milliseconds (any aligned pair of 1-D arrays works).
    """
    if slo_ms <= 0:
        raise ConfigurationError("slo_ms must be positive")
    if sustain_windows < 1:
        raise ConfigurationError("sustain_windows must be >= 1")
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ConfigurationError("times and values must align")
    after = times >= fault_time_s
    times = times[after]
    values = values[after]
    if times.size == 0:
        return RecoveryScore(fault_time_s, slo_ms, None, None, 0.0)
    window_s = float(np.median(np.diff(times))) if times.size > 1 else 0.0
    breached = values > slo_ms
    violation_s = float(breached.sum()) * window_s
    if not breached.any():
        return RecoveryScore(fault_time_s, slo_ms, None, None, 0.0)
    windows = tuple(
        violation_windows(times, values, slo_ms, sustain_windows)
    )
    first_breach = int(np.argmax(breached))
    detected_at = float(times[first_breach])
    # Recovery: the first index at/after the breach from which the SLO
    # holds for sustain_windows consecutive samples.
    ok = (~breached).astype(float)
    recovered_at: Optional[float] = None
    if times.size >= sustain_windows:
        sustained = (
            np.convolve(ok, np.ones(sustain_windows), mode="valid")
            >= sustain_windows - 0.5
        )
        candidates = np.flatnonzero(sustained[first_breach:])
        if candidates.size:
            recovered_at = float(times[first_breach + candidates[0]])
    return RecoveryScore(
        fault_time_s, slo_ms, detected_at, recovered_at, violation_s,
        windows=windows,
    )


def score_run(
    result,
    slo_ms: float,
    entity: str = "fleet",
    resource: str = "p95_ms",
    sustain_windows: int = 3,
):
    """Score every injected fault of one experiment result.

    Reads the fault schedule from ``control_reports["faults"]`` and the
    p95 series from the named trace entity (``fleet`` for multi-server
    runs, ``control`` for elastic-controller runs).  Returns a list of
    :class:`RecoveryScore`, one per injected fault, in onset order.
    """
    reports = result.control_reports or {}
    faults = reports.get("faults")
    if not faults:
        raise ConfigurationError(
            "result carries no faults report; was the scenario faulted?"
        )
    series = result.traces.get(entity, resource)
    return [
        score_recovery(
            series.times,
            series.values,
            entry["inject_at_s"],
            slo_ms,
            sustain_windows=sustain_windows,
        )
        for entry in sorted(
            faults["schedule"], key=lambda e: e["inject_at_s"]
        )
    ]


def billing_delta(
    recovered_result,
    baseline_result,
    cost_model: Optional[CostModel] = None,
) -> dict:
    """Price a recovered run against its watch-only baseline.

    Reservation-based bills barely move under a fault (capacity stays
    reserved whether or not it serves), so the decisive number is the
    $-per-kilorequest delta: the watch-only run pays the same bill for
    far fewer completed requests.
    """
    model = cost_model or CostModel()

    def _one(result):
        billing = (result.control_reports or {}).get("billing")
        if billing is None:
            raise ConfigurationError(
                "result carries no billing report (virtualized runs only)"
            )
        total = model.run_cost_usd(billing)["total"]
        completed = result.requests_completed
        per_kilo = (
            total / (completed / 1000.0) if completed > 0 else float("inf")
        )
        return total, completed, per_kilo

    rec_usd, rec_done, rec_per_kilo = _one(recovered_result)
    base_usd, base_done, base_per_kilo = _one(baseline_result)
    return {
        "recovered_usd": rec_usd,
        "baseline_usd": base_usd,
        "delta_usd": rec_usd - base_usd,
        "recovered_requests": rec_done,
        "baseline_requests": base_done,
        "recovered_usd_per_kilorequest": rec_per_kilo,
        "baseline_usd_per_kilorequest": base_per_kilo,
    }
