"""Fault actuators: what each fault kind does to the live testbed.

An injector pairs an ``inject()`` with a ``clear()``; both are
idempotence-free single-shot actions the
:class:`~repro.faults.controller.FaultController` fires at the
schedule's resolved times.  Injectors save the exact pre-fault values
they overwrite and restore them verbatim on clear, so a cleared fault
leaves the hardware/scheduler state bit-identical to a run in which it
never fired (from the clear point onward).

What each kind touches:

* ``crash`` — collapses the credit scheduler's ``total_cores`` to a
  residual fraction.  Every domain on the server (dom0 included)
  starves, speed fractions collapse and CPU-ready time floods the
  per-server fleet signals — the detectable "server went dark" shape.
  The NIC keeps answering, which is what lets the fleet controller
  evacuate the domains off the box under pressure.
* ``degrade_disk`` / ``degrade_nic`` — divide the backend's bandwidth
  by the slowdown factor (and multiply disk access latency by it).
* ``cap_theft`` — a noisy neighbour steals the victim domain's credit
  cap: the cap is forced down to ``magnitude`` cores.  Clearing only
  restores the cap if no controller has re-actuated it meanwhile — an
  elastic controller's recovery must not be silently undone.
* ``dom0_saturate`` — parks extra workers on dom0's demand gauge; at
  weight 512 they crowd the guests out of the credit scheduler.
* ``bot_flood`` — a deterministic Poisson stream of bot sessions
  hammering the heaviest read interactions through the normal request
  path (the server pays for them; no client statistic counts them).
* ``flash_crowd`` — handled declaratively: the testbed composes a
  :class:`~repro.traffic.shapes.FlashCrowdShape` into the open-loop
  envelope at build time, so the injector itself is a no-op marker
  that exists to emit the inject/clear trace events.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.spec import (
    BOT_FLOOD,
    CAP_THEFT,
    CRASH,
    DEGRADE_DISK,
    DEGRADE_NIC,
    DOM0_SATURATE,
    FLASH_CROWD,
    FaultSpec,
)

#: Read-heavy RUBiS interactions a scraping bot hammers (cycled
#: deterministically, heaviest first).
BOT_INTERACTIONS = (
    "SearchItemsInCategory",
    "SearchItemsInRegion",
    "ViewItem",
    "BrowseCategories",
)


class Injector:
    """One fault's inject/clear actuator pair."""

    def inject(self) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class ServerCrashInjector(Injector):
    """Collapse a server's schedulable cores to a residual fraction."""

    def __init__(self, hypervisor, residual_fraction: float) -> None:
        self.hypervisor = hypervisor
        self.residual = residual_fraction
        self._saved_cores: Optional[float] = None

    def inject(self) -> None:
        scheduler = self.hypervisor.scheduler
        self._saved_cores = scheduler.total_cores
        scheduler.total_cores = self._saved_cores * self.residual

    def clear(self) -> None:
        if self._saved_cores is not None:
            self.hypervisor.scheduler.total_cores = self._saved_cores
            self._saved_cores = None


class DiskDegradeInjector(Injector):
    """Slow a server's disk: bandwidth divided, latency multiplied."""

    def __init__(self, server, factor: float) -> None:
        self.server = server
        self.factor = factor
        self._saved = None

    def inject(self) -> None:
        disk = self.server.disk
        self._saved = (
            disk.read_bandwidth_bps,
            disk.write_bandwidth_bps,
            disk.access_latency_s,
        )
        disk.read_bandwidth_bps = self._saved[0] / self.factor
        disk.write_bandwidth_bps = self._saved[1] / self.factor
        disk.access_latency_s = self._saved[2] * self.factor

    def clear(self) -> None:
        if self._saved is not None:
            disk = self.server.disk
            (
                disk.read_bandwidth_bps,
                disk.write_bandwidth_bps,
                disk.access_latency_s,
            ) = self._saved
            self._saved = None


class NicDegradeInjector(Injector):
    """Divide a server NIC's bandwidth by the slowdown factor."""

    def __init__(self, server, factor: float) -> None:
        self.server = server
        self.factor = factor
        self._saved: Optional[float] = None

    def inject(self) -> None:
        nic = self.server.nic
        self._saved = nic.bandwidth_bps
        nic.bandwidth_bps = self._saved / self.factor

    def clear(self) -> None:
        if self._saved is not None:
            self.server.nic.bandwidth_bps = self._saved
            self._saved = None


class CapTheftInjector(Injector):
    """Force a victim domain's credit cap down to the stolen residue."""

    def __init__(self, hypervisor, domain_name: str, stolen_cap: float) -> None:
        self.hypervisor = hypervisor
        self.domain_name = domain_name
        self.stolen_cap = stolen_cap
        self._saved_cap: Optional[float] = None

    def inject(self) -> None:
        domain = self.hypervisor.domain(self.domain_name)
        self._saved_cap = domain.cap_cores
        self.hypervisor.set_cap_cores(domain, self.stolen_cap)

    def clear(self) -> None:
        if self._saved_cap is None:
            return
        domain = self.hypervisor.domain(self.domain_name)
        # Restore only if the theft is still in force: an elastic
        # controller that already re-raised the cap owns it now.
        if domain.cap_cores == self.stolen_cap:
            self.hypervisor.set_cap_cores(domain, self._saved_cap)
        self._saved_cap = None


class Dom0SaturateInjector(Injector):
    """Park extra workers on dom0 (weight 512 crowds the guests)."""

    def __init__(self, hypervisor, extra_workers: int) -> None:
        self.hypervisor = hypervisor
        self.extra_workers = extra_workers
        self._parked = 0

    def inject(self) -> None:
        self.hypervisor.dom0.active_workers += self.extra_workers
        self._parked = self.extra_workers

    def clear(self) -> None:
        if self._parked:
            self.hypervisor.dom0.active_workers -= self._parked
            self._parked = 0


class _BotSession:
    """Minimal session shim: the request path reads ``session_id``."""

    __slots__ = ("session_id",)

    def __init__(self, session_id: int) -> None:
        self.session_id = session_id


class BotFloodInjector(Injector):
    """Deterministic Poisson bot traffic through the request path.

    Bots ride the exact send path real sessions use, so the web/db
    tiers, the dom0 backends and every probe pay for them — but their
    responses terminate here, never in the client statistics.  The
    arrival gaps draw from a dedicated ``faults.botflood`` stream, so a
    flood never perturbs any pre-existing RNG stream.
    """

    def __init__(
        self,
        sim,
        deployment,
        rate_rps: float,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.deployment = deployment
        self.rate_rps = rate_rps
        self.rng = rng
        self.bots_sent = 0
        self.bots_answered = 0
        self._active = False
        self._pending = None

    def inject(self) -> None:
        self._active = True
        self._schedule_next()

    def clear(self) -> None:
        self._active = False
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None

    def _schedule_next(self) -> None:
        gap = self.rng.exponential(1.0 / self.rate_rps)
        self._pending = self.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        self._pending = None
        if not self._active:
            return
        interaction = BOT_INTERACTIONS[
            self.bots_sent % len(BOT_INTERACTIONS)
        ]
        # Negative ids keep bot sessions disjoint from every real
        # session id the drivers hand out.
        session = _BotSession(-1 - self.bots_sent)
        self.bots_sent += 1
        self.deployment.send(session, interaction, self._answered)
        self._schedule_next()

    def _answered(self, request) -> None:
        self.bots_answered += 1


class MarkerInjector(Injector):
    """No-op actuator for declaratively applied faults (flash crowd).

    The fault's effect is baked into the build (the traffic envelope);
    this marker exists so the controller still emits the
    ``fault.inject``/``fault.clear`` events at the resolved times.
    """

    def inject(self) -> None:
        pass

    def clear(self) -> None:
        pass


def build_injector(
    spec: FaultSpec,
    hypervisor,
    deployment,
    rng_factory,
) -> Injector:
    """Construct the actuator for one resolved fault.

    ``hypervisor`` is the target's (already resolved by the testbed),
    ``deployment`` the web deployment (bot floods ride its send path)
    and ``rng_factory`` a named-stream factory (``streams.stream``).
    """
    magnitude = spec.effective_magnitude
    if spec.kind == CRASH:
        return ServerCrashInjector(hypervisor, magnitude)
    if spec.kind == DEGRADE_DISK:
        return DiskDegradeInjector(hypervisor.server, magnitude)
    if spec.kind == DEGRADE_NIC:
        return NicDegradeInjector(hypervisor.server, magnitude)
    if spec.kind == CAP_THEFT:
        return CapTheftInjector(
            hypervisor, spec.target or "web-vm", magnitude
        )
    if spec.kind == DOM0_SATURATE:
        return Dom0SaturateInjector(hypervisor, int(round(magnitude)))
    if spec.kind == BOT_FLOOD:
        return BotFloodInjector(
            deployment.sim,
            deployment,
            magnitude,
            rng_factory(f"faults.botflood.{spec.at_s:g}"),
        )
    if spec.kind == FLASH_CROWD:
        return MarkerInjector()
    raise ConfigurationError(  # pragma: no cover - guarded by FaultSpec
        f"unhandled fault kind {spec.kind!r}"
    )
