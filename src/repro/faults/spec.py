"""Declarative fault specifications.

A :class:`FaultSpec` is the plain-data description of one injected
fault: what breaks (``kind``), when (``at_s`` plus an optional
sha256-seed-derived jitter window), for how long (``duration_s``; 0
means "until the horizon"), where (``target`` server or domain; empty
means "the web server / web VM", resolved at build time) and how hard
(``magnitude``, with a per-kind default).  A :class:`FaultSchedule` is
the ordered tuple of faults one scenario injects.

Both are frozen, hashable dataclasses so a schedule can ride inside a
scenario's cache fingerprint and serialize through
:class:`~repro.config.ExperimentConfig`, and both round-trip through
the CLI token syntax ``repro run --faults`` accepts::

    crash@60                 server crash 60 s in, until the horizon
    degrade_disk@30:20       degraded disk at t=30 for 20 s
    cap_theft@40:30:0.25     steal the victim's cap down to 0.25 cores
    crash@60/cloud-2         explicit target (server or domain)
    crash@60+bot_flood@90    "+"-joined faults form one schedule

Timing discipline matches the suite's seed derivation: the *resolved*
injection time is ``at_s`` plus a jitter drawn from
``sha256(seed:index:kind)`` mapped into ``[0, jitter_s)`` — the same
hash-not-RNG recipe as :func:`repro.experiments.suite.derive_run_seed`,
so fault onsets are reproducible across processes and worker counts
and never touch the simulation's RNG streams.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

CRASH = "crash"
DEGRADE_DISK = "degrade_disk"
DEGRADE_NIC = "degrade_nic"
CAP_THEFT = "cap_theft"
DOM0_SATURATE = "dom0_saturate"
BOT_FLOOD = "bot_flood"
FLASH_CROWD = "flash_crowd"
FAULT_KINDS = (
    CRASH,
    DEGRADE_DISK,
    DEGRADE_NIC,
    CAP_THEFT,
    DOM0_SATURATE,
    BOT_FLOOD,
    FLASH_CROWD,
)

#: Per-kind meaning (and default) of ``magnitude``:
#:
#: * ``crash`` — residual fraction of the server's cores left to the
#:   credit scheduler (a crashed box is not *gone* from the fabric —
#:   its NIC still answers the evacuation — but compute collapses).
#: * ``degrade_disk`` / ``degrade_nic`` — slowdown factor on the
#:   backend (bandwidth divided, access latency multiplied).
#: * ``cap_theft`` — the cap (cores) the victim domain is left with.
#: * ``dom0_saturate`` — extra dom0 workers contending at weight 512.
#: * ``bot_flood`` — bot arrival rate in requests/s.
#: * ``flash_crowd`` — surge magnitude of the rate envelope.
DEFAULT_MAGNITUDE = {
    CRASH: 0.05,
    DEGRADE_DISK: 8.0,
    DEGRADE_NIC: 8.0,
    CAP_THEFT: 0.25,
    DOM0_SATURATE: 8.0,
    BOT_FLOOD: 150.0,
    FLASH_CROWD: 8.0,
}

#: Fault kinds whose ``target`` names a physical server (the rest
#: target a guest domain).
SERVER_TARGET_KINDS = (CRASH, DEGRADE_DISK, DEGRADE_NIC, DOM0_SATURATE)

#: Token separator between faults of one ``--faults`` schedule ("," is
#: taken by sweep-axis splitting).
SCHEDULE_SEPARATOR = "+"


def _derive_jitter(seed: int, index: int, spec: "FaultSpec") -> float:
    """Deterministic onset jitter in ``[0, spec.jitter_s)``.

    Same sha256 discipline as the suite's per-run seed derivation: a
    pure function of (seed, schedule position, kind), independent of
    every RNG stream the simulation draws from.
    """
    if spec.jitter_s <= 0.0:
        return 0.0
    digest = hashlib.sha256(
        f"{int(seed)}:{index}:{spec.kind}@{spec.at_s}".encode("utf-8")
    ).digest()
    unit = (int.from_bytes(digest[:8], "big") >> 11) / float(1 << 53)
    return unit * spec.jitter_s


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, onset, duration, target and magnitude."""

    kind: str
    at_s: float
    #: Seconds until the fault self-clears; 0 means it holds to the
    #: horizon (recovery, if any, must come from a controller).
    duration_s: float = 0.0
    #: Target server (crash/degrade/dom0) or domain (cap theft).
    #: Empty resolves at build time to the server hosting the web VM
    #: (server kinds) or to ``web-vm`` itself (cap theft).
    target: str = ""
    #: Kind-specific severity; 0 picks the kind's default.
    magnitude: float = 0.0
    #: Width of the sha256-seed-derived onset jitter window.
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError("fault at_s must be >= 0")
        if self.duration_s < 0:
            raise ConfigurationError("fault duration_s must be >= 0")
        if self.magnitude < 0:
            raise ConfigurationError("fault magnitude must be >= 0")
        if self.jitter_s < 0:
            raise ConfigurationError("fault jitter_s must be >= 0")
        if self.kind == CRASH and self.magnitude >= 1.0:
            raise ConfigurationError(
                "crash magnitude is the residual core fraction; "
                "need < 1"
            )
        if self.kind in (DEGRADE_DISK, DEGRADE_NIC) and (
            0.0 < self.magnitude < 1.0
        ):
            raise ConfigurationError(
                "degrade magnitude is a slowdown factor; need >= 1"
            )
        if self.kind == FLASH_CROWD and 0.0 < self.magnitude < 1.0:
            raise ConfigurationError(
                "flash-crowd magnitude is a surge factor; need >= 1"
            )

    @property
    def effective_magnitude(self) -> float:
        """The magnitude with the kind default applied."""
        if self.magnitude > 0:
            return self.magnitude
        return DEFAULT_MAGNITUDE[self.kind]

    @property
    def server_target(self) -> bool:
        """True when ``target`` names a server rather than a domain."""
        return self.kind in SERVER_TARGET_KINDS

    # -- CLI syntax --------------------------------------------------------

    def as_cli_token(self) -> str:
        """The ``kind@at[:duration[:magnitude]][/target]`` token."""
        token = f"{self.kind}@{self.at_s:g}"
        if self.duration_s or self.magnitude:
            token += f":{self.duration_s:g}"
        if self.magnitude:
            token += f":{self.magnitude:g}"
        if self.target:
            token += f"/{self.target}"
        return token

    @classmethod
    def from_cli_token(cls, text: str) -> "FaultSpec":
        """Parse one ``kind@at[:duration[:magnitude]][/target]`` token."""
        token = text.strip()
        target = ""
        if "/" in token:
            token, target = token.split("/", 1)
            target = target.strip()
        if "@" not in token:
            raise ConfigurationError(
                f"fault token {text!r} needs kind@time, e.g. crash@60"
            )
        kind, timing = token.split("@", 1)
        kind = kind.strip()
        parts = timing.split(":")
        if len(parts) > 3:
            raise ConfigurationError(
                f"fault token {text!r} has too many ':' fields "
                "(at[:duration[:magnitude]])"
            )
        try:
            numbers = [float(part) for part in parts]
        except ValueError:
            raise ConfigurationError(
                f"fault token {text!r} has non-numeric timing fields"
            )
        at_s = numbers[0]
        duration_s = numbers[1] if len(numbers) > 1 else 0.0
        magnitude = numbers[2] if len(numbers) > 2 else 0.0
        return cls(
            kind=kind,
            at_s=at_s,
            duration_s=duration_s,
            target=target,
            magnitude=magnitude,
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec keys: {sorted(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class ResolvedFault:
    """One fault with its seed-resolved inject/clear times."""

    spec: FaultSpec
    inject_at_s: float
    #: None when the fault holds to the horizon.
    clear_at_s: Optional[float]


@dataclass(frozen=True)
class FaultSchedule:
    """The ordered set of faults one scenario injects."""

    faults: Tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        if not self.faults:
            raise ConfigurationError(
                "a fault schedule needs at least one fault"
            )
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise ConfigurationError(
                    f"schedule entries must be FaultSpec, got "
                    f"{type(fault).__name__}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(fault.kind for fault in self.faults)

    def resolve(self, seed: int) -> Tuple[ResolvedFault, ...]:
        """Seed-resolved (inject, clear) times, sorted by onset.

        Pure plain-data function: the same (schedule, seed) resolves to
        bit-identical times in every process, which is what the suite's
        worker-count invariance rests on.
        """
        resolved = []
        for index, spec in enumerate(self.faults):
            inject = spec.at_s + _derive_jitter(seed, index, spec)
            clear = inject + spec.duration_s if spec.duration_s else None
            resolved.append(ResolvedFault(spec, inject, clear))
        resolved.sort(key=lambda r: (r.inject_at_s, r.spec.kind))
        return tuple(resolved)

    # -- CLI syntax --------------------------------------------------------

    def as_cli_string(self) -> str:
        """The ``--faults`` value this schedule corresponds to."""
        return SCHEDULE_SEPARATOR.join(
            fault.as_cli_token() for fault in self.faults
        )

    @classmethod
    def from_cli_string(cls, text: str) -> "FaultSchedule":
        """Parse a ``+``-joined list of fault tokens."""
        tokens = [
            token for token in text.split(SCHEDULE_SEPARATOR) if token.strip()
        ]
        if not tokens:
            raise ConfigurationError(
                f"--faults {text!r} names no faults"
            )
        return cls(
            faults=tuple(FaultSpec.from_cli_token(token) for token in tokens)
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault schedule must be an object, got "
                f"{type(data).__name__}"
            )
        unknown = set(data) - {"faults"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault schedule keys: {sorted(unknown)}"
            )
        return cls(
            faults=tuple(
                FaultSpec.from_dict(entry) for entry in data.get("faults", ())
            )
        )
