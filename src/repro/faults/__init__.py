"""Deterministic fault injection for the virtualized testbed.

The paper characterizes web workloads on *healthy* virtualized servers;
this package supplies the unhealthy half: seed-deterministic fault
schedules (server crash, degraded disk/NIC, noisy-neighbor cap theft,
dom0 saturation, traffic anomalies) injected into a running testbed
through the event loop, plus a recovery-scoring layer that grades how
the elastic and fleet controllers respond.

Layout mirrors :mod:`repro.control` / :mod:`repro.placement`:

* :mod:`repro.faults.spec` — :class:`FaultSpec`/:class:`FaultSchedule`,
  the frozen plain-data model with the ``--faults`` CLI token syntax
  and sha256-seed-derived onset timing.
* :mod:`repro.faults.injectors` — the per-kind inject/clear actuators
  over the hypervisor, hardware backends and traffic layers.
* :mod:`repro.faults.controller` — the priority-50 event-loop scheduler
  that fires the plan, emits ``fault.inject``/``fault.clear`` events
  and keeps the "faults" trace entity.
* :mod:`repro.faults.scoring` — detection/recovery/SLO-violation
  scoring plus $-cost deltas via :mod:`repro.planning.cost`.
"""

from repro.faults.spec import (  # noqa: F401
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    ResolvedFault,
)
from repro.faults.controller import FaultController  # noqa: F401
from repro.faults.scoring import (  # noqa: F401
    RecoveryScore,
    billing_delta,
    score_recovery,
    score_run,
)
