"""Split-driver I/O backends living in dom0.

In Xen's driver model a guest's block/network I/O traverses a frontend
driver in the guest and a backend driver in dom0, which performs the real
device access.  Two measurement-relevant consequences, both modelled:

* the *guest-visible* counters (what sysstat inside the VM reports, the
  left/middle panels of Figures 3-4) record the logical traffic, while
  the *physical* counters (dom0 panels) record amplified and, for disk
  writes, batched traffic;
* dom0 burns CPU per byte moved, which is the dominant contributor to
  the dom0 CPU series of Figure 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuPackage
from repro.hardware.disk import Disk, DiskRequest
from repro.hardware.network import NetworkInterface
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.virt.overhead import OverheadModel

DOM0_OWNER = "dom0"


class BlockBackend:
    """Dom0 block backend: batching, amplification, CPU accounting.

    Guest-visible byte counters are kept here per guest owner; physical
    bytes land on the :class:`~repro.hardware.disk.Disk` under the dom0
    owner because dom0 performs the actual access.
    """

    def __init__(
        self,
        sim: Simulator,
        disk: Disk,
        cpu: CpuPackage,
        overhead: OverheadModel,
    ) -> None:
        self.sim = sim
        self.disk = disk
        self.cpu = cpu
        self.overhead = overhead
        # Hot-path bindings: constants and the ledger charge method,
        # resolved once instead of per I/O.
        self._amplification = overhead.disk_amplification
        self._cycles_per_byte = overhead.disk_cycles_per_byte
        self._charge = cpu.ledger.charge
        self._vm_read: Dict[str, float] = {}
        self._vm_written: Dict[str, float] = {}
        self._pending_write_bytes = 0.0
        self._flusher: Optional[PeriodicProcess] = None
        if overhead.batch_writes:
            self._flusher = PeriodicProcess(
                sim,
                overhead.flush_interval_s,
                self._flush,
                name="blkback-flush",
            ).start()

    # -- guest-visible counters ---------------------------------------------

    def vm_bytes_read(self, owner: str) -> float:
        return self._vm_read.get(owner, 0.0)

    def vm_bytes_written(self, owner: str) -> float:
        return self._vm_written.get(owner, 0.0)

    def vm_total_bytes(self, owner: str) -> float:
        return self.vm_bytes_read(owner) + self.vm_bytes_written(owner)

    def seed_counters(
        self, owner: str, read_bytes: float, written_bytes: float
    ) -> None:
        """Raise the guest-visible counter baselines (domain migration).

        Counters are monotonic; seeding never lowers them, so a domain
        returning to a server it lived on before keeps the larger of
        the carried and resident values.
        """
        if read_bytes > self._vm_read.get(owner, 0.0):
            self._vm_read[owner] = float(read_bytes)
        if written_bytes > self._vm_written.get(owner, 0.0):
            self._vm_written[owner] = float(written_bytes)

    # -- I/O path ------------------------------------------------------------

    def read(self, now: float, owner: str, size_bytes: float) -> float:
        """Synchronous guest read; returns completion time.

        Reads cannot be deferred (the guest blocks on the data), so they
        go to the physical disk immediately, amplified by metadata reads.
        """
        counters = self._vm_read
        try:
            counters[owner] += size_bytes
        except KeyError:
            counters[owner] = size_bytes
        physical = size_bytes * self._amplification
        self._charge(DOM0_OWNER, physical * self._cycles_per_byte)
        request = DiskRequest(DOM0_OWNER, "read", physical)
        return self.disk.submit(now, request)

    def write(self, now: float, owner: str, size_bytes: float) -> float:
        """Guest write; returns the time the guest considers it done.

        With batching enabled the guest write completes as soon as the
        backend buffers it (like a page-cache write); the physical write
        happens at the next flush.  Without batching (ablation A2) it is
        forwarded immediately.
        """
        counters = self._vm_written
        try:
            counters[owner] += size_bytes
        except KeyError:
            counters[owner] = size_bytes
        physical = size_bytes * self._amplification
        self._charge(DOM0_OWNER, physical * self._cycles_per_byte)
        if self.overhead.batch_writes:
            self._pending_write_bytes += physical
            return now
        request = DiskRequest(DOM0_OWNER, "write", physical)
        return self.disk.submit(now, request)

    def dom0_write(self, now: float, size_bytes: float) -> float:
        """Dom0's own writes (its logs); never batched with guest I/O."""
        request = DiskRequest(DOM0_OWNER, "write", size_bytes)
        return self.disk.submit(now, request)

    def _flush(self, tick_time: float) -> None:
        if self._pending_write_bytes <= 0:
            return
        request = DiskRequest(DOM0_OWNER, "write", self._pending_write_bytes)
        self.disk.submit(tick_time, request)
        self._pending_write_bytes = 0.0

    def stop(self) -> None:
        """Disarm the flusher (end of simulation)."""
        if self._flusher is not None:
            self._flusher.stop()


class NetBackend:
    """Dom0 network backend: bridging, amplification, CPU accounting."""

    def __init__(
        self,
        sim: Simulator,
        nic: NetworkInterface,
        cpu: CpuPackage,
        overhead: OverheadModel,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.cpu = cpu
        self.overhead = overhead
        # Hot-path bindings, resolved once instead of per transfer.
        self._amplification = overhead.net_amplification
        self._cycles_per_byte = overhead.net_cycles_per_byte
        self._charge = cpu.ledger.charge
        self._vm_rx: Dict[str, float] = {}
        self._vm_tx: Dict[str, float] = {}

    # -- guest-visible counters ---------------------------------------------

    def vm_bytes_received(self, owner: str) -> float:
        return self._vm_rx.get(owner, 0.0)

    def vm_bytes_transmitted(self, owner: str) -> float:
        return self._vm_tx.get(owner, 0.0)

    def vm_total_bytes(self, owner: str) -> float:
        return self.vm_bytes_received(owner) + self.vm_bytes_transmitted(owner)

    def seed_counters(
        self, owner: str, rx_bytes: float, tx_bytes: float
    ) -> None:
        """Raise the guest-visible counter baselines (domain migration)."""
        if rx_bytes > self._vm_rx.get(owner, 0.0):
            self._vm_rx[owner] = float(rx_bytes)
        if tx_bytes > self._vm_tx.get(owner, 0.0):
            self._vm_tx[owner] = float(tx_bytes)

    # -- transfer path --------------------------------------------------------

    def receive(self, now: float, owner: str, size_bytes: float) -> float:
        """Ingress to a guest through the bridge; returns completion time."""
        if size_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        counters = self._vm_rx
        try:
            counters[owner] += size_bytes
        except KeyError:
            counters[owner] = size_bytes
        physical = size_bytes * self._amplification
        self._charge(DOM0_OWNER, physical * self._cycles_per_byte)
        return self.nic.receive(now, DOM0_OWNER, physical)

    def transmit(self, now: float, owner: str, size_bytes: float) -> float:
        """Egress from a guest through the bridge; returns completion time."""
        if size_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        counters = self._vm_tx
        try:
            counters[owner] += size_bytes
        except KeyError:
            counters[owner] = size_bytes
        physical = size_bytes * self._amplification
        self._charge(DOM0_OWNER, physical * self._cycles_per_byte)
        return self.nic.transmit(now, DOM0_OWNER, physical)
