"""Xen domains: dom0 (the privileged control domain) and guest domUs."""

from __future__ import annotations

import enum
from typing import List

from repro.errors import ConfigurationError
from repro.units import GB
from repro.virt.vcpu import Vcpu


class DomainKind(enum.Enum):
    """Domain privilege class."""

    DOM0 = "dom0"
    GUEST = "guest"


class Domain:
    """A Xen domain: VCPUs, a memory reservation, scheduler parameters.

    Attributes:
        weight: credit-scheduler weight (proportional share).
        cap_cores: hard cap in physical cores (0 disables the cap, like
            Xen's ``cap=0``).
        active_workers: a demand gauge maintained by the queueing stations
            running inside the domain; the scheduler reads it to know how
            many cores the domain could use right now.
    """

    def __init__(
        self,
        name: str,
        kind: DomainKind = DomainKind.GUEST,
        vcpu_count: int = 2,
        memory_bytes: float = 2 * GB,
        weight: float = 256.0,
        cap_cores: float = 0.0,
    ) -> None:
        if vcpu_count < 1:
            raise ConfigurationError("a domain needs at least one VCPU")
        if memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        if cap_cores < 0:
            raise ConfigurationError("cap_cores must be >= 0 (0 = uncapped)")
        self.name = name
        self.kind = kind
        self.vcpus: List[Vcpu] = [Vcpu(i) for i in range(vcpu_count)]
        self.memory_bytes = float(memory_bytes)
        self.weight = float(weight)
        self.cap_cores = float(cap_cores)
        self.active_workers = 0
        #: Ledger owner key used by hardware accounting.  A plain
        #: attribute (name and kind are fixed at construction) because
        #: every I/O and CPU charge reads it.
        self.owner = "dom0" if kind is DomainKind.DOM0 else f"vm:{name}"

    @property
    def online_vcpus(self) -> int:
        return sum(1 for vcpu in self.vcpus if vcpu.online)

    def set_online_vcpus(self, count: int) -> None:
        """Hotplug/unplug: bring exactly ``count`` VCPUs online.

        Grows the VCPU list when ``count`` exceeds the assigned VCPUs
        (Xen hotplugs against ``maxvcpus``); surplus VCPUs go offline.
        In-flight services are not re-scaled — like the scheduler
        allocation, the VCPU count is sampled at service start.
        """
        if count < 1:
            raise ConfigurationError("a domain needs at least one online VCPU")
        while len(self.vcpus) < count:
            self.vcpus.append(Vcpu(len(self.vcpus), online=False))
        for i, vcpu in enumerate(self.vcpus):
            vcpu.online = i < count

    def demand_cores(self) -> float:
        """Cores this domain could use right now.

        Bounded by its online VCPUs (a 2-VCPU domain can never use more
        than 2 cores) and by its current active workers.
        """
        return float(min(self.online_vcpus, max(0, self.active_workers)))

    def worker_started(self) -> None:
        """A station began serving a job inside this domain."""
        self.active_workers += 1

    def worker_finished(self) -> None:
        """A station finished serving a job inside this domain."""
        if self.active_workers <= 0:
            raise ConfigurationError(
                f"worker_finished with no active workers in {self.name!r}"
            )
        self.active_workers -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Domain {self.name} {self.kind.value} vcpus={len(self.vcpus)} "
            f"mem={self.memory_bytes / GB:.1f}GB w={self.weight:g}>"
        )
