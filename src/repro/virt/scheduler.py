"""Credit scheduler: weighted proportional-share allocation of cores.

Implements the allocation semantics of Xen's credit scheduler at epoch
granularity: each domain demands up to ``min(online VCPUs, runnable
workers)`` cores; cores are divided in proportion to weights, subject to
per-domain caps, with unused share redistributed (progressive filling).
The result is work-conserving: if aggregate demand fits in the machine,
every domain receives its full demand.

The simulator recomputes the allocation every scheduler epoch and the
queueing stations sample the resulting per-domain speed fraction at
service start (documented approximation: in-flight services are not
re-scaled mid-service; at the paper's operating point — far from CPU
saturation — allocations are almost always demand-limited anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.errors import ConfigurationError
from repro.virt.domain import Domain

#: Iterations of progressive filling; enough for float convergence with
#: any realistic domain count.
_MAX_FILL_ROUNDS = 64


@dataclass
class SchedulerDecision:
    """Outcome of one allocation epoch."""

    granted_cores: Dict[str, float] = field(default_factory=dict)
    demand_cores: Dict[str, float] = field(default_factory=dict)
    total_cores: float = 0.0

    def speed_fraction(self, domain_name: str) -> float:
        """Fraction of demanded speed the domain received (1.0 when idle).

        A domain that got everything it asked for runs at full speed; one
        that got half its demand runs each worker at half speed.
        """
        demand = self.demand_cores.get(domain_name, 0.0)
        if demand <= 0:
            return 1.0
        granted = self.granted_cores.get(domain_name, 0.0)
        return max(min(granted / demand, 1.0), 1e-9)


class CreditScheduler:
    """Weighted, capped, work-conserving proportional share."""

    def __init__(self, total_cores: float) -> None:
        if total_cores <= 0:
            raise ConfigurationError("total_cores must be positive")
        self.total_cores = float(total_cores)
        self.last_decision = SchedulerDecision(total_cores=self.total_cores)
        self.epochs = 0
        # name -> speed fraction of the last epoch; fractions only change
        # at epoch boundaries but are read at every service start.
        self._fractions: Dict[str, float] = {}

    def allocate(self, domains: Iterable[Domain]) -> SchedulerDecision:
        """Allocate cores to ``domains`` for the next epoch."""
        domain_list = list(domains)
        demands = {d.name: d.demand_cores() for d in domain_list}
        limits = {
            d.name: min(
                demands[d.name],
                d.cap_cores if d.cap_cores > 0 else self.total_cores,
            )
            for d in domain_list
        }
        weights = {d.name: d.weight for d in domain_list}
        granted = {d.name: 0.0 for d in domain_list}

        remaining = self.total_cores
        unsatisfied = {name for name, lim in limits.items() if lim > 0}
        for _ in range(_MAX_FILL_ROUNDS):
            if remaining <= 1e-12 or not unsatisfied:
                break
            weight_sum = sum(weights[name] for name in unsatisfied)
            if weight_sum <= 0:
                break
            progressed = False
            share_unit = remaining / weight_sum
            for name in sorted(unsatisfied):
                head_room = limits[name] - granted[name]
                give = min(head_room, share_unit * weights[name])
                if give > 0:
                    granted[name] += give
                    remaining -= give
                    progressed = True
            unsatisfied = {
                name
                for name in unsatisfied
                if limits[name] - granted[name] > 1e-12
            }
            if not progressed:
                break

        decision = SchedulerDecision(
            granted_cores=granted,
            demand_cores=demands,
            total_cores=self.total_cores,
        )
        self.last_decision = decision
        self._fractions = {
            name: decision.speed_fraction(name) for name in demands
        }
        self.epochs += 1
        return decision

    def speed_fraction(self, domain_name: str) -> float:
        """Speed fraction from the most recent epoch."""
        fraction = self._fractions.get(domain_name)
        if fraction is None:
            return self.last_decision.speed_fraction(domain_name)
        return fraction
