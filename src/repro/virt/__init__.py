"""Xen-like virtualization layer (substrate S3).

Models the parts of Xen 3.1.2 that shape the paper's measurements:

* **domains** (dom0 plus guest domUs) with VCPUs and memory reservations,
* the **credit scheduler** allocating physical cores by weight/cap,
* the **split-driver I/O path**: guest block/network I/O is proxied by
  backend drivers in dom0, which batches disk writes (smoothing the
  physical stream), amplifies disk traffic (journaling, metadata), and
  burns dom0 CPU per byte moved — the mechanism behind the paper's
  finding that dom0 "performs additional work other than the workload of
  RUBiS servers",
* an **overhead model** collecting the accounting constants.
"""

from repro.virt.vcpu import Vcpu
from repro.virt.domain import Domain, DomainKind
from repro.virt.scheduler import CreditScheduler, SchedulerDecision
from repro.virt.overhead import OverheadModel
from repro.virt.io_backend import BlockBackend, NetBackend
from repro.virt.hypervisor import Hypervisor

__all__ = [
    "Vcpu",
    "Domain",
    "DomainKind",
    "CreditScheduler",
    "SchedulerDecision",
    "OverheadModel",
    "BlockBackend",
    "NetBackend",
    "Hypervisor",
]
