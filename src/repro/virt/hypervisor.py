"""The hypervisor facade: domains, scheduling epochs, I/O, memory.

One :class:`Hypervisor` runs per virtualized physical server.  It owns

* the domain table (dom0 is created automatically),
* the credit scheduler, re-run every epoch by a periodic process,
* the block/net backends in dom0,
* dom0's own housekeeping (base CPU burn, memory model, log writes),

and exposes the execution interface the application tiers use:
``cpu_time`` / ``charge_vm_cycles`` / ``disk_read`` / ``disk_write`` /
``net_receive`` / ``net_transmit`` / ``set_vm_memory``.

It also exposes the *runtime actuators* the elastic-control subsystem
(:mod:`repro.control`) drives mid-run: VCPU hotplug/unplug
(:meth:`set_vcpus`), credit-scheduler cap and weight adjustment
(:meth:`set_cap_cores` / :meth:`set_weight`) and memory ballooning
(:meth:`balloon`).  Every effective actuation charges dom0 the
toolstack cost and emits a control-action event to the registered
hooks, so resizing decisions are first-class observable events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.hardware.server import PhysicalServer
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.units import GB
from repro.virt.domain import Domain, DomainKind
from repro.virt.io_backend import DOM0_OWNER, BlockBackend, NetBackend
from repro.virt.overhead import OverheadModel
from repro.virt.scheduler import CreditScheduler

#: Xen's credit scheduler runs accounting every 30 ms; we use a coarser
#: epoch because allocations only change with station occupancy.
DEFAULT_EPOCH_S = 0.1

#: Dom0 housekeeping cadence (sysstat cron, log flush, memory update).
HOUSEKEEPING_INTERVAL_S = 1.0


@dataclass
class DomainState:
    """Serialized domain state carried across a live migration.

    The :class:`~repro.virt.domain.Domain` object itself migrates (its
    VCPUs, reservation, scheduler parameters and worker gauge travel
    with it); this record carries the *accounting* the destination
    hypervisor must restore so guest-visible counters stay monotonic —
    exactly like a real migration preserves ``/proc`` counters because
    the whole kernel image moves.
    """

    domain: Domain
    cpu_cycles: float
    mem_used_bytes: float
    disk_read_bytes: float
    disk_write_bytes: float
    net_rx_bytes: float
    net_tx_bytes: float


class Hypervisor:
    """Xen-like hypervisor bound to one physical server."""

    def __init__(
        self,
        sim: Simulator,
        server: PhysicalServer,
        overhead: Optional[OverheadModel] = None,
        epoch_s: float = DEFAULT_EPOCH_S,
        dom0_vcpus: int = 2,
        dom0_memory_bytes: Optional[float] = None,
        dom0_weight: float = 512.0,
        vcpu_contention: bool = False,
    ) -> None:
        self.sim = sim
        self.server = server
        self.overhead = overhead or OverheadModel()
        #: Model refinement used by elasticity experiments: when True,
        #: workers runnable beyond a domain's online VCPUs time-share
        #: them (service slows by ``online_vcpus / active_workers``).
        #: Off by default — the paper-calibrated baseline never
        #: materially exceeds its VCPUs, and enabling it globally would
        #: perturb the figure fingerprints (it needs a deliberate
        #: re-baselining, like the PR-1 batching ideas).
        self.vcpu_contention = bool(vcpu_contention)
        #: Control-action hooks (see :meth:`add_control_hook`) and the
        #: total count of effective actuations.
        self._control_hooks: List[Callable[[dict], None]] = []
        self.control_actions = 0
        self.scheduler = CreditScheduler(server.spec.cores)
        self.epoch_s = float(epoch_s)
        #: Per-domain CPU ready (steal) time in core-seconds — see
        #: :meth:`cpu_ready_seconds`.
        self._cpu_ready_s: Dict[str, float] = {}
        #: Per-domain billed capacity (core-seconds of *reserved* CPU
        #: and GB-seconds of reserved memory) — see :meth:`billing_report`.
        #: Reservations are piecewise-constant between control actions,
        #: so the bill integrates lazily at actuation boundaries and at
        #: report time (O(actions), nothing on the epoch hot path).
        self._billed_core_s: Dict[str, float] = {}
        self._billed_gb_s: Dict[str, float] = {}
        self._bill_marks: Dict[str, float] = {}
        self._domains: Dict[str, Domain] = {}
        self.dom0 = Domain(
            "Domain-0",
            kind=DomainKind.DOM0,
            vcpu_count=dom0_vcpus,
            memory_bytes=dom0_memory_bytes or 4 * GB,
            weight=dom0_weight,
        )
        self._domains[self.dom0.name] = self.dom0
        self.block_backend = BlockBackend(
            sim, server.disk, server.cpu, self.overhead
        )
        self.net_backend = NetBackend(sim, server.nic, server.cpu, self.overhead)
        self.requests_accounted = 0
        self._epoch_process = PeriodicProcess(
            sim, epoch_s, self._run_epoch, name="credit-epoch"
        ).start()
        self._housekeeping = PeriodicProcess(
            sim, HOUSEKEEPING_INTERVAL_S, self._run_housekeeping,
            name="dom0-housekeeping",
        ).start()
        self._update_dom0_memory()

    # -- domain management ---------------------------------------------------

    def create_domain(
        self,
        name: str,
        vcpu_count: int = 2,
        memory_bytes: float = 2 * GB,
        weight: float = 256.0,
        cap_cores: float = 0.0,
    ) -> Domain:
        """Create a guest domain (a VM)."""
        if name in self._domains:
            raise ConfigurationError(f"duplicate domain name {name!r}")
        domain = Domain(
            name,
            kind=DomainKind.GUEST,
            vcpu_count=vcpu_count,
            memory_bytes=memory_bytes,
            weight=weight,
            cap_cores=cap_cores,
        )
        self._domains[name] = domain
        self._bill_marks[name] = self.sim.now
        return domain

    def domain(self, name: str) -> Domain:
        if name not in self._domains:
            raise ConfigurationError(f"unknown domain {name!r}")
        return self._domains[name]

    def has_domain(self, name: str) -> bool:
        return name in self._domains

    def detach_domain(self, name: str) -> DomainState:
        """Remove a guest from this hypervisor, serializing its state.

        The final step of a live migration's stop-and-copy phase: the
        domain leaves the domain table (the credit scheduler stops
        granting it cores at the next epoch), its memory reservation is
        released on this server, and its cumulative guest-visible
        counters are captured so :meth:`attach_domain` can restore them
        on the destination.  Dom0 is not detachable.
        """
        domain = self.domain(name)
        if domain.kind is DomainKind.DOM0:
            raise ConfigurationError("dom0 cannot be detached")
        owner = domain.owner
        state = DomainState(
            domain=domain,
            cpu_cycles=self.server.cpu.ledger.total(owner),
            mem_used_bytes=self.server.memory.usage(owner),
            disk_read_bytes=self.block_backend.vm_bytes_read(owner),
            disk_write_bytes=self.block_backend.vm_bytes_written(owner),
            net_rx_bytes=self.net_backend.vm_bytes_received(owner),
            net_tx_bytes=self.net_backend.vm_bytes_transmitted(owner),
        )
        self._accrue_billing(domain)
        del self._domains[name]
        del self._bill_marks[name]
        self.server.memory.set_usage(owner, 0.0)
        self._update_dom0_memory()
        return state

    def attach_domain(self, state: DomainState) -> Domain:
        """Adopt a migrated guest, restoring its serialized accounting.

        Counter baselines are seeded (not zeroed) so the monitoring
        probes — which first-difference monotonic counters — observe a
        continuous series across the migration, like sysstat inside the
        guest would.
        """
        domain = state.domain
        if domain.name in self._domains:
            raise ConfigurationError(
                f"duplicate domain name {domain.name!r}"
            )
        self._domains[domain.name] = domain
        self._bill_marks[domain.name] = self.sim.now
        owner = domain.owner
        ledger = self.server.cpu.ledger
        already = ledger.total(owner)
        if state.cpu_cycles > already:
            ledger.charge(owner, state.cpu_cycles - already)
        self.block_backend.seed_counters(
            owner, state.disk_read_bytes, state.disk_write_bytes
        )
        self.net_backend.seed_counters(
            owner, state.net_rx_bytes, state.net_tx_bytes
        )
        self.set_vm_memory(domain, state.mem_used_bytes)
        return domain

    def domains(self):
        return list(self._domains.values())

    def guest_domains(self):
        return [d for d in self._domains.values() if d.kind is DomainKind.GUEST]

    # -- CPU execution interface ----------------------------------------------

    def cpu_time(self, domain: Domain, cycles: float) -> float:
        """Wall time for ``cycles`` of guest work at the current allocation."""
        fraction = self.scheduler.speed_fraction(domain.name)
        return self.server.cpu.service_time(cycles, fraction)

    def charge_vm_cycles(self, domain: Domain, cycles: float) -> None:
        """Account guest-visible cycles to the domain's ledger owner."""
        self.server.cpu.charge(domain.owner, cycles)

    def account_request(self, domain: Domain, hypercall_scale: float = 1.0) -> None:
        """Charge dom0 for the event channels/hypercalls of one request."""
        self.requests_accounted += 1
        self.server.cpu.charge(
            DOM0_OWNER,
            self.overhead.hypercall_cycles_per_request * hypercall_scale,
        )

    def account_commit(self, domain: Domain) -> None:
        """Charge dom0 for one guest database commit (barrier + fsync)."""
        self.server.cpu.charge(DOM0_OWNER, self.overhead.commit_cycles)

    # -- I/O interface ----------------------------------------------------------

    def disk_read(self, domain: Domain, size_bytes: float) -> float:
        """Synchronous guest read; returns completion time."""
        return self.block_backend.read(self.sim.now, domain.owner, size_bytes)

    def disk_write(self, domain: Domain, size_bytes: float) -> float:
        """Guest write (batched by the backend); returns completion time."""
        return self.block_backend.write(self.sim.now, domain.owner, size_bytes)

    def net_receive(self, domain: Domain, size_bytes: float) -> float:
        return self.net_backend.receive(self.sim.now, domain.owner, size_bytes)

    def net_transmit(self, domain: Domain, size_bytes: float) -> float:
        return self.net_backend.transmit(self.sim.now, domain.owner, size_bytes)

    # -- memory interface ---------------------------------------------------------

    def set_vm_memory(self, domain: Domain, used_bytes: float) -> None:
        """Set a guest's used-memory level (as its own sysstat would see)."""
        if used_bytes > domain.memory_bytes:
            used_bytes = domain.memory_bytes  # guest cannot exceed its VM size
        self.server.memory.set_usage(domain.owner, used_bytes)
        self._update_dom0_memory()

    def vm_memory_used(self, domain: Domain) -> float:
        return self.server.memory.usage(domain.owner)

    def dom0_memory_used(self) -> float:
        return self.server.memory.usage(DOM0_OWNER)

    def _update_dom0_memory(self) -> None:
        guest_used = sum(
            self.server.memory.usage(d.owner) for d in self.guest_domains()
        )
        dom0_used = (
            self.overhead.dom0_base_memory_bytes
            + self.overhead.dom0_memory_per_vm_byte * guest_used
        )
        self.server.memory.set_usage(DOM0_OWNER, dom0_used)

    # -- runtime control actuators -------------------------------------------

    def add_control_hook(self, hook: Callable[[dict], None]) -> None:
        """Register a callback invoked with every control-action event.

        The event is a plain dict (``time_s``, ``domain``, ``kind``,
        ``old``, ``new``) so consumers need no import of this layer.
        """
        self._control_hooks.append(hook)

    def emit_event(self, event: dict) -> None:
        """Broadcast an externally-built event to the control hooks.

        Used by actuators that live outside this class (e.g. the live
        migration model) whose events carry richer payloads than the
        ``old``/``new`` pair of the built-in actuators.  No dom0 cost
        is charged here — such actuators account their own costs.
        """
        if self._control_hooks:
            for hook in self._control_hooks:
                hook(event)

    def _emit_control(
        self, domain: Domain, kind: str, old: float, new: float
    ) -> None:
        self.control_actions += 1
        self.server.cpu.charge(
            DOM0_OWNER, self.overhead.control_action_cycles
        )
        if self._control_hooks:
            event = {
                "time_s": self.sim.now,
                "domain": domain.name,
                "kind": kind,
                "old": float(old),
                "new": float(new),
            }
            for hook in self._control_hooks:
                hook(event)

    def set_vcpus(self, domain: Domain, count: int) -> None:
        """Hotplug/unplug VCPUs so exactly ``count`` are online.

        No-op (no event, no dom0 charge) when the domain already runs
        ``count`` VCPUs.  The new count takes effect at the next service
        start / scheduler epoch, like every other allocation change.
        """
        old = domain.online_vcpus
        if count == old:
            return
        self._accrue_billing(domain)
        domain.set_online_vcpus(count)
        self._emit_control(domain, "set_vcpus", old, count)

    def set_cap_cores(self, domain: Domain, cap_cores: float) -> None:
        """Adjust the credit-scheduler cap (0 = uncapped, like Xen)."""
        if cap_cores < 0:
            raise ConfigurationError("cap_cores must be >= 0 (0 = uncapped)")
        old = domain.cap_cores
        if cap_cores == old:
            return
        self._accrue_billing(domain)
        domain.cap_cores = float(cap_cores)
        self._emit_control(domain, "set_cap", old, cap_cores)

    def set_weight(self, domain: Domain, weight: float) -> None:
        """Adjust the credit-scheduler proportional-share weight."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        old = domain.weight
        if weight == old:
            return
        domain.weight = float(weight)
        self._emit_control(domain, "set_weight", old, weight)

    def balloon(self, domain: Domain, memory_bytes: float) -> None:
        """Balloon a guest's memory reservation up or down.

        Ballooning below the current used level forces the guest to
        release pages: usage is clamped to the new reservation (and
        dom0's per-VM bookkeeping follows).
        """
        if memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        old = domain.memory_bytes
        if memory_bytes == old:
            return
        self._accrue_billing(domain)
        domain.memory_bytes = float(memory_bytes)
        used = self.server.memory.usage(domain.owner)
        if used > domain.memory_bytes:
            self.set_vm_memory(domain, domain.memory_bytes)
        self._emit_control(domain, "balloon", old, memory_bytes)

    # -- CPU ready / steal accounting ---------------------------------------

    def cpu_ready_seconds(self, domain_name: str) -> float:
        """Cumulative CPU ready (steal) time of a domain, core-seconds.

        Epoch-level processor-sharing model of Xen's per-VCPU ready
        time: when the aggregate runnable demand exceeds the physical
        cores, runnable VCPUs rotate over the cores and each spends
        ``1 - cores/total_demand`` of the epoch waiting for a
        timeslice, so a domain accrues ``epoch * demand * (1 -
        cores/total_demand)``.  Summed over domains this equals the
        epoch's total unserved demand ``(total_demand - cores) *
        epoch`` — each wait is counted exactly once.  Zero whenever
        the machine is not overcommitted, which makes the metric a
        direct consolidation-interference signal: a single-tenant run
        never accrues it.
        """
        return self._cpu_ready_s.get(domain_name, 0.0)

    def cpu_ready_report(self) -> Dict[str, float]:
        """Per-domain cumulative ready time (plain data, for reports)."""
        return dict(self._cpu_ready_s)

    # -- capacity billing ----------------------------------------------------

    def _accrue_billing(self, domain: Domain) -> None:
        """Integrate the domain's reservation up to now (lazy billing).

        Called at every boundary where the reservation changes — VCPU
        hotplug, cap adjustment, balloon, attach/detach — and at report
        time, so the bill is exact for a piecewise-constant reservation
        without any per-epoch work on the hot path.
        """
        if domain.kind is DomainKind.DOM0:
            return
        name = domain.name
        now = self.sim.now
        last = self._bill_marks.get(name, 0.0)
        self._bill_marks[name] = now
        dt = now - last
        if dt <= 0:
            return
        reserved = float(domain.online_vcpus)
        if 0 < domain.cap_cores < reserved:
            reserved = domain.cap_cores
        self._billed_core_s[name] = (
            self._billed_core_s.get(name, 0.0) + reserved * dt
        )
        self._billed_gb_s[name] = (
            self._billed_gb_s.get(name, 0.0) + domain.memory_bytes / GB * dt
        )

    def billing_report(self) -> Dict[str, Dict[str, float]]:
        """Per-domain billed capacity: what a cloud invoice would show.

        Billing follows the *reservation*, not the usage — a guest pays
        for ``min(online VCPUs, cap)`` cores and its memory reservation
        for every second it exists on this server, exactly the quantity
        elastic controllers shrink to save money.
        """
        for domain in self._domains.values():
            self._accrue_billing(domain)
        return {
            name: {
                "capacity_core_s": core_s,
                "memory_gb_s": self._billed_gb_s.get(name, 0.0),
            }
            for name, core_s in sorted(self._billed_core_s.items())
        }

    # -- periodic work ----------------------------------------------------------

    def _run_epoch(self, tick_time: float) -> None:
        decision = self.scheduler.allocate(self._domains.values())
        demands = decision.demand_cores
        runnable = sum(1 for d in demands.values() if d > 0)
        if runnable:
            self.server.cpu.charge(
                DOM0_OWNER,
                self.overhead.sched_cycles_per_epoch_per_domain * runnable,
            )
            total_demand = sum(demands.values())
            if total_demand > self.scheduler.total_cores + 1e-12:
                wait_fraction = 1.0 - self.scheduler.total_cores / total_demand
                ready = self._cpu_ready_s
                accrual = self.epoch_s * wait_fraction
                for name, demand in demands.items():
                    if demand <= 0:
                        continue
                    ready[name] = ready.get(name, 0.0) + accrual * demand

    def _run_housekeeping(self, tick_time: float) -> None:
        self.server.cpu.charge(
            DOM0_OWNER,
            self.overhead.dom0_base_cycles_per_s * HOUSEKEEPING_INTERVAL_S,
        )
        log_bytes = self.overhead.dom0_log_bytes_per_s * HOUSEKEEPING_INTERVAL_S
        if log_bytes > 0:
            self.block_backend.dom0_write(tick_time, log_bytes)
        self._update_dom0_memory()

    def shutdown(self) -> None:
        """Disarm periodic processes (end of an experiment)."""
        self._epoch_process.stop()
        self._housekeeping.stop()
        self.block_backend.stop()
