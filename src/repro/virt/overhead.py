"""Virtualization overhead accounting constants.

Every constant is a *mechanistic* parameter: dom0's measured load is not
scripted, it emerges from traffic flowing through these models.  The
calibration module (``repro.experiments.calibration``) derives the values
from the paper's published ratios; the defaults here are those calibrated
values so the layer behaves realistically when used stand-alone.

How the dom0 series of the paper's figures emerge:

* **dom0 CPU** = base housekeeping + scheduler epochs + per-request
  hypercalls + per-byte I/O proxy work (network dominates for RUBiS).
* **dom0 RAM** = dom0 kernel/userland footprint + per-VM bookkeeping
  (shadow/p2m structures proportional to VM usage) + I/O buffer cache.
* **dom0 disk** = amplified VM traffic (journaling + metadata in the
  backing store) + dom0's own logging.
* **dom0 network** = proxied VM traffic with bridge/header overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MB


@dataclass
class OverheadModel:
    """Accounting constants for the virtualization layer."""

    # -- dom0 CPU ----------------------------------------------------------
    #: Cycles/s dom0 burns regardless of load (kernel, monitors, xenstore).
    dom0_base_cycles_per_s: float = 5.0e6
    #: Cycles charged to dom0 per scheduler epoch per runnable domain.
    sched_cycles_per_epoch_per_domain: float = 25_000.0
    #: Cycles charged to dom0 per guest request (event channel + hypercalls).
    hypercall_cycles_per_request: float = 6_000.0
    #: Dom0 cycles per database commit: the journal barrier forces dom0
    #: to drain the block ring, issue a FLUSH/FUA to the device and unmap
    #: grants — roughly 100 us of dom0 work at 2.8 GHz.  This is the
    #: mechanism behind finding Q5: bidding (which commits) costs dom0
    #: more physical work than browsing even though its guest-visible
    #: demand is lower.
    commit_cycles: float = 300_000.0
    #: Dom0 cycles per byte proxied through the network backend.
    net_cycles_per_byte: float = 5.5
    #: Dom0 cycles per byte proxied through the block backend.
    disk_cycles_per_byte: float = 7.0

    # -- dom0 memory -------------------------------------------------------
    #: Dom0 kernel + userland resident set.
    dom0_base_memory_bytes: float = 800.0 * MB
    #: Dom0 bookkeeping bytes per byte of guest used memory.
    dom0_memory_per_vm_byte: float = 0.70

    # -- I/O amplification -------------------------------------------------
    #: Physical disk bytes per VM-visible disk byte (journal + metadata).
    disk_amplification: float = 2.06
    #: Physical NIC bytes per VM-visible network byte (bridge + headers).
    net_amplification: float = 1.02
    #: Dom0's own logging traffic, bytes/s written to disk.
    dom0_log_bytes_per_s: float = 15_000.0

    # -- elastic control --------------------------------------------------
    #: Dom0 cycles per control action (xl vcpu-set / sched-credit /
    #: mem-set round trip through xenstore and the toolstack).
    control_action_cycles: float = 50_000.0

    # -- block backend batching --------------------------------------------
    #: Seconds between backend flushes of buffered guest writes.  Batching
    #: is the mechanism for the paper's observation that disk traffic has
    #: *lower* variance in the virtualized environment (Q4).
    flush_interval_s: float = 1.0
    #: If False the backend forwards each write immediately (ablation A2).
    batch_writes: bool = True

    def __post_init__(self) -> None:
        if self.disk_amplification < 1.0 or self.net_amplification < 1.0:
            raise ConfigurationError("amplification factors must be >= 1")
        if self.flush_interval_s <= 0:
            raise ConfigurationError("flush_interval_s must be positive")
        for name in (
            "dom0_base_cycles_per_s",
            "sched_cycles_per_epoch_per_domain",
            "hypercall_cycles_per_request",
            "commit_cycles",
            "net_cycles_per_byte",
            "disk_cycles_per_byte",
            "dom0_base_memory_bytes",
            "dom0_memory_per_vm_byte",
            "dom0_log_bytes_per_s",
            "control_action_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
