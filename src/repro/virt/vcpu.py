"""Virtual CPU: the schedulable unit the credit scheduler allocates."""

from __future__ import annotations

from repro.errors import ConfigurationError


class Vcpu:
    """One virtual CPU belonging to a domain.

    The paper's testbed assigns up to two VCPUs per VM, "among which the
    number of active ones depends on applications"; :attr:`online`
    captures that an assigned VCPU may be offline.
    """

    def __init__(self, index: int, online: bool = True) -> None:
        if index < 0:
            raise ConfigurationError("vcpu index must be non-negative")
        self.index = int(index)
        self.online = bool(online)

    def set_online(self, online: bool) -> None:
        self.online = bool(online)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "online" if self.online else "offline"
        return f"<Vcpu {self.index} {state}>"
