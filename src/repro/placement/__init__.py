"""Multi-server placement and live migration (the fleet layer).

Everything below this package turns the simulator from "one
hypervisor" into "a fleet of virtualized servers":

* :mod:`~repro.placement.spec` — declarative vocabulary:
  :class:`VmRequest` (what a VM needs), :class:`FleetSpec` (how the
  fleet controller watches and migrates), and the placement-policy
  tokens;
* :mod:`~repro.placement.policies` — pluggable bin-packing policies
  (first-fit, best-fit, load-balancing, priority-aware gray-box
  packing) over per-server :class:`ServerLoad` states;
* :mod:`~repro.placement.engine` — the :class:`PlacementEngine`: one
  :class:`~repro.virt.hypervisor.Hypervisor` + dom0 per
  :class:`~repro.hardware.server.PhysicalServer`, VM-to-server
  assignment and capacity bookkeeping;
* :mod:`~repro.placement.migration` — the :class:`LiveMigration`
  actuator: pre-copy rounds with a working-set-derived dirty-page
  rate, migration traffic through the physical NICs and both dom0s,
  and a stop-and-copy downtime window;
* :mod:`~repro.placement.fleet` — the :class:`FleetController`:
  watches per-server ready/steal and web p95 signals and triggers
  rebalancing migrations mid-run;
* :mod:`~repro.placement.admission` — closed-form pre-copy forecasts
  and migration admission control (migrate only when the move
  converges and relieves enough, soon enough).
"""

from repro.placement.admission import (
    AdmissionDecision,
    MigrationForecast,
    admit_migration,
    forecast_migration,
)
from repro.placement.engine import PlacementEngine
from repro.placement.fleet import FleetController
from repro.placement.migration import LiveMigration, MigrationReport
from repro.placement.policies import ServerLoad, choose_server
from repro.placement.spec import (
    PLACEMENT_POLICIES,
    FleetSpec,
    VmRequest,
)

__all__ = [
    "PLACEMENT_POLICIES",
    "AdmissionDecision",
    "FleetController",
    "FleetSpec",
    "LiveMigration",
    "MigrationForecast",
    "MigrationReport",
    "PlacementEngine",
    "ServerLoad",
    "VmRequest",
    "admit_migration",
    "choose_server",
    "forecast_migration",
]
