"""Placement policies: where a VM (or an affinity group) should land.

A policy is a pure function from ``(request, server loads)`` to a
chosen server — no randomness, no simulator access — so placement
decisions are a deterministic function of the request sequence and the
policy token.  Four policies cover the scenario families the fleet
layer unlocks:

* ``firstfit`` — classic first-fit bin packing over the cluster's
  deterministic server order: consolidates onto the earliest servers
  (and therefore co-locates antagonists — the interference setup the
  migration scenarios start from);
* ``bestfit``  — tightest-fit packing: minimizes the slack left on the
  chosen server, the consolidation policy that frees whole servers;
* ``balance``  — load balancing: places on the least-committed server,
  spreading demand (hotspot avoidance);
* ``priority`` — gray-box priority-aware packing (after Liu & Fan):
  latency-sensitive VMs (``priority > 0``) spread onto the servers
  with the least existing load, while batch VMs pack tightly onto the
  servers hosting the *least* high-priority demand — protecting the
  interactive class from noisy neighbours without any in-guest
  knowledge beyond the declared workload class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.placement.spec import (
    BALANCE,
    BEST_FIT,
    DEFAULT_VCPU_OVERCOMMIT,
    FIRST_FIT,
    PRIORITY,
    VmRequest,
    validate_placement_policy,
)


class PlacementError(ConfigurationError):
    """No server can host a VM request."""


@dataclass
class ServerLoad:
    """One server's committed capacity, as the policies see it.

    ``order`` is the server's index in the cluster's deterministic
    iteration order — the tiebreaker every policy falls back to, so
    equal-scored servers never depend on dict ordering.
    """

    name: str
    order: int
    cores: int
    memory_bytes: float
    reserved_memory_bytes: float = 0.0
    committed_vcpus: float = 0.0
    priority_vcpus: float = 0.0

    @property
    def free_memory_bytes(self) -> float:
        return self.memory_bytes - self.reserved_memory_bytes

    def free_vcpus(self, overcommit: float) -> float:
        return self.cores * overcommit - self.committed_vcpus

    def fits(self, request: VmRequest, overcommit: float) -> bool:
        """Hard feasibility: memory is never overcommitted; VCPUs may
        exceed the cores by the overcommit ratio (time sharing)."""
        return (
            request.memory_bytes <= self.free_memory_bytes + 1e-9
            and request.vcpus <= self.free_vcpus(overcommit) + 1e-9
        )

    def commit(self, request: VmRequest) -> None:
        """Record a placement on this server."""
        self.reserved_memory_bytes += request.memory_bytes
        self.committed_vcpus += request.vcpus
        if request.priority > 0:
            self.priority_vcpus += request.vcpus

    def release(self, request: VmRequest) -> None:
        """Undo a placement (migration away / decommission)."""
        self.reserved_memory_bytes -= request.memory_bytes
        self.committed_vcpus -= request.vcpus
        if request.priority > 0:
            self.priority_vcpus -= request.vcpus

    def slack(self, overcommit: float) -> float:
        """Normalized free capacity in [0, ~2]: the balance score."""
        return (
            self.free_memory_bytes / self.memory_bytes
            + self.free_vcpus(overcommit) / (self.cores * overcommit)
        )

    def slack_after(self, request: VmRequest, overcommit: float) -> float:
        """Normalized slack *after* hosting ``request``: the best-fit
        score.  Not equivalent to ranking current slack on
        heterogeneous fleets — normalization is per-server, so the
        same request consumes a different slack fraction on different
        specs."""
        return (
            (self.free_memory_bytes - request.memory_bytes)
            / self.memory_bytes
            + (self.free_vcpus(overcommit) - request.vcpus)
            / (self.cores * overcommit)
        )


def choose_server(
    policy: str,
    request: VmRequest,
    loads: Sequence[ServerLoad],
    overcommit: float = DEFAULT_VCPU_OVERCOMMIT,
) -> ServerLoad:
    """Pick the server ``request`` should land on (pure, deterministic).

    Raises:
        PlacementError: when no server can satisfy the request.
    """
    validate_placement_policy(policy)
    feasible = [load for load in loads if load.fits(request, overcommit)]
    if not feasible:
        raise PlacementError(
            f"no server fits VM {request.name!r} "
            f"({request.vcpus} vcpus, "
            f"{request.memory_bytes / 2**20:.0f} MB) — "
            f"fleet of {len(loads)} server(s) is full"
        )
    if policy == FIRST_FIT:
        return min(feasible, key=lambda load: load.order)
    if policy == BEST_FIT:
        # Tightest fit: least slack remaining *after* placement.
        return min(
            feasible,
            key=lambda load: (
                load.slack_after(request, overcommit),
                load.order,
            ),
        )
    if policy == BALANCE:
        return min(
            feasible,
            key=lambda load: (-load.slack(overcommit), load.order),
        )
    # priority: spread the latency-sensitive class, pack the batch
    # class away from it.
    if request.priority > 0:
        return min(
            feasible,
            key=lambda load: (
                load.committed_vcpus,
                -load.slack(overcommit),
                load.order,
            ),
        )
    return min(
        feasible,
        key=lambda load: (
            load.priority_vcpus,
            load.slack(overcommit),
            load.order,
        ),
    )


def plan_placement(
    policy: str,
    requests: Sequence[VmRequest],
    loads: Sequence[ServerLoad],
    overcommit: float = DEFAULT_VCPU_OVERCOMMIT,
) -> dict:
    """Place a request sequence, honouring affinity groups.

    Requests sharing a ``group`` are placed as one unit (the group's
    aggregate footprint chooses the server; every member lands there).
    Returns ``{vm name: server name}`` and mutates ``loads`` with the
    commitments.
    """
    assignment = {}
    grouped: List[List[VmRequest]] = []
    group_index = {}
    for request in requests:
        if request.name in assignment:
            raise ConfigurationError(
                f"duplicate VM request {request.name!r}"
            )
        assignment[request.name] = None
        if request.group is None:
            grouped.append([request])
        elif request.group in group_index:
            grouped[group_index[request.group]].append(request)
        else:
            group_index[request.group] = len(grouped)
            grouped.append([request])
    for unit in grouped:
        if len(unit) == 1:
            probe = unit[0]
        else:
            probe = VmRequest(
                name=unit[0].name,
                vcpus=sum(r.vcpus for r in unit),
                memory_bytes=sum(r.memory_bytes for r in unit),
                priority=max(r.priority for r in unit),
                movable=all(r.movable for r in unit),
            )
        chosen = choose_server(policy, probe, loads, overcommit)
        for request in unit:
            assignment[request.name] = chosen.name
            chosen.commit(request)
    return assignment
