"""The fleet controller: watch the fleet, migrate away from hotspots.

A :class:`FleetController` is the fleet-level tier of the PR-4 control
machinery: it reuses the :class:`~repro.control.signals.SignalTap` for
windowed web p95/ready signals, adds per-server CPU-ready cursors over
every hypervisor in the :class:`~repro.placement.engine.
PlacementEngine`, and — where the elastic controller resizes VMs in
place — its actuator is *placement itself*: when the web server stays
hot for ``hot_windows`` consecutive windows, it live-migrates one
movable co-resident VM to the least-loaded feasible server
(:class:`~repro.placement.migration.LiveMigration`), with cooldown and
an in-flight cap as hysteresis.

It shares the :class:`~repro.control.controller.PeriodicController`
scaffold (series dict, periodic lifecycle, trace/columnar exports)
with the elastic controller, so fleet decisions ride the existing
TraceSet merge, columnar export and ``control_reports`` paths
unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.control.actions import ActionLog
from repro.control.controller import PeriodicController
from repro.control.signals import SignalTap
from repro.placement.engine import PlacementEngine
from repro.placement.migration import LiveMigration, MigrationReport
from repro.placement.spec import FleetSpec


class FleetController(PeriodicController):
    """Observe per-server signals, trigger rebalancing migrations."""

    def __init__(
        self,
        sim,
        spec: FleetSpec,
        engine: PlacementEngine,
        stats,
        movable: Optional[Dict[str, Callable]] = None,
        watch_domains: Tuple[str, ...] = ("web-vm", "db-vm"),
        driver=None,
        entity: str = "fleet",
    ) -> None:
        super().__init__(sim, entity)
        self.spec = spec
        self.engine = engine
        #: ``{vm name: rebind fn}`` — the VMs this controller may move,
        #: each with the callable that re-targets its execution
        #: context(s) at the destination hypervisor.
        self.movable = dict(movable or {})
        self.watch_domains = tuple(watch_domains)
        self._web_server = engine.server_of(self.watch_domains[0])
        self.tap = SignalTap(
            sim,
            stats,
            engine.hypervisor_for(self.watch_domains[0]),
            self.watch_domains,
            driver=driver,
            window_s=spec.interval_s,
        )
        self.log = ActionLog()
        for hypervisor in engine.hypervisors.values():
            hypervisor.add_control_hook(self._on_action)
        self.migrations: List[MigrationReport] = []
        self._active: Optional[LiveMigration] = None
        self._hot_streak = 0
        self._last_migration_end = -float("inf")
        self._ready_cursor: Dict[str, float] = {
            name: 0.0 for name in engine.hypervisors
        }
        self._add_series("p95_ms", "ms")
        self._add_series("hot_streak", "windows")
        self._add_series("migration_active", "0/1")
        self._add_series("migrations_done", "count")
        self._add_series("migration_bytes", "bytes")
        for name in engine.hypervisors:
            self._add_series(f"{name}.ready_s", "core-s/sample")
            self._add_series(f"{name}.guest_vcpus", "vcpus")

    def _on_action(self, event: dict) -> None:
        # Keep the fleet-relevant actions: migration phases anywhere,
        # from any hypervisor in the fleet.
        if event["kind"].startswith("migrate_"):
            self.log.record(event)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FleetController":
        # Priority 45: after the recorder (30) and elastic (40) ticks.
        self._arm(self.spec.interval_s, priority=45)
        return self

    # -- the decision epoch ------------------------------------------------

    def _server_ready_deltas(self) -> Dict[str, float]:
        deltas = {}
        for name, hypervisor in self.engine.hypervisors.items():
            total = sum(hypervisor.cpu_ready_report().values())
            deltas[name] = total - self._ready_cursor[name]
            self._ready_cursor[name] = total
        return deltas

    def _tick(self, tick_time: float) -> None:
        spec = self.spec
        signals = self.tap.sample()
        ready_deltas = self._server_ready_deltas()
        web_ready = sum(
            signals.domains[name].ready_delta_s
            for name in self.watch_domains
        )
        hot = (
            signals.p95_ms > spec.p95_high_ms
            or web_ready > spec.ready_high_s
        )
        self._hot_streak = self._hot_streak + 1 if hot else 0
        if (
            spec.active
            and self._hot_streak >= spec.hot_windows
            and self._active is None
            and len(self.migrations) < spec.max_migrations
            and tick_time - self._last_migration_end >= spec.cooldown_s
        ):
            self._try_rebalance()
        series = self._series
        series["p95_ms"].append(tick_time, signals.p95_ms)
        series["hot_streak"].append(tick_time, float(self._hot_streak))
        series["migration_active"].append(
            tick_time, 1.0 if self._active is not None else 0.0
        )
        series["migrations_done"].append(
            tick_time, float(len(self.migrations))
        )
        series["migration_bytes"].append(
            tick_time,
            float(
                sum(report.bytes_total for report in self.migrations)
                + (
                    self._active.report.bytes_total
                    if self._active is not None
                    else 0.0
                )
            ),
        )
        for name, hypervisor in self.engine.hypervisors.items():
            series[f"{name}.ready_s"].append(tick_time, ready_deltas[name])
            series[f"{name}.guest_vcpus"].append(
                tick_time,
                float(
                    sum(
                        d.online_vcpus
                        for d in hypervisor.guest_domains()
                    )
                ),
            )

    def _try_rebalance(self) -> None:
        """Pick a movable antagonist on the web server and migrate it."""
        hot_server = self._web_server
        candidates = [
            vm
            for vm in self.engine.movable_vms_on(hot_server)
            if vm in self.movable
        ]
        if not candidates:
            return
        victim = candidates[0]
        dest_name = self.engine.choose_destination(victim)
        if dest_name is None:
            return
        source = self.engine.hypervisor_for(victim)
        dest = self.engine.hypervisors[dest_name]
        self._active = LiveMigration(
            self.sim,
            source,
            dest,
            victim,
            spec=self.spec,
            rebind=self.movable[victim],
            on_complete=self._migration_done,
        ).start()

    def _migration_done(self, report: MigrationReport) -> None:
        self.engine.record_migration(report.domain, report.dest)
        self.migrations.append(report)
        self._active = None
        self._last_migration_end = report.ended_s
        self._hot_streak = 0

    # -- exports -----------------------------------------------------------

    def report(self) -> dict:
        """Plain-data summary of what the fleet controller did."""
        return {
            "kind": "fleet",
            "domains": sorted(self.movable),
            "num_actions": len(self.migrations),
            "actions_by_kind": self.log.counts_by_kind(),
            "migrations": [
                report.to_dict() for report in self.migrations
            ],
            "placement": self.engine.placement_report(),
            "final": {},
        }
