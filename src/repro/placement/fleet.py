"""The fleet controller: watch the fleet, migrate away from hotspots.

A :class:`FleetController` is the fleet-level tier of the PR-4 control
machinery: it reuses the :class:`~repro.control.signals.SignalTap` for
windowed web p95/ready signals, adds per-server CPU-ready cursors over
every hypervisor in the :class:`~repro.placement.engine.
PlacementEngine`, and — where the elastic controller resizes VMs in
place — its actuator is *placement itself*: when the web server stays
hot for ``hot_windows`` consecutive windows, it live-migrates one
movable co-resident VM to the least-loaded feasible server
(:class:`~repro.placement.migration.LiveMigration`), with cooldown and
an in-flight cap as hysteresis.

It shares the :class:`~repro.control.controller.PeriodicController`
scaffold (series dict, periodic lifecycle, trace/columnar exports)
with the elastic controller, so fleet decisions ride the existing
TraceSet merge, columnar export and ``control_reports`` paths
unchanged.

Failure detection (the fault-injection PR): when the spec arms
``fail_ready_s``, the controller watches each server's windowed CPU
ready time; ``fail_windows`` consecutive windows above the threshold
declare the server *failed* (a crashed credit scheduler starves every
domain at once, flooding ready time) and trigger a forced evacuation —
every guest on the failed server is serially live-migrated to the
least-loaded feasible survivor, pinned or not.  Forced migrations land
in ``evacuations`` (with ``forced=True`` reports), never in
``migrations``, so they do not consume the voluntary
``max_migrations`` budget or its cooldown.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.control.actions import ActionLog
from repro.control.controller import PeriodicController
from repro.control.signals import SignalTap
from repro.placement.admission import AdmissionDecision, admit_migration
from repro.placement.engine import PlacementEngine
from repro.placement.migration import LiveMigration, MigrationReport
from repro.placement.spec import FleetSpec


class FleetController(PeriodicController):
    """Observe per-server signals, trigger rebalancing migrations."""

    def __init__(
        self,
        sim,
        spec: FleetSpec,
        engine: PlacementEngine,
        stats,
        movable: Optional[Dict[str, Callable]] = None,
        watch_domains: Tuple[str, ...] = ("web-vm", "db-vm"),
        driver=None,
        entity: str = "fleet",
        evacuable: Optional[Dict[str, Callable]] = None,
        rescalers: Optional[Dict[str, Callable]] = None,
    ) -> None:
        super().__init__(sim, entity)
        self.spec = spec
        self.engine = engine
        #: ``{vm name: rebind fn}`` — the VMs this controller may move,
        #: each with the callable that re-targets its execution
        #: context(s) at the destination hypervisor.
        self.movable = dict(movable or {})
        #: ``{vm name: rebind fn}`` over *every* guest, pinned or not —
        #: forced evacuation ignores the movable flag (a pinned web
        #: tier still has to leave a dead server).  Falls back to
        #: ``movable`` when not given.
        self.evacuable = dict(evacuable) if evacuable else dict(self.movable)
        #: ``{vm name: rescale fn}`` — in-flight service stretch hooks
        #: (``ExecutionContext.rescale_in_flight``) handed to every
        #: migration this controller starts.
        self.rescalers = dict(rescalers or {})
        self.watch_domains = tuple(watch_domains)
        self._web_server = engine.server_of(self.watch_domains[0])
        self.tap = SignalTap(
            sim,
            stats,
            engine.hypervisor_for(self.watch_domains[0]),
            self.watch_domains,
            driver=driver,
            window_s=spec.interval_s,
            # Watched domains can move during a forced evacuation;
            # re-resolve their hypervisor at every sample.
            resolve=engine.hypervisor_for,
        )
        self.log = ActionLog()
        for hypervisor in engine.hypervisors.values():
            hypervisor.add_control_hook(self._on_action)
        self.migrations: List[MigrationReport] = []
        #: Forced (failure-driven) migrations — kept apart from the
        #: voluntary list so the ``max_migrations`` budget never sees
        #: them.
        self.evacuations: List[MigrationReport] = []
        #: Admission consults (``spec.admission`` runs only), in
        #: decision order.
        self.admission_decisions: List[AdmissionDecision] = []
        self.failed_servers: List[str] = []
        self._fail_streak: Dict[str, int] = {
            name: 0 for name in engine.hypervisors
        }
        self._evac_queue: List[str] = []
        self._active: Optional[LiveMigration] = None
        self._hot_streak = 0
        self._last_migration_end = -float("inf")
        self._ready_cursor: Dict[str, float] = {
            name: 0.0 for name in engine.hypervisors
        }
        self._add_series("p95_ms", "ms")
        self._add_series("hot_streak", "windows")
        self._add_series("migration_active", "0/1")
        self._add_series("migrations_done", "count")
        self._add_series("migration_bytes", "bytes")
        if spec.fail_ready_s > 0:
            # Gated so fault-free fleets keep their pre-fault trace
            # fingerprints bit-identical.
            self._add_series("failed_servers", "count")
            self._add_series("evacuations_done", "count")
        for name in engine.hypervisors:
            self._add_series(f"{name}.ready_s", "core-s/sample")
            self._add_series(f"{name}.guest_vcpus", "vcpus")

    def _on_action(self, event: dict) -> None:
        # Keep the fleet-relevant actions: migration phases anywhere,
        # from any hypervisor in the fleet, plus failure declarations.
        kind = event["kind"]
        if kind.startswith("migrate_") or kind == "server_failed":
            self.log.record(event)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FleetController":
        # Priority 45: after the recorder (30) and elastic (40) ticks.
        self._arm(self.spec.interval_s, priority=45)
        return self

    # -- the decision epoch ------------------------------------------------

    def _server_ready_deltas(self) -> Dict[str, float]:
        deltas = {}
        for name, hypervisor in self.engine.hypervisors.items():
            total = sum(hypervisor.cpu_ready_report().values())
            deltas[name] = total - self._ready_cursor[name]
            self._ready_cursor[name] = total
        return deltas

    def _tick(self, tick_time: float) -> None:
        spec = self.spec
        signals = self.tap.sample()
        ready_deltas = self._server_ready_deltas()
        if spec.active and spec.fail_ready_s > 0:
            self._detect_failures(ready_deltas, tick_time)
            if self._evac_queue and self._active is None:
                self._start_next_evacuation()
        web_ready = sum(
            signals.domains[name].ready_delta_s
            for name in self.watch_domains
        )
        hot = (
            signals.p95_ms > spec.p95_high_ms
            or web_ready > spec.ready_high_s
        )
        self._hot_streak = self._hot_streak + 1 if hot else 0
        if (
            spec.active
            and self._hot_streak >= spec.hot_windows
            and self._active is None
            and not self._evac_queue
            and len(self.migrations) < spec.max_migrations
            and tick_time - self._last_migration_end >= spec.cooldown_s
        ):
            self._try_rebalance()
        series = self._series
        series["p95_ms"].append(tick_time, signals.p95_ms)
        series["hot_streak"].append(tick_time, float(self._hot_streak))
        series["migration_active"].append(
            tick_time, 1.0 if self._active is not None else 0.0
        )
        series["migrations_done"].append(
            tick_time, float(len(self.migrations))
        )
        series["migration_bytes"].append(
            tick_time,
            float(
                sum(report.bytes_total for report in self.migrations)
                + sum(report.bytes_total for report in self.evacuations)
                + (
                    self._active.report.bytes_total
                    if self._active is not None
                    else 0.0
                )
            ),
        )
        if "failed_servers" in series:
            series["failed_servers"].append(
                tick_time, float(len(self.failed_servers))
            )
            series["evacuations_done"].append(
                tick_time, float(len(self.evacuations))
            )
        for name, hypervisor in self.engine.hypervisors.items():
            series[f"{name}.ready_s"].append(tick_time, ready_deltas[name])
            series[f"{name}.guest_vcpus"].append(
                tick_time,
                float(
                    sum(
                        d.online_vcpus
                        for d in hypervisor.guest_domains()
                    )
                ),
            )

    # -- failure detection and forced evacuation ---------------------------

    def _detect_failures(
        self, ready_deltas: Dict[str, float], tick_time: float
    ) -> None:
        """Advance per-server fail streaks; declare crossing servers."""
        spec = self.spec
        for name, delta in ready_deltas.items():
            if name in self.failed_servers:
                continue
            if delta > spec.fail_ready_s:
                self._fail_streak[name] += 1
                if self._fail_streak[name] >= spec.fail_windows:
                    self._declare_failed(name, tick_time)
            else:
                self._fail_streak[name] = 0

    def _declare_failed(self, server_name: str, tick_time: float) -> None:
        """Mark a server failed and queue every guest for evacuation.

        Latency-sensitive guests (higher placement priority — the web
        pair) leave first: recovery time is measured on the web p95,
        so the batch tenant waits its turn on the wire.
        """
        self.failed_servers.append(server_name)
        guests = sorted(
            (
                vm
                for vm, location in self.engine.assignment().items()
                if location == server_name
            ),
            key=lambda vm: (-self.engine.request_for(vm).priority, vm),
        )
        self._evac_queue.extend(guests)
        self.engine.hypervisors[server_name].emit_event({
            "time_s": tick_time,
            "domain": "",
            "kind": "server_failed",
            "old": 0.0,
            "new": float(len(guests)),
        })

    def _start_next_evacuation(self) -> None:
        """Force-migrate the next queued guest off its failed server."""
        victim = self._evac_queue.pop(0)
        dest_name = self.engine.choose_destination(
            victim, exclude=tuple(self.failed_servers)
        )
        if dest_name is None:
            # No survivor can host it right now; retry after the next
            # evacuation (or window) frees capacity.
            self._evac_queue.append(victim)
            return
        source = self.engine.hypervisor_for(victim)
        dest = self.engine.hypervisors[dest_name]
        self._active = LiveMigration(
            self.sim,
            source,
            dest,
            victim,
            spec=self.spec,
            rebind=self.evacuable.get(victim),
            on_complete=self._evacuation_done,
            rescale=self.rescalers.get(victim),
            forced=True,
        ).start()

    def _evacuation_done(self, report: MigrationReport) -> None:
        self.engine.record_migration(report.domain, report.dest)
        self.evacuations.append(report)
        self._active = None
        # Drain the queue back-to-back: recovery time is the metric, so
        # the next guest leaves as soon as the wire frees up — no
        # voluntary-style cooldown between forced moves.
        if self._evac_queue:
            self._start_next_evacuation()

    def stranded_guests(self) -> List[str]:
        """Queued evacuees no survivor can currently host (sorted).

        A stranded guest is the signal a fleet-of-fleets optimizer
        reads to trigger a *cross-fleet* evacuation: inside this fleet
        the guest would wait at the queue head forever.
        """
        return sorted(
            vm
            for vm in self._evac_queue
            if self.engine.choose_destination(
                vm, exclude=tuple(self.failed_servers)
            )
            is None
        )

    def cancel_evacuation(self, vm_name: str) -> bool:
        """Drop a queued evacuee (it is leaving this fleet entirely)."""
        if vm_name in self._evac_queue:
            self._evac_queue.remove(vm_name)
            return True
        return False

    # -- voluntary rebalancing ---------------------------------------------

    def _try_rebalance(self) -> None:
        """Pick a movable antagonist on the web server and migrate it."""
        hot_server = self.engine.server_of(self.watch_domains[0])
        candidates = [
            vm
            for vm in self.engine.movable_vms_on(hot_server)
            if vm in self.movable
        ]
        if not candidates:
            return
        victim = candidates[0]
        if self.spec.admission:
            source_hv = self.engine.hypervisor_for(victim)
            decision = admit_migration(
                source_hv.vm_memory_used(source_hv.domain(victim)),
                self.spec,
                # The hot streak is the evidence: assume the observed
                # SLO-violating interval would persist equally long
                # again if the antagonist stayed put.
                relief_s=self._hot_streak * self.spec.interval_s,
                relief_ratio=self.spec.admission_relief_ratio,
            )
            self.admission_decisions.append(decision)
            if not decision.admitted:
                # Denied: reset the streak so the next consult waits
                # for fresh evidence instead of re-denying every
                # window.
                self._hot_streak = 0
                return
        dest_name = self.engine.choose_destination(
            victim, exclude=tuple(self.failed_servers)
        )
        if dest_name is None:
            return
        source = self.engine.hypervisor_for(victim)
        dest = self.engine.hypervisors[dest_name]
        self._active = LiveMigration(
            self.sim,
            source,
            dest,
            victim,
            spec=self.spec,
            rebind=self.movable[victim],
            on_complete=self._migration_done,
            rescale=self.rescalers.get(victim),
        ).start()

    def request_migration(self, vm_name: str) -> bool:
        """Start an externally-commanded voluntary migration of one VM.

        The fleet-optimizer entry point: the caller (which has already
        run its own admission control) names the VM; the controller
        supplies the destination, the wire and the bookkeeping.
        Returns False — without queueing anything — when the wire is
        busy, the VM is not movable, or no server can host it.
        Commanded moves share the voluntary ``migrations`` list and
        cooldown, but not the ``max_migrations`` budget: the optimizer
        holds its own budget.
        """
        if self._active is not None or self._evac_queue:
            return False
        if vm_name not in self.movable:
            return False
        dest_name = self.engine.choose_destination(
            vm_name, exclude=tuple(self.failed_servers)
        )
        if dest_name is None:
            return False
        source = self.engine.hypervisor_for(vm_name)
        dest = self.engine.hypervisors[dest_name]
        self._active = LiveMigration(
            self.sim,
            source,
            dest,
            vm_name,
            spec=self.spec,
            rebind=self.movable[vm_name],
            on_complete=self._migration_done,
            rescale=self.rescalers.get(vm_name),
        ).start()
        return True

    def _migration_done(self, report: MigrationReport) -> None:
        self.engine.record_migration(report.domain, report.dest)
        self.migrations.append(report)
        self._active = None
        self._last_migration_end = report.ended_s
        self._hot_streak = 0

    # -- exports -----------------------------------------------------------

    def report(self) -> dict:
        """Plain-data summary of what the fleet controller did."""
        report = {
            "kind": "fleet",
            "domains": sorted(self.movable),
            "num_actions": len(self.migrations),
            "actions_by_kind": self.log.counts_by_kind(),
            "migrations": [
                report.to_dict() for report in self.migrations
            ],
            "evacuations": [
                report.to_dict() for report in self.evacuations
            ],
            "failed_servers": list(self.failed_servers),
            "placement": self.engine.placement_report(),
            "final": {},
        }
        if self.spec.admission:
            report["admission"] = [
                decision.to_dict()
                for decision in self.admission_decisions
            ]
        return report
