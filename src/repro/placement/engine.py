"""The placement engine: a fleet of hypervisors plus VM assignment.

The :class:`PlacementEngine` is the construction-time heart of the
multi-server testbed: it builds one
:class:`~repro.virt.hypervisor.Hypervisor` (with its own dom0, credit
scheduler and split-driver backends) per
:class:`~repro.hardware.server.PhysicalServer` in a shared
:class:`~repro.hardware.cluster.Cluster`, then assigns
:class:`~repro.placement.spec.VmRequest`s to servers through a
pluggable policy.  At run time it is the fleet's directory: which VM
lives where, what every server has committed, and which server could
receive a migrating VM.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.hardware.network import NetworkFabric
from repro.hardware.server import ServerSpec
from repro.placement.policies import ServerLoad, plan_placement
from repro.placement.spec import (
    DEFAULT_VCPU_OVERCOMMIT,
    VmRequest,
    validate_placement_policy,
)
from repro.sim.engine import Simulator
from repro.virt.hypervisor import Hypervisor
from repro.virt.overhead import OverheadModel


class PlacementEngine:
    """One hypervisor per physical server, VMs assigned by policy."""

    def __init__(
        self,
        sim: Simulator,
        server_count: int,
        policy: str = "firstfit",
        overhead: Optional[OverheadModel] = None,
        server_spec: Optional[ServerSpec] = None,
        fabric: Optional[NetworkFabric] = None,
        vcpu_contention: bool = False,
        vcpu_overcommit: float = DEFAULT_VCPU_OVERCOMMIT,
        name_prefix: str = "cloud",
    ) -> None:
        if server_count < 1:
            raise ConfigurationError("server_count must be >= 1")
        if vcpu_overcommit < 1.0:
            raise ConfigurationError("vcpu_overcommit must be >= 1")
        self.sim = sim
        self.policy = validate_placement_policy(policy)
        self.overcommit = float(vcpu_overcommit)
        self.cluster = Cluster(fabric)
        self.hypervisors: Dict[str, Hypervisor] = {}
        # Servers are created (and therefore iterate) in index order —
        # the deterministic order first-fit packs against.
        for index in range(1, server_count + 1):
            server = self.cluster.add_server(
                f"{name_prefix}-{index}", server_spec
            )
            self.hypervisors[server.name] = Hypervisor(
                sim,
                server,
                overhead,
                vcpu_contention=vcpu_contention,
            )
        self._loads: Dict[str, ServerLoad] = {
            server.name: ServerLoad(
                name=server.name,
                order=index,
                cores=server.spec.cores,
                memory_bytes=server.spec.memory_bytes,
                # Dom0's reservation is off the table for guests.
                reserved_memory_bytes=(
                    self.hypervisors[server.name].dom0.memory_bytes
                ),
            )
            for index, server in enumerate(self.cluster.servers())
        }
        self._assignment: Dict[str, str] = {}
        self._requests: Dict[str, VmRequest] = {}

    # -- placement ---------------------------------------------------------

    def place(self, requests: Sequence[VmRequest]) -> Dict[str, str]:
        """Assign VM requests to servers; returns ``{vm: server}``.

        Only the *assignment* happens here — domains are created by the
        testbed on the chosen hypervisors, so context wiring stays with
        the layer that owns the workloads.  The call is atomic:
        planning runs against trial copies of the server loads, so a
        request sequence that cannot be placed leaves no phantom
        reservations behind.
        """
        for request in requests:
            if request.name in self._requests:
                raise ConfigurationError(
                    f"VM {request.name!r} was already placed"
                )
        trial = [
            dataclasses.replace(self._loads[name])
            for name in self.cluster.server_names()
        ]
        assignment = plan_placement(
            self.policy, requests, trial, self.overcommit
        )
        for request in requests:
            self._loads[assignment[request.name]].commit(request)
            self._requests[request.name] = request
        self._assignment.update(assignment)
        return dict(assignment)

    def server_of(self, vm_name: str) -> str:
        if vm_name not in self._assignment:
            raise ConfigurationError(f"VM {vm_name!r} was never placed")
        return self._assignment[vm_name]

    def hypervisor_for(self, vm_name: str) -> Hypervisor:
        return self.hypervisors[self.server_of(vm_name)]

    def request_for(self, vm_name: str) -> VmRequest:
        if vm_name not in self._requests:
            raise ConfigurationError(f"VM {vm_name!r} was never placed")
        return self._requests[vm_name]

    def server_loads(self) -> List[ServerLoad]:
        """Current loads in deterministic server order."""
        return [self._loads[name] for name in self.cluster.server_names()]

    def assignment(self) -> Dict[str, str]:
        return dict(self._assignment)

    def placement_report(self) -> Dict[str, List[str]]:
        """``{server: [vm, ...]}`` in deterministic order."""
        report: Dict[str, List[str]] = {
            name: [] for name in self.cluster.server_names()
        }
        for vm_name, server_name in self._assignment.items():
            report[server_name].append(vm_name)
        return report

    # -- migration support ---------------------------------------------------

    def movable_vms_on(self, server_name: str) -> List[str]:
        """Movable VMs resident on ``server_name``, sorted by name."""
        return sorted(
            vm_name
            for vm_name, location in self._assignment.items()
            if location == server_name and self._requests[vm_name].movable
        )

    def choose_destination(
        self, vm_name: str, exclude: Sequence[str] = ()
    ) -> Optional[str]:
        """Least-loaded feasible destination for a migrating VM.

        Returns None when no other server can host the VM — the fleet
        controller treats that as "stay put", never an error.
        """
        request = self.request_for(vm_name)
        source = self.server_of(vm_name)
        excluded = set(exclude) | {source}
        candidates = [
            load
            for load in self.server_loads()
            if load.name not in excluded
            and load.fits(request, self.overcommit)
        ]
        if not candidates:
            return None
        best = max(
            candidates,
            key=lambda load: (load.slack(self.overcommit), -load.order),
        )
        return best.name

    def record_migration(self, vm_name: str, dest_server: str) -> None:
        """Move a VM's booking after a completed migration."""
        request = self.request_for(vm_name)
        source = self.server_of(vm_name)
        if dest_server not in self._loads:
            raise ConfigurationError(f"unknown server {dest_server!r}")
        self._loads[source].release(request)
        self._loads[dest_server].commit(request)
        self._assignment[vm_name] = dest_server

    def remove_vm(self, vm_name: str) -> VmRequest:
        """Release a VM's booking entirely (cross-fleet evacuation).

        The inverse of :meth:`place` for one VM: its reservation is
        released and the directory forgets it, so the name could be
        re-placed later.  Returns the removed request (the shippable
        description a receiving fleet re-places).
        """
        request = self.request_for(vm_name)
        source = self.server_of(vm_name)
        self._loads[source].release(request)
        del self._assignment[vm_name]
        del self._requests[vm_name]
        return request

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        """Disarm every hypervisor's periodic processes."""
        for hypervisor in self.hypervisors.values():
            hypervisor.shutdown()
