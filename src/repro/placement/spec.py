"""Declarative vocabulary of the placement/migration subsystem.

:class:`VmRequest` describes what one VM asks of the fleet — the
placement policies consume a sequence of these.  :class:`FleetSpec`
describes the fleet controller: the signals it watches, the hysteresis
that keeps it from thrashing, and the live-migration model parameters.
Both are frozen, hashable plain data so they can ride inside a
scenario's cache fingerprint and serialize through
:class:`~repro.config.ExperimentConfig`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import MB, SAMPLE_PERIOD_S

FIRST_FIT = "firstfit"
BEST_FIT = "bestfit"
BALANCE = "balance"
PRIORITY = "priority"
PLACEMENT_POLICIES = (FIRST_FIT, BEST_FIT, BALANCE, PRIORITY)

#: VCPU overcommit factor: a server's schedulable VCPUs may exceed its
#: physical cores by this ratio (the credit scheduler time-shares), but
#: memory is never overcommitted (the MemoryBank enforces capacity).
DEFAULT_VCPU_OVERCOMMIT = 2.0


@dataclass(frozen=True)
class VmRequest:
    """What one VM asks of the placement engine.

    Attributes:
        name: domain name the VM will be created under.
        vcpus: VCPU count (CPU reservation, overcommittable).
        memory_bytes: memory reservation (hard, never overcommitted).
        priority: gray-box workload class — positive for
            latency-sensitive (web) VMs, zero/negative for throughput
            (batch) VMs.  Only the ``priority`` policy reads it.
        group: affinity group; requests sharing a group are placed as
            one unit on one server (the web+db pair communicates over
            the software bridge and must stay co-located).
        movable: whether the fleet controller may live-migrate this VM
            (web tiers are pinned; batch tenants are movable).
    """

    name: str
    vcpus: int = 2
    memory_bytes: float = 2048 * MB
    priority: int = 0
    group: Optional[str] = None
    movable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("vm request needs a name")
        if self.vcpus < 1:
            raise ConfigurationError("vcpus must be >= 1")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")


@dataclass(frozen=True)
class FleetSpec:
    """How the fleet controller observes the fleet and migrates VMs.

    The controller samples every ``interval_s``; a window is *hot* when
    the web p95 exceeds ``p95_high_ms`` or the watched web domain
    accrued more than ``ready_high_s`` core-seconds of CPU ready
    (steal) time inside the window.  After ``hot_windows`` consecutive
    hot windows it migrates one movable co-resident VM away from the
    web server — at most ``max_migrations`` per run, never more than
    one in flight, and never within ``cooldown_s`` of the previous
    migration (the hysteresis that keeps rebalancing from thrashing).

    The migration model: pre-copy rounds at
    ``migration_bandwidth_bps`` (rate-limited below the NIC line rate,
    like ``xl migrate``), a dirty-page rate of ``dirty_fraction_per_s``
    of the guest's current memory working set, rounds ending when the
    residual fits a ``downtime_target_s`` stop-and-copy window (or
    after ``max_precopy_rounds``), and traffic charged in
    ``chunk_bytes`` chunks so guest packets interleave with migration
    packets on the shared NICs.
    """

    #: When False the controller only *observes* (samples signals and
    #: records series) but never migrates — the no-migration baseline
    #: with directly comparable windowed telemetry, mirroring the
    #: elastic subsystem's ``static`` policy kind.
    active: bool = True
    interval_s: float = SAMPLE_PERIOD_S
    p95_high_ms: float = 50.0
    ready_high_s: float = 0.05
    hot_windows: int = 2
    cooldown_s: float = 30.0
    max_migrations: int = 4
    # -- failure detection -------------------------------------------------
    #: A server is declared *failed* after ``fail_windows`` consecutive
    #: windows in which it accrued more than ``fail_ready_s``
    #: core-seconds of CPU ready time — the signature of a crashed
    #: credit scheduler (every domain starves at once).  0 disables
    #: detection entirely (the pre-fault-subsystem behaviour; existing
    #: scenarios keep bit-identical traces).  On declaration the
    #: controller force-evacuates *every* guest domain off the failed
    #: server, pinned or not; forced migrations do not count against
    #: the voluntary ``max_migrations`` budget.
    fail_ready_s: float = 0.0
    fail_windows: int = 2
    # -- migration admission control ---------------------------------------
    #: When True every voluntary rebalancing migration is first run
    #: through :func:`repro.placement.admission.admit_migration`: the
    #: controller forecasts the pre-copy traffic and downtime from the
    #: candidate's live working set and only migrates when the
    #: predicted relief (remaining horizon x the hot signal's excess)
    #: exceeds ``admission_relief_ratio`` x the predicted cost.  False
    #: (the default) keeps the pre-admission behaviour — and therefore
    #: bit-identical traces — for every existing scenario.
    admission: bool = False
    admission_relief_ratio: float = 2.0
    # -- live-migration model ---------------------------------------------
    migration_bandwidth_bps: float = 62.5e6
    dirty_fraction_per_s: float = 0.01
    downtime_target_s: float = 0.3
    stop_copy_overhead_s: float = 0.03
    max_precopy_rounds: int = 8
    #: 1 MB chunks: ~8 ms of NIC occupancy each, so guest packets
    #: interleave with migration traffic instead of queueing behind
    #: whole-round transfers (real TCP interleaves at packet scale;
    #: chunks are the event-count-affordable approximation).
    chunk_bytes: float = 1 * MB

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if self.p95_high_ms <= 0:
            raise ConfigurationError("p95_high_ms must be positive")
        if self.ready_high_s <= 0:
            raise ConfigurationError("ready_high_s must be positive")
        if self.hot_windows < 1:
            raise ConfigurationError("hot_windows must be >= 1")
        if self.cooldown_s < 0:
            raise ConfigurationError("cooldown_s must be >= 0")
        if self.max_migrations < 1:
            raise ConfigurationError("max_migrations must be >= 1")
        if self.fail_ready_s < 0:
            raise ConfigurationError("fail_ready_s must be >= 0")
        if self.fail_windows < 1:
            raise ConfigurationError("fail_windows must be >= 1")
        if self.admission_relief_ratio <= 0:
            raise ConfigurationError(
                "admission_relief_ratio must be positive"
            )
        if self.migration_bandwidth_bps <= 0:
            raise ConfigurationError(
                "migration_bandwidth_bps must be positive"
            )
        if not 0 < self.dirty_fraction_per_s < 1:
            raise ConfigurationError(
                "dirty_fraction_per_s must be in (0, 1)"
            )
        if self.downtime_target_s <= 0:
            raise ConfigurationError("downtime_target_s must be positive")
        if self.stop_copy_overhead_s < 0:
            raise ConfigurationError("stop_copy_overhead_s must be >= 0")
        if self.max_precopy_rounds < 1:
            raise ConfigurationError("max_precopy_rounds must be >= 1")
        if self.chunk_bytes <= 0:
            raise ConfigurationError("chunk_bytes must be positive")

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fleet spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown fleet spec keys: {sorted(unknown)}"
            )
        return cls(**data)


def validate_placement_policy(policy: str) -> str:
    """Return ``policy`` if known, else raise with the valid tokens."""
    if policy not in PLACEMENT_POLICIES:
        raise ConfigurationError(
            f"unknown placement policy {policy!r}; "
            f"choose from {PLACEMENT_POLICIES}"
        )
    return policy
