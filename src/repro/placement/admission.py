"""Migration admission control: forecast the move before making it.

Real fleet schedulers do not migrate blindly: a pre-copy migration
costs wire traffic (which contends with guest I/O on the shared NICs),
dom0 CPU on both ends, and a stop-and-copy downtime — so the decision
is only worth it when the predicted interference relief outweighs the
predicted disturbance.  :func:`forecast_migration` replays
:class:`~repro.placement.migration.LiveMigration`'s pre-copy recursion
as a closed-form function of the guest's memory working set (no
simulator, no side effects), and :func:`admit_migration` turns the
forecast plus a caller-supplied relief estimate into an
:class:`AdmissionDecision` — the gray-box weighing the priority-aware
placement literature applies before every move.

Everything here is pure plain-data arithmetic: admission control can
run inside the fleet controller mid-simulation, inside the sharded
fleet optimizer between windows, or offline over a bill, and always
produces the same answer for the same inputs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.placement.migration import MIN_IMAGE_BYTES
from repro.placement.spec import FleetSpec


@dataclass(frozen=True)
class MigrationForecast:
    """Predicted shape of one pre-copy migration."""

    #: Memory image shipped in round 0 (bytes).
    image_bytes: float
    #: Pre-copy rounds until convergence/exhaustion/divergence.
    rounds: int
    #: Total bytes on the wire (pre-copy rounds + stop-and-copy residual).
    bytes_total: float
    #: Wall-clock from start to switch-over (pre-copy + downtime).
    duration_s: float
    #: Predicted stop-and-copy pause.
    downtime_s: float
    #: True when the dirty-page recursion converged below the downtime
    #: target; False means rounds were exhausted or the guest dirties
    #: faster than the wire ships (the forecast still reports the
    #: forced stop-and-copy outcome).
    converged: bool

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of weighing a migration's forecast against relief."""

    admitted: bool
    #: Human-readable justification ("relief 12.0s >= 2.0x cost 1.3s").
    reason: str
    forecast: MigrationForecast
    #: Caller-predicted interference relief (seconds of SLO-violating
    #: service the move is expected to avoid over the remaining run).
    predicted_relief_s: float
    #: Predicted disturbance: downtime plus the NIC-contention share of
    #: the wire time.
    predicted_cost_s: float

    def to_dict(self) -> dict:
        data = asdict(self)
        data["forecast"] = self.forecast.to_dict()
        return data


def forecast_migration(
    memory_used_bytes: float, spec: FleetSpec
) -> MigrationForecast:
    """Closed-form replay of the pre-copy recursion.

    Assumes the working set stays at ``memory_used_bytes`` for the
    whole migration (the live actuator re-reads it every round; a
    forecast cannot).  With a constant working set the recursion is
    exact: round ``n+1`` ships the pages dirtied during round ``n``.
    """
    image = max(float(memory_used_bytes), MIN_IMAGE_BYTES)
    bandwidth = spec.migration_bandwidth_bps
    dirty_rate = spec.dirty_fraction_per_s * image
    threshold = bandwidth * spec.downtime_target_s
    volume = image
    bytes_total = 0.0
    duration = 0.0
    rounds = 0
    while True:
        round_duration = volume / bandwidth
        bytes_total += volume
        duration += round_duration
        rounds += 1
        residual = dirty_rate * round_duration
        converged = residual <= threshold
        exhausted = rounds >= spec.max_precopy_rounds
        diverging = residual >= bandwidth * round_duration
        if converged or exhausted or diverging:
            downtime = residual / bandwidth + spec.stop_copy_overhead_s
            bytes_total += residual
            duration += downtime
            return MigrationForecast(
                image_bytes=image,
                rounds=rounds,
                bytes_total=bytes_total,
                duration_s=duration,
                downtime_s=downtime,
                converged=converged,
            )
        volume = residual


def admit_migration(
    memory_used_bytes: float,
    spec: FleetSpec,
    relief_s: float,
    relief_ratio: float = 2.0,
    nic_contention_share: float = 0.1,
) -> AdmissionDecision:
    """Admit a migration when predicted relief outweighs predicted cost.

    ``relief_s`` is the caller's estimate of SLO-violating seconds the
    move avoids (e.g. remaining horizon x the hot window's p95 excess,
    or the victim's CPU-ready accrual rate).  The cost side is the
    forecast downtime (service fully stalled) plus
    ``nic_contention_share`` of the wire time (the fraction of pre-copy
    transfer time that surfaces as guest-visible I/O contention on the
    shared NICs).  A move is admitted when the recursion converges and
    ``relief_s >= relief_ratio * cost``.
    """
    forecast = forecast_migration(memory_used_bytes, spec)
    wire_s = forecast.bytes_total / spec.migration_bandwidth_bps
    cost_s = forecast.downtime_s + nic_contention_share * wire_s
    if not forecast.converged:
        return AdmissionDecision(
            admitted=False,
            reason=(
                f"pre-copy does not converge in "
                f"{spec.max_precopy_rounds} rounds "
                f"(predicted downtime {forecast.downtime_s * 1e3:.0f} ms)"
            ),
            forecast=forecast,
            predicted_relief_s=float(relief_s),
            predicted_cost_s=cost_s,
        )
    admitted = relief_s >= relief_ratio * cost_s
    comparison = ">=" if admitted else "<"
    return AdmissionDecision(
        admitted=admitted,
        reason=(
            f"relief {relief_s:.2f}s {comparison} "
            f"{relief_ratio:g}x cost {cost_s:.2f}s "
            f"({forecast.rounds} rounds, "
            f"{forecast.bytes_total / 2**20:.0f} MiB, "
            f"{forecast.downtime_s * 1e3:.0f} ms down)"
        ),
        forecast=forecast,
        predicted_relief_s=float(relief_s),
        predicted_cost_s=cost_s,
    )
