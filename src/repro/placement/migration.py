"""Live migration: pre-copy, dirty pages, downtime, real traffic.

The :class:`LiveMigration` actuator models Xen-style pre-copy live
migration of one guest domain between two hypervisors:

1. **Pre-copy rounds** — the guest keeps running on the source while
   its memory image crosses the network.  Round 0 ships the current
   working set; each later round ships the pages dirtied during the
   previous round, with the dirty-page rate derived from the guest's
   *current* memory working set (``dirty_fraction_per_s * used``), so
   busy, large-footprint guests converge slower — the gray-box signal
   real migration schedulers key on.
2. **Traffic accounting** — every round is shipped in chunks, each
   chunk charged to the source NIC (TX), the destination NIC (RX) and
   both dom0s' CPU (per-byte softirq work), all under the dom0 owner —
   migration load is *visible in the dom0 traces* and contends with
   guest I/O on the shared NICs, exactly the interference a fleet
   controller must weigh before migrating.
3. **Stop-and-copy** — when the residual fits the downtime target (or
   rounds are exhausted), the domain is paused: its scheduler cap
   drops to ~zero so requests queue rather than get served, the last
   residual ships, and after the downtime window the domain detaches
   from the source, attaches to the destination (counters carried — see
   :meth:`~repro.virt.hypervisor.Hypervisor.attach_domain`) and its
   execution contexts are rebound.

Every phase transition is emitted as a control-shaped event
(``migrate_pre_copy`` / ``migrate_downtime`` / ``migrate_in``) through
the hypervisors' control hooks, so migrations land in action logs and
exported traces like any other actuation.  The model draws no
randomness: a migration is a deterministic function of when it starts
and what the guest's memory looks like.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.placement.spec import FleetSpec
from repro.sim.engine import Simulator
from repro.units import MB
from repro.virt.hypervisor import Hypervisor
from repro.virt.io_backend import DOM0_OWNER

#: Cap (in cores) applied during stop-and-copy: the domain is not
#: descheduled outright (in-flight completions still land) but new
#: services starting inside the window run at a tiny fraction of a
#: core.  When the migration is built with a ``rescale`` hook (the
#: testbed wires one per guest with queueing stations), in-flight
#: services are stretched by the cap ratio when the pause begins and
#: shrunk back when it lifts at the destination — so work genuinely
#: stalls through the downtime window instead of completing at
#: pre-pause speed (the former ROADMAP follow-up).
PAUSE_CAP_CORES = 0.1

#: A guest never ships less than this (page tables, device state).
MIN_IMAGE_BYTES = 64 * MB


@dataclass
class MigrationReport:
    """Plain-data outcome of one live migration."""

    domain: str
    source: str
    dest: str
    started_s: float
    ended_s: float = 0.0
    rounds: int = 0
    bytes_total: float = 0.0
    downtime_s: float = 0.0
    #: True for failure-driven evacuations (the fleet controller keeps
    #: them outside the voluntary ``max_migrations`` budget).
    forced: bool = False

    @property
    def duration_s(self) -> float:
        return self.ended_s - self.started_s

    def to_dict(self) -> dict:
        data = asdict(self)
        data["duration_s"] = self.duration_s
        return data


class LiveMigration:
    """One in-flight pre-copy migration of a guest domain."""

    def __init__(
        self,
        sim: Simulator,
        source: Hypervisor,
        dest: Hypervisor,
        domain_name: str,
        spec: Optional[FleetSpec] = None,
        rebind: Optional[Callable[[Hypervisor], None]] = None,
        on_complete: Optional[Callable[["MigrationReport"], None]] = None,
        rescale: Optional[Callable[[float], int]] = None,
        forced: bool = False,
    ) -> None:
        if source is dest:
            raise SimulationError(
                "migration needs distinct source and destination"
            )
        self.sim = sim
        self.source = source
        self.dest = dest
        self.domain = source.domain(domain_name)
        self.spec = spec or FleetSpec()
        self.rebind = rebind
        self.on_complete = on_complete
        #: Stretch/shrink hook for the guest's in-flight services
        #: (``QueueingStation.rescale_in_flight`` via its execution
        #: context); None keeps the legacy complete-at-start-speed
        #: behaviour.
        self.rescale = rescale
        self.report = MigrationReport(
            domain=domain_name,
            source=source.server.name,
            dest=dest.server.name,
            started_s=0.0,
            forced=forced,
        )
        self.finished = False
        self._saved_cap = 0.0
        self._pause_factor = 0.0
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "LiveMigration":
        """Begin round 0 of the pre-copy phase."""
        if self._started:
            raise SimulationError("migration already started")
        self._started = True
        self.report.started_s = self.sim.now
        image = max(
            self.source.vm_memory_used(self.domain), MIN_IMAGE_BYTES
        )
        self.source.emit_event({
            "time_s": self.sim.now,
            "domain": self.domain.name,
            "kind": "migrate_pre_copy",
            "old": 0.0,
            "new": float(image),
        })
        self._run_round(image)
        return self

    # -- pre-copy ------------------------------------------------------------

    def _run_round(self, volume_bytes: float) -> None:
        """Ship one memory pass, chunked so guest traffic interleaves."""
        spec = self.spec
        bandwidth = spec.migration_bandwidth_bps
        duration = volume_bytes / bandwidth
        chunk = spec.chunk_bytes
        offset = 0.0
        shipped = 0.0
        while shipped < volume_bytes - 1e-6:
            size = min(chunk, volume_bytes - shipped)
            self.sim.schedule(offset, self._ship_chunk, size)
            shipped += size
            offset = shipped / bandwidth
        self.report.rounds += 1
        self.sim.schedule(duration, self._round_done, duration)

    def _ship_chunk(self, size_bytes: float) -> None:
        """Charge one chunk to both NICs and both dom0s."""
        now = self.sim.now
        self.source.server.nic.transmit(now, DOM0_OWNER, size_bytes)
        self.dest.server.nic.receive(now, DOM0_OWNER, size_bytes)
        cycles = size_bytes * self.source.overhead.net_cycles_per_byte
        self.source.server.cpu.charge(DOM0_OWNER, cycles)
        self.dest.server.cpu.charge(
            DOM0_OWNER,
            size_bytes * self.dest.overhead.net_cycles_per_byte,
        )
        self.report.bytes_total += size_bytes

    def _round_done(self, round_duration_s: float) -> None:
        spec = self.spec
        working_set = max(
            self.source.vm_memory_used(self.domain), MIN_IMAGE_BYTES
        )
        dirty_rate = spec.dirty_fraction_per_s * working_set
        residual = dirty_rate * round_duration_s
        threshold = spec.migration_bandwidth_bps * spec.downtime_target_s
        converged = residual <= threshold
        exhausted = self.report.rounds >= spec.max_precopy_rounds
        diverging = residual >= spec.migration_bandwidth_bps * round_duration_s
        if converged or exhausted or diverging:
            self._stop_and_copy(residual)
        else:
            self._run_round(residual)

    # -- stop-and-copy -------------------------------------------------------

    def _stop_and_copy(self, residual_bytes: float) -> None:
        """Pause the guest, ship the residual, wait out the downtime."""
        spec = self.spec
        self._saved_cap = self.domain.cap_cores
        self.source.set_cap_cores(self.domain, PAUSE_CAP_CORES)
        if self.rescale is not None:
            # Entering the pause: stretch the remaining service of
            # every in-flight job by the capacity ratio, so work truly
            # crawls at PAUSE_CAP instead of finishing at the speed it
            # sampled when it started.
            effective = (
                self._saved_cap
                if 0.0 < self._saved_cap
                else float(self.domain.online_vcpus)
            )
            self._pause_factor = max(1.0, effective / PAUSE_CAP_CORES)
            self.rescale(self._pause_factor)
        downtime = (
            residual_bytes / spec.migration_bandwidth_bps
            + spec.stop_copy_overhead_s
        )
        self.report.downtime_s = downtime
        self.source.emit_event({
            "time_s": self.sim.now,
            "domain": self.domain.name,
            "kind": "migrate_downtime",
            "old": 0.0,
            "new": float(downtime),
        })
        self._ship_chunk(residual_bytes)
        self.sim.schedule(downtime, self._finish)

    def _finish(self) -> None:
        """Switch the domain over to the destination hypervisor."""
        state = self.source.detach_domain(self.domain.name)
        self.dest.attach_domain(state)
        # Lift the pause on the destination (emits the restoring
        # control action there, charged to the destination dom0).
        self.dest.set_cap_cores(self.domain, self._saved_cap)
        if self.rebind is not None:
            self.rebind(self.dest)
        if self.rescale is not None and self._pause_factor > 1.0:
            # The PAUSE_CAP lifted: shrink the surviving in-flight
            # services back so only the pause window itself was spent
            # crawling (jobs that completed inside the window already
            # paid the stretched price).
            self.rescale(1.0 / self._pause_factor)
            self._pause_factor = 0.0
        self.report.ended_s = self.sim.now
        self.finished = True
        self.dest.emit_event({
            "time_s": self.sim.now,
            "domain": self.domain.name,
            "kind": "migrate_in",
            "old": 0.0,
            "new": float(self.report.bytes_total),
        })
        if self.on_complete is not None:
            self.on_complete(self.report)
