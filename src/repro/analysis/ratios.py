"""Demand-ratio analysis: the quantitative core of Sections 4.1-4.2.

The paper compresses its findings into ratio vectors over the four
resource classes (CPU cycles, RAM, disk R+W, network RX+TX):

* **R1** front-end vs back-end demand in VMs — "(the front-end servers)
  demand 6.11, 3.29, 5.71, and 55.56 times more CPU cycles, RAM space,
  disk read/write, and network data than the back-end server";
* **R2** VM aggregate vs hypervisor — "16.84, 0.58, 0.47, and 0.98
  times more/less";
* **R3** VM aggregate vs bare-metal aggregate — "3.47, 0.97, 0.6 and
  0.98 times more/less";
* **R4** physical demand, bare metal vs virtualized (dom0) — "88% more
  CPU cycles, 21% more RAM, and 2% more network traffic, while disk
  read/write is 25% less".

This module computes all four from trace sets.  Demands are averaged
after dropping a warm-up prefix, since the paper's 20-minute runs
dominate their ramp while short CI runs would not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import AnalysisError
from repro.monitoring.timeseries import TraceSet

#: The four resource classes, in the paper's reporting order.
RESOURCES = ("cpu_cycles", "mem_used_mb", "disk_kb", "net_kb")
RESOURCE_LABELS = {
    "cpu_cycles": "CPU cycles",
    "mem_used_mb": "RAM",
    "disk_kb": "Disk R+W",
    "net_kb": "Network RX+TX",
}

DEFAULT_WARMUP_S = 30.0


@dataclass(frozen=True)
class ResourceVector:
    """Mean demand (or a ratio) per resource class."""

    cpu_cycles: float
    mem_used_mb: float
    disk_kb: float
    net_kb: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu_cycles": self.cpu_cycles,
            "mem_used_mb": self.mem_used_mb,
            "disk_kb": self.disk_kb,
            "net_kb": self.net_kb,
        }

    def ratio_to(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise self/other."""
        result = {}
        for resource, value in self.as_dict().items():
            denominator = other.as_dict()[resource]
            if denominator == 0:
                raise AnalysisError(
                    f"ratio undefined: zero {resource} denominator"
                )
            result[resource] = value / denominator
        return ResourceVector(**result)

    def plus(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            **{
                resource: value + other.as_dict()[resource]
                for resource, value in self.as_dict().items()
            }
        )


@dataclass(frozen=True)
class RatioReport:
    """A named ratio vector with the paper's reference values."""

    name: str
    measured: ResourceVector
    paper: ResourceVector

    def rows(self):
        """(resource label, measured, paper, measured/paper) rows."""
        out = []
        for resource in RESOURCES:
            measured = self.measured.as_dict()[resource]
            reference = self.paper.as_dict()[resource]
            relative = measured / reference if reference else float("nan")
            out.append(
                (RESOURCE_LABELS[resource], measured, reference, relative)
            )
        return out


def demand_vector(
    traces: TraceSet, entity: str, warmup_s: float = DEFAULT_WARMUP_S
) -> ResourceVector:
    """Mean per-sample demand of one entity over the four resources."""
    values = {}
    for resource in RESOURCES:
        series = traces.get(entity, resource).without_warmup(warmup_s)
        values[resource] = series.mean()
    return ResourceVector(**values)


def aggregate_vector(
    traces: TraceSet, entities, warmup_s: float = DEFAULT_WARMUP_S
) -> ResourceVector:
    """Sum of :func:`demand_vector` over several entities."""
    vectors = [demand_vector(traces, entity, warmup_s) for entity in entities]
    total = vectors[0]
    for vector in vectors[1:]:
        total = total.plus(vector)
    return total


def tier_ratios(
    traces: TraceSet, warmup_s: float = DEFAULT_WARMUP_S
) -> ResourceVector:
    """R1: front-end (web) over back-end (db) demand."""
    web = demand_vector(traces, "web", warmup_s)
    db = demand_vector(traces, "db", warmup_s)
    return web.ratio_to(db)


def vm_to_hypervisor_ratios(
    traces: TraceSet, warmup_s: float = DEFAULT_WARMUP_S
) -> ResourceVector:
    """R2: aggregated VM demand over dom0's physical demand."""
    if not traces.has("dom0", "cpu_cycles"):
        raise AnalysisError(
            "vm_to_hypervisor_ratios needs a dom0 entity (virtualized run)"
        )
    vms = aggregate_vector(traces, ("web", "db"), warmup_s)
    dom0 = demand_vector(traces, "dom0", warmup_s)
    return vms.ratio_to(dom0)


def cross_environment_ratios(
    virtualized: TraceSet,
    bare_metal: TraceSet,
    warmup_s: float = DEFAULT_WARMUP_S,
) -> ResourceVector:
    """R3: virtualized VM-level aggregate over bare-metal aggregate."""
    vm_aggregate = aggregate_vector(virtualized, ("web", "db"), warmup_s)
    pm_aggregate = aggregate_vector(bare_metal, ("web", "db"), warmup_s)
    return vm_aggregate.ratio_to(pm_aggregate)


def physical_cross_ratios(
    virtualized: TraceSet,
    bare_metal: TraceSet,
    warmup_s: float = DEFAULT_WARMUP_S,
) -> ResourceVector:
    """R4: bare-metal physical demand over the virtualized environment's
    physical demand (dom0) — the conclusion's "+88 % CPU, +21 % RAM,
    +2 % network, -25 % disk"."""
    pm_aggregate = aggregate_vector(bare_metal, ("web", "db"), warmup_s)
    dom0 = demand_vector(virtualized, "dom0", warmup_s)
    return pm_aggregate.ratio_to(dom0)
