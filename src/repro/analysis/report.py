"""Paper-style text rendering of characterization results."""

from __future__ import annotations

from typing import List

from repro.analysis.characterize import WorkloadCharacterization
from repro.analysis.ratios import RESOURCE_LABELS, RESOURCES, RatioReport


def _format_ratio_line(label: str, vector) -> str:
    values = vector.as_dict()
    parts = [f"{RESOURCE_LABELS[r]}={values[r]:.2f}" for r in RESOURCES]
    return f"{label}: " + ", ".join(parts)


def render_characterization_report(
    characterization: WorkloadCharacterization,
) -> str:
    """Human-readable multi-section report for one run."""
    lines: List[str] = []
    lines.append(
        f"Workload characterization — environment="
        f"{characterization.environment}, workload={characterization.workload}"
    )
    lines.append("=" * len(lines[0]))
    lines.append("")
    lines.append("Per-series summary (post warm-up):")
    for (entity, resource), item in sorted(characterization.series.items()):
        fit_note = (
            f" best-fit={item.fit.family}" if item.fit is not None else ""
        )
        lines.append(
            f"  {entity:>5s} {resource:<12s} {item.stats.describe()}{fit_note}"
        )
    lines.append("")
    lines.append("RAM step jumps (>= detector threshold):")
    for entity, shifts in sorted(characterization.ram_jumps.items()):
        upward = [s for s in shifts if s.upward]
        if upward:
            times = ", ".join(f"t={s.time_s:.0f}s (+{s.magnitude:.0f}MB)"
                              for s in upward)
            lines.append(f"  {entity}: {times}")
        else:
            lines.append(f"  {entity}: none")
    lines.append("")
    if characterization.web_db_lag is not None:
        lag = characterization.web_db_lag
        direction = (
            "db follows web" if lag.back_follows_front else "web follows db"
        )
        lines.append(
            f"Inter-tier lag: {lag.lag_samples} samples "
            f"({lag.lag_seconds:.1f}s, r={lag.correlation:.3f}) — {direction}"
        )
    if characterization.tier_ratio is not None:
        lines.append(
            _format_ratio_line(
                "Front-end/back-end demand ratio (R1)",
                characterization.tier_ratio,
            )
        )
    if characterization.vm_dom0_ratio is not None:
        lines.append(
            _format_ratio_line(
                "VM aggregate / dom0 ratio (R2)",
                characterization.vm_dom0_ratio,
            )
        )
    return "\n".join(lines)


def render_ratio_table(report: RatioReport) -> str:
    """Fixed-width table comparing measured ratios against the paper."""
    header = (
        f"{report.name}\n"
        f"{'resource':<16s} {'measured':>10s} {'paper':>10s} {'meas/paper':>11s}"
    )
    rows = [header, "-" * len(header.splitlines()[-1])]
    for label, measured, paper, relative in report.rows():
        rows.append(
            f"{label:<16s} {measured:>10.3f} {paper:>10.3f} {relative:>11.2f}"
        )
    return "\n".join(rows)
