"""Workload characterization core (S7) — the paper's contribution.

Given the monitored traces, this package produces everything Section 4
reports, plus the "formal models" the conclusion promises as future
work:

* :mod:`~repro.analysis.stats` — summary statistics per series,
* :mod:`~repro.analysis.distribution_fit` — candidate-family fitting
  with AIC/K-S selection ("the workload dynamics show some patterns
  that can be quantified by formal models"),
* :mod:`~repro.analysis.correlation` — autocorrelation and the
  web-tier -> db-tier lag estimation ("there exist some lags between
  workload changes of the database server and the web server"),
* :mod:`~repro.analysis.changepoint` — RAM step-jump detection,
* :mod:`~repro.analysis.ratios` — the tier/dom0/cross-environment
  demand ratio tables of Sections 4.1-4.2,
* :mod:`~repro.analysis.models` — AR(p), histogram and regime workload
  models (the promised transaction/resource-level modeling),
* :mod:`~repro.analysis.characterize` — one-call characterization,
* :mod:`~repro.analysis.report` — paper-style text reports.
"""

from repro.analysis.stats import SummaryStats, summarize
from repro.analysis.distribution_fit import (
    DistributionFit,
    fit_candidates,
    best_fit,
)
from repro.analysis.correlation import (
    autocorrelation,
    cross_correlation,
    estimate_lag,
)
from repro.analysis.changepoint import LevelShift, detect_level_shifts
from repro.analysis.ratios import (
    ResourceVector,
    RatioReport,
    demand_vector,
    tier_ratios,
    vm_to_hypervisor_ratios,
    cross_environment_ratios,
    physical_cross_ratios,
)
from repro.analysis.models import (
    ARModel,
    HistogramWorkloadModel,
    RegimeModel,
)
from repro.analysis.characterize import (
    SeriesCharacterization,
    WorkloadCharacterization,
    characterize_trace_set,
)
from repro.analysis.report import render_characterization_report

__all__ = [
    "SummaryStats",
    "summarize",
    "DistributionFit",
    "fit_candidates",
    "best_fit",
    "autocorrelation",
    "cross_correlation",
    "estimate_lag",
    "LevelShift",
    "detect_level_shifts",
    "ResourceVector",
    "RatioReport",
    "demand_vector",
    "tier_ratios",
    "vm_to_hypervisor_ratios",
    "cross_environment_ratios",
    "physical_cross_ratios",
    "ARModel",
    "HistogramWorkloadModel",
    "RegimeModel",
    "SeriesCharacterization",
    "WorkloadCharacterization",
    "characterize_trace_set",
    "render_characterization_report",
]
