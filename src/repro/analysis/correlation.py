"""Autocorrelation and inter-tier lag estimation.

Section 4.1: "there exist some lags between workload changes of the
database server and the web and application servers as the client
requests are received and processed first by the web server before
being sent to the back-end database server."

:func:`estimate_lag` quantifies that: the lag (in samples) at which the
cross-correlation between the front-end series and the back-end series
peaks.  A positive lag means the back end *follows* the front end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.monitoring.timeseries import TimeSeries

ArrayLike = Union[TimeSeries, np.ndarray, list]


def _as_array(series: ArrayLike) -> np.ndarray:
    if isinstance(series, TimeSeries):
        return series.values
    return np.asarray(series, dtype=float)


def autocorrelation(series: ArrayLike, max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags 0..max_lag (biased estimator)."""
    values = _as_array(series)
    if values.size < max_lag + 2:
        raise InsufficientDataError(
            f"need > {max_lag + 1} samples for max_lag={max_lag}"
        )
    centered = values - values.mean()
    denominator = float(np.dot(centered, centered))
    if denominator == 0:
        raise AnalysisError("autocorrelation undefined for a constant series")
    acf = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        if lag == 0:
            acf[0] = 1.0
        else:
            acf[lag] = float(
                np.dot(centered[:-lag], centered[lag:]) / denominator
            )
    return acf


def cross_correlation(
    front: ArrayLike, back: ArrayLike, max_lag: int
) -> np.ndarray:
    """Normalized cross-correlation of ``back`` against ``front``.

    Returns an array indexed by lag in ``[-max_lag, +max_lag]`` (length
    ``2*max_lag + 1``).  Entry at positive lag k correlates
    ``back[t + k]`` with ``front[t]`` — i.e. the back end delayed k
    samples behind the front end.
    """
    a = _as_array(front)
    b = _as_array(back)
    if a.size != b.size:
        raise AnalysisError("cross_correlation needs equal-length series")
    if a.size < max_lag + 2:
        raise InsufficientDataError(
            f"need > {max_lag + 1} samples for max_lag={max_lag}"
        )
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    scale = float(np.linalg.norm(a_centered) * np.linalg.norm(b_centered))
    if scale == 0:
        raise AnalysisError("cross-correlation undefined for constant series")
    out = np.empty(2 * max_lag + 1)
    for i, lag in enumerate(range(-max_lag, max_lag + 1)):
        if lag >= 0:
            n = a.size - lag
            value = np.dot(a_centered[:n], b_centered[lag : lag + n])
        else:
            n = a.size + lag
            value = np.dot(a_centered[-lag : -lag + n], b_centered[:n])
        out[i] = value / scale
    return out


@dataclass(frozen=True)
class LagEstimate:
    """Result of :func:`estimate_lag`."""

    lag_samples: int
    lag_seconds: float
    correlation: float

    @property
    def back_follows_front(self) -> bool:
        return self.lag_samples >= 0


def estimate_lag(
    front: ArrayLike,
    back: ArrayLike,
    max_lag: int,
    sample_period_s: float = 2.0,
) -> LagEstimate:
    """Lag at which ``back`` correlates best with ``front``."""
    xcorr = cross_correlation(front, back, max_lag)
    index = int(np.argmax(xcorr))
    lag = index - max_lag
    return LagEstimate(
        lag_samples=lag,
        lag_seconds=lag * sample_period_s,
        correlation=float(xcorr[index]),
    )
